//! Ablation timing: what each MAPS design choice costs per priced period
//! (the revenue side of the ablation lives in
//! `maps-experiments --bin ablation`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maps_bench::PeriodFixture;
use maps_core::{DeltaRule, MapsConfig, MapsStrategy, PricingStrategy};
use maps_market::PriceLadder;
use std::hint::black_box;

fn variants() -> Vec<(&'static str, MapsConfig)> {
    let base = MapsConfig::default();
    vec![
        ("default", base.clone()),
        (
            "shorthand_delta",
            MapsConfig {
                delta_rule: DeltaRule::ScaledShorthand,
                ..base.clone()
            },
        ),
        (
            "no_ucb",
            MapsConfig {
                use_ucb: false,
                ..base.clone()
            },
        ),
        (
            "no_lookahead",
            MapsConfig {
                plateau_lookahead: false,
                ..base.clone()
            },
        ),
        (
            "smoothing_0.3",
            MapsConfig {
                smoothing: Some(0.3),
                ..base
            },
        ),
    ]
}

fn bench_maps_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("maps_ablation_period");
    let fixture = PeriodFixture::new(200, 1000, 10, 29);
    for (name, cfg) in variants() {
        let mut maps =
            MapsStrategy::new(fixture.grid.num_cells(), PriceLadder::paper_default(), cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &fixture, |b, f| {
            b.iter(|| black_box(maps.price_period(&f.input()).prices.len()))
        });
    }
    group.finish();
}

/// Keeps the full workspace bench run to minutes: short warm-up and
/// measurement windows, few samples.
fn bounded() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = bounded();
    targets = bench_maps_variants
}
criterion_main!(benches);
