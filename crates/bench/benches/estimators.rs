//! Estimator micro-benchmarks: UCB bookkeeping (Sec. 4.2.2), the
//! Hoeffding frequency estimator (Algorithm 1) and the change detector.

use criterion::{criterion_group, criterion_main, Criterion};
use maps_bench::XorShift;
use maps_market::{ChangeDetector, FreqEstimator, PriceLadder, UcbStats};
use std::hint::black_box;

fn bench_ucb(c: &mut Criterion) {
    let ladder = PriceLadder::paper_default();
    let mut group = c.benchmark_group("ucb");
    group.bench_function("observe", |b| {
        let mut stats = UcbStats::new(ladder.len());
        let mut rng = XorShift(5);
        b.iter(|| {
            let idx = (rng.next_u64() % 4) as usize;
            stats.observe(idx, rng.next_u64().is_multiple_of(2));
            black_box(stats.n_total())
        })
    });
    group.bench_function("index_scan", |b| {
        let mut stats = UcbStats::new(ladder.len());
        for idx in 0..ladder.len() {
            stats.observe_batch(idx, 1000, 500);
        }
        b.iter(|| {
            let mut best = f64::NEG_INFINITY;
            for (idx, p) in ladder.descending() {
                best = best.max(p * stats.s_hat(idx) + p * stats.radius(idx));
            }
            black_box(best)
        })
    });
    group.finish();
}

fn bench_freq(c: &mut Criterion) {
    c.bench_function("freq_required_samples", |b| {
        b.iter(|| black_box(FreqEstimator::required_samples(3.375, 0.2, 0.01, 4)))
    });
}

fn bench_change_detector(c: &mut Criterion) {
    c.bench_function("change_detector_observe", |b| {
        let mut det = ChangeDetector::new(4, 200);
        let mut rng = XorShift(9);
        b.iter(|| {
            let idx = (rng.next_u64() % 4) as usize;
            black_box(det.observe(idx, rng.next_u64() % 10 < 7))
        })
    });
}

/// Keeps the full workspace bench run to minutes: short warm-up and
/// measurement windows, few samples.
fn bounded() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = bounded();
    targets = bench_ucb, bench_freq, bench_change_detector
}
criterion_main!(benches);
