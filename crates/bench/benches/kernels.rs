//! Before/after benches for the PR-1/PR-2 evaluation kernels:
//!
//! * possible-world expected revenue — naive enumeration (per-world
//!   `filter_left` + re-solve) vs the Gray-code incremental walk;
//! * masked market clearing — `filter_left` materialization vs the
//!   [`MatchScratch`] masked kernel;
//! * Monte-Carlo estimation — single-stream sequential vs the
//!   deterministic block-seeded sequential and rayon-parallel engines;
//! * MAPS `price_period` — the retained sequential on-demand path vs
//!   the rayon table-driven path (PR 2), on the plateau-worst-case
//!   statistics where the on-demand path re-scans supply levels.
//!
//! The machine-readable counterpart of these numbers is produced by
//! the `bench_report` binary (`BENCH_PR<N>.json`, gated in CI by
//! `bench_gate`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maps_bench::{plateau_maps, random_graph, random_weights, PeriodFixture, XorShift};
use maps_core::{
    monte_carlo_expected_revenue, monte_carlo_expected_revenue_parallel,
    monte_carlo_expected_revenue_seeded, PricingStrategy,
};
use maps_matching::{max_weight_matching_left_weights, MatchScratch, PossibleWorlds};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn accept_probs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift(seed | 1);
    (0..n).map(|_| 0.2 + 0.6 * rng.next_f64()).collect()
}

fn bench_possible_worlds(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_revenue_exact");
    for n in [10usize, 14] {
        let graph = random_graph(n, n, 0.3, 21);
        let weights = random_weights(n, 23);
        let probs = accept_probs(n, 25);
        let pw = PossibleWorlds::new(&graph, &weights, &probs);
        group.bench_with_input(BenchmarkId::new("naive", n), &pw, |b, pw| {
            b.iter(|| black_box(pw.expected_revenue_naive()))
        });
        group.bench_with_input(BenchmarkId::new("gray", n), &pw, |b, pw| {
            b.iter(|| black_box(pw.expected_revenue()))
        });
    }
    group.finish();
}

fn bench_masked_clearing(c: &mut Criterion) {
    let mut group = c.benchmark_group("market_clearing");
    for (tasks, workers) in [(200usize, 400usize), (1250, 5000)] {
        let fixture = maps_bench::PeriodFixture::new(tasks, workers, 10, 3);
        let weights = random_weights(tasks, 5);
        let mut rng = XorShift(7);
        let keep: Vec<bool> = (0..tasks).map(|_| rng.next_f64() < 0.6).collect();
        group.bench_with_input(
            BenchmarkId::new("filter_left", format!("{tasks}x{workers}")),
            &(&fixture.graph, &weights, &keep),
            |b, (g, w, keep)| {
                b.iter(|| {
                    let (sub, old_of_new) = g.filter_left(keep);
                    let sub_weights: Vec<f64> = old_of_new.iter().map(|&l| w[l as usize]).collect();
                    black_box(max_weight_matching_left_weights(&sub, &sub_weights).1)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("masked", format!("{tasks}x{workers}")),
            &(&fixture.graph, &weights, &keep),
            |b, (g, w, keep)| {
                let mut scratch = MatchScratch::new();
                b.iter(|| black_box(scratch.max_weight_value_masked(g, w, keep)))
            },
        );
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_2k");
    let n = 120usize;
    let graph = random_graph(n, n, 0.1, 31);
    let weights = random_weights(n, 33);
    let probs = accept_probs(n, 35);
    let samples = 2_000u32;
    group.bench_function("single_stream", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            black_box(monte_carlo_expected_revenue(
                &graph, &weights, &probs, samples, &mut rng,
            ))
        })
    });
    group.bench_function("seeded_sequential", |b| {
        b.iter(|| {
            black_box(monte_carlo_expected_revenue_seeded(
                &graph, &weights, &probs, samples, 1,
            ))
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(monte_carlo_expected_revenue_parallel(
                &graph, &weights, &probs, samples, 1,
            ))
        })
    });
    group.finish();
}

fn bench_pricing_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("pricing_period");
    for (n_tasks, n_workers, side) in [(1000usize, 1250usize, 6u32), (4000, 5000, 8)] {
        let grids = (side * side) as usize;
        let fixture = PeriodFixture::new(n_tasks, n_workers, side, 11);
        let label = format!("{grids}g_{n_tasks}x{n_workers}");
        group.bench_with_input(
            BenchmarkId::new("sequential", &label),
            &fixture,
            |b, fixture| {
                let mut maps = plateau_maps(grids, false);
                b.iter(|| black_box(maps.price_period(&fixture.input())))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_tables", &label),
            &fixture,
            |b, fixture| {
                let mut maps = plateau_maps(grids, true);
                b.iter(|| black_box(maps.price_period(&fixture.input())))
            },
        );
    }
    group.finish();
}

/// Keeps the full workspace bench run to minutes: short warm-up and
/// measurement windows, few samples.
fn bounded() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = bounded();
    targets = bench_possible_worlds, bench_masked_clearing, bench_monte_carlo, bench_pricing_period
}
criterion_main!(benches);
