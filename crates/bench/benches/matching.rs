//! Matching-algorithm scaling: Hopcroft–Karp vs incremental Kuhn vs the
//! greedy transversal-matroid matcher vs the Hungarian oracle.
//!
//! DESIGN.md §4.1: the simulator's market clearing relies on the greedy
//! matcher being both exact (task-side weights) and near-linear; this
//! bench quantifies the gap to the `O(n³)` Hungarian oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maps_bench::{random_graph, random_weights};
use maps_matching::{
    max_cardinality_matching, max_weight_matching_dense, max_weight_matching_left_weights,
    IncrementalMatching,
};
use std::hint::black_box;

fn bench_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_cardinality");
    for n in [50usize, 200, 800] {
        let graph = random_graph(n, n, 16.0 / n as f64, 42);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &graph, |b, g| {
            b.iter(|| black_box(max_cardinality_matching(g).cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("kuhn", n), &graph, |b, g| {
            b.iter(|| {
                let mut m = IncrementalMatching::new(g);
                let mut card = 0usize;
                for l in 0..g.n_left() {
                    card += usize::from(m.try_augment(l));
                }
                black_box(card)
            })
        });
    }
    group.finish();
}

fn bench_max_weight(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_weight");
    for n in [20usize, 60, 150] {
        let graph = random_graph(n, n, 0.2, 7);
        let weights = random_weights(n, 9);
        group.bench_with_input(
            BenchmarkId::new("greedy_matroid", n),
            &(&graph, &weights),
            |b, (g, w)| b.iter(|| black_box(max_weight_matching_left_weights(g, w).1)),
        );
        group.bench_with_input(
            BenchmarkId::new("hungarian", n),
            &(&graph, &weights),
            |b, (g, w)| {
                b.iter(|| {
                    let (_, total) = max_weight_matching_dense(g.n_left(), g.n_right(), |l, r| {
                        g.has_edge(l, r).then_some(w[l])
                    });
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

fn bench_market_clearing_scale(c: &mut Criterion) {
    // The per-period clearing workload at the paper's default and
    // scalability densities.
    let mut group = c.benchmark_group("market_clearing_period");
    for (tasks, workers) in [(50usize, 500usize), (1250, 5000)] {
        let fixture = maps_bench::PeriodFixture::new(tasks, workers, 10, 3);
        let weights = random_weights(tasks, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{tasks}x{workers}")),
            &(&fixture.graph, &weights),
            |b, (g, w)| b.iter(|| black_box(max_weight_matching_left_weights(g, w).1)),
        );
    }
    group.finish();
}

/// Keeps the full workspace bench run to minutes: short warm-up and
/// measurement windows, few samples.
fn bounded() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = bounded();
    targets = bench_cardinality,
    bench_max_weight,
    bench_market_clearing_scale
}
criterion_main!(benches);
