//! Exact possible-world enumeration (Definition 6) vs the Monte-Carlo
//! estimator: the cost of exactness grows as `2^|R|`, which is exactly
//! why the paper replaces the expectation with the `L^g(n,p)`
//! approximation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maps_bench::{random_graph, random_weights};
use maps_core::monte_carlo_expected_revenue;
use maps_matching::expected_total_revenue_exact;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_revenue_exact");
    for n in [6usize, 10, 14] {
        let graph = random_graph(n, n, 0.3, 21);
        let weights = random_weights(n, 23);
        let probs = vec![0.6; n];
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&graph, &weights, &probs),
            |b, (g, w, p)| b.iter(|| black_box(expected_total_revenue_exact(g, w, p))),
        );
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_revenue_mc1000");
    for n in [14usize, 50] {
        let graph = random_graph(n, n, 0.3, 31);
        let weights = random_weights(n, 33);
        let probs = vec![0.6; n];
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&graph, &weights, &probs),
            |b, (g, w, p)| {
                let mut rng = SmallRng::seed_from_u64(1);
                b.iter(|| black_box(monte_carlo_expected_revenue(g, w, p, 1000, &mut rng)))
            },
        );
    }
    group.finish();
}

/// Keeps the full workspace bench run to minutes: short warm-up and
/// measurement windows, few samples.
fn bounded() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = bounded();
    targets = bench_exact, bench_monte_carlo
}
criterion_main!(benches);
