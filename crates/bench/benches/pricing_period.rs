//! Per-period pricing cost of each strategy — the micro version of the
//! paper's Time panels (Figs. 6–8 middle rows): MAPS pays for the
//! matching-based supply distribution, the heuristics are near-constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maps_bench::PeriodFixture;
use maps_core::{
    BasePStrategy, CappedUcbStrategy, MapsStrategy, PricingStrategy, SdeStrategy, SdrStrategy,
};
use std::hint::black_box;

fn strategies(cells: usize) -> Vec<Box<dyn PricingStrategy>> {
    vec![
        Box::new(MapsStrategy::paper_default(cells)),
        Box::new(BasePStrategy::paper_default(cells)),
        Box::new(SdrStrategy::paper_default(cells)),
        Box::new(SdeStrategy::paper_default(cells)),
        Box::new(CappedUcbStrategy::paper_default(cells)),
    ]
}

fn bench_by_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_period_by_workers");
    for workers in [125usize, 500, 1000] {
        // The paper's default period density: |R|/T = 50 tasks.
        let fixture = PeriodFixture::new(50, workers, 10, 11);
        for mut strategy in strategies(fixture.grid.num_cells()) {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), workers),
                &fixture,
                |b, f| b.iter(|| black_box(strategy.price_period(&f.input()).prices.len())),
            );
        }
    }
    group.finish();
}

fn bench_by_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_period_by_tasks");
    for tasks in [50usize, 200, 800] {
        let fixture = PeriodFixture::new(tasks, 500, 10, 13);
        for mut strategy in strategies(fixture.grid.num_cells()) {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), tasks),
                &fixture,
                |b, f| b.iter(|| black_box(strategy.price_period(&f.input()).prices.len())),
            );
        }
    }
    group.finish();
}

fn bench_by_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_period_by_grid");
    for side in [5u32, 10, 25] {
        let fixture = PeriodFixture::new(50, 500, side, 17);
        let mut maps = MapsStrategy::paper_default(fixture.grid.num_cells());
        group.bench_with_input(BenchmarkId::new("MAPS", side * side), &fixture, |b, f| {
            b.iter(|| black_box(maps.price_period(&f.input()).prices.len()))
        });
    }
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_period_graph");
    for workers in [500usize, 5000, 50_000] {
        let fixture = PeriodFixture::new(1250, workers, 10, 19);
        group.bench_with_input(BenchmarkId::new("capped_k64", workers), &fixture, |b, f| {
            b.iter(|| {
                black_box(
                    maps_core::build_period_graph_capped(&f.grid, &f.tasks, &f.workers, 64)
                        .n_edges(),
                )
            })
        });
    }
    group.finish();
}

/// Keeps the full workspace bench run to minutes: short warm-up and
/// measurement windows, few samples.
fn bounded() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = bounded();
    targets = bench_by_workers,
    bench_by_tasks,
    bench_by_grid,
    bench_graph_build
}
criterion_main!(benches);
