//! Spatial-index benchmarks: build cost, disc queries and the ring-search
//! k-NN that backs the capped graph builder (DESIGN.md §4 scalability).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maps_bench::XorShift;
use maps_spatial::{BucketIndex, Point, Rect};
use std::hint::black_box;

fn points(n: usize, seed: u64) -> Vec<(Point, u32)> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|i| {
            (
                Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                i as u32,
            )
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_index_build");
    for n in [1_000usize, 20_000, 200_000] {
        let items = points(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| black_box(BucketIndex::build(Rect::square(100.0), items).len()))
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_index_query");
    let items = points(100_000, 7);
    let index = BucketIndex::build(Rect::square(100.0), &items);
    let mut rng = XorShift(11);
    group.bench_function("within_disc_r10", |b| {
        b.iter(|| {
            let center = Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0);
            let mut count = 0usize;
            index.for_each_within_disc(center, 10.0, |_, _| count += 1);
            black_box(count)
        })
    });
    group.bench_function("k_nearest_64_r10", |b| {
        b.iter(|| {
            let center = Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0);
            black_box(index.k_nearest_within(center, 10.0, 64, |_, _| true).len())
        })
    });
    group.finish();
}

/// Keeps the full workspace bench run to minutes: short warm-up and
/// measurement windows, few samples.
fn bounded() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = bounded();
    targets = bench_build, bench_queries
}
criterion_main!(benches);
