//! CI trend gate over the `BENCH_PR*.json` perf reports.
//!
//! ```sh
//! cargo run --release -p maps-bench --bin bench_gate -- CANDIDATE.json [BASELINE.json]
//! ```
//!
//! Compares a freshly generated report (`CANDIDATE`) against a baseline
//! (by default the highest-numbered committed `BENCH_PR*.json` in the
//! working directory other than the candidate itself) and **exits
//! non-zero when any kernel row regressed more than 2x**: for every
//! kernel present in both reports and every `*_ns` timing field present
//! in both rows, `candidate / baseline` must stay ≤ 2.0. A kernel or
//! field present only on one side is reported as a note, not a failure
//! (kernels are added and retired across PRs); a candidate kernel whose
//! `bit_identical` flag is `false` fails the gate outright — a perf win
//! that breaks the determinism contract is a regression by definition.
//!
//! The 2x threshold is deliberately loose: CI hosts are noisy and the
//! medians come from few runs. The gate exists to catch order-of-
//! magnitude accidents (a kernel silently falling back to a naive
//! path), not single-digit-percent drift.
//!
//! Beyond the trend comparison, a small set of kernels is **required**:
//! the `graph_build_{scratch,incremental}` pair (PR 3), the `knn_query`
//! row (PR 8), the `service_throughput` row (PR 4), the
//! `telemetry_overhead` row (PR 8), the `ingest_throughput` row
//! (PR 5), the `journal_throughput` row (PR 6), the `lint_runtime`
//! row (PR 9) and the `model_check_runtime` row (PR 10) must be
//! present in every candidate report. Most kernels may come and go as
//! they are added and retired, but these are the standing evidence for
//! the churn-driven period engine, the SoA k-NN kernel, the sharded
//! online service, the always-on latency telemetry, the multi-producer
//! ingestion front-end, the write-ahead journal, the static-analysis
//! gate and the interleaving model checker — a candidate that silently
//! dropped one would leave that subsystem unbenchmarked (and, for the
//! k-NN, service, ingestion and journal rows, un-cross-checked against
//! their serial oracles; the lint row additionally asserts the
//! workspace scans clean, and the model-check row asserts the ring's
//! park/wake handshake is counterexample-free), so a missing required
//! row fails the gate outright.
//!
//! Two rules are **absolute** rather than trend-relative. PR 7: if the
//! candidate's `ingest_throughput` row ran with ≥ 2 producers, its
//! `speedup_vs_serial` must be present and ≥ 1.0. The multi-producer
//! front door being slower than serial push is the regression that
//! motivated the PR-7 ring rewrite; it needs no baseline file because
//! the serial push measured inside the same report is the baseline.
//! PR 8: the `telemetry_overhead` row's `overhead` field (the latency
//! histograms' recording cost expressed against the same report's
//! `service_throughput` replay) must be present and ≤ 1.03 — telemetry
//! that costs more than 3% of service throughput is a regression, not
//! an observability feature.

use serde::Value;

/// Kernels every candidate report must contain (missing row = fail).
const REQUIRED_KERNELS: &[&str] = &[
    "graph_build_scratch",
    "graph_build_incremental",
    "knn_query",
    "service_throughput",
    "telemetry_overhead",
    "ingest_throughput",
    "journal_throughput",
    "lint_runtime",
    "model_check_runtime",
];

/// Checks that `candidate` carries every required kernel row.
fn check_required(candidate: &Value) -> Vec<Regression> {
    let Some(Value::Object(kernels)) = candidate.get("kernels") else {
        return vec![Regression(
            "candidate has no `kernels` object — wrong schema?".to_string(),
        )];
    };
    REQUIRED_KERNELS
        .iter()
        .filter(|name| kernels.get(**name).is_none())
        .map(|name| Regression(format!("required kernel `{name}` missing from candidate")))
        .collect()
}

/// One gate violation, human-readable.
#[derive(Debug, PartialEq)]
struct Regression(String);

/// PR-7 absolute bar: a multi-producer ingestion front-end that is
/// slower than simply pushing the same events serially has no reason to
/// exist, yet that exact regression shipped in PR 5 and survived two
/// PRs because nothing measured it. If the candidate's
/// `ingest_throughput` row ran with ≥ 2 producers, its
/// `speedup_vs_serial` must be present and ≥ 1.0. (Single-producer
/// configurations are exempt: one lane through a ring cannot beat a
/// direct function call, and the row would only be measuring queue
/// overhead.) Unlike the trend rules this needs no baseline — the
/// serial push measured in the same report *is* the baseline.
fn check_ingest_speedup(candidate: &Value) -> Vec<Regression> {
    let Some(row) = candidate
        .get("kernels")
        .and_then(|k| k.get("ingest_throughput"))
    else {
        return Vec::new(); // absence is already a required-row failure
    };
    let Some(Value::Number(producers)) = row.get("producers") else {
        return vec![Regression(
            "ingest_throughput row has no `producers` field — wrong schema?".to_string(),
        )];
    };
    if *producers < 2.0 {
        return Vec::new();
    }
    match row.get("speedup_vs_serial") {
        Some(Value::Number(speedup)) if *speedup >= 1.0 => Vec::new(),
        Some(Value::Number(speedup)) => vec![Regression(format!(
            "ingest_throughput: {producers:.0}-producer ingestion runs at {speedup:.3}x \
             serial push (must be >= 1.0x) — the front door is slower than no front door"
        ))],
        _ => vec![Regression(format!(
            "ingest_throughput: {producers:.0}-producer row has no `speedup_vs_serial` \
             field — the serial-push bar is unmeasured"
        ))],
    }
}

/// PR-8 absolute bar: the latency histograms ride inside
/// `deterministic_bits`, so they are always on — there is no
/// "telemetry disabled" deployment to fall back to if recording gets
/// expensive. The `telemetry_overhead` row prices one
/// `service_throughput` replay's worth of `record_period` calls
/// against that replay's own wall-clock (`overhead = 1 +
/// telemetry_ns / replay_ns`); a candidate whose overhead exceeds
/// 1.03 (3% of service throughput) fails outright. Like the
/// serial-push bar this needs no baseline file — the service replay
/// measured in the same report *is* the baseline.
fn check_telemetry_overhead(candidate: &Value) -> Vec<Regression> {
    let Some(row) = candidate
        .get("kernels")
        .and_then(|k| k.get("telemetry_overhead"))
    else {
        return Vec::new(); // absence is already a required-row failure
    };
    match row.get("overhead") {
        Some(Value::Number(overhead)) if *overhead <= 1.03 => Vec::new(),
        Some(Value::Number(overhead)) => vec![Regression(format!(
            "telemetry_overhead: latency histograms cost {:.2}% of service throughput \
             (overhead {overhead:.4}x > 1.03x) — the 3% telemetry budget is blown",
            (overhead - 1.0) * 100.0
        ))],
        _ => vec![Regression(
            "telemetry_overhead row has no `overhead` field — the 3% telemetry budget \
             is unmeasured"
                .to_string(),
        )],
    }
}

/// Compares two reports; returns (regressions, notes).
fn compare_reports(baseline: &Value, candidate: &Value) -> (Vec<Regression>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut notes = Vec::new();
    let (Some(Value::Object(base_kernels)), Some(Value::Object(cand_kernels))) =
        (baseline.get("kernels"), candidate.get("kernels"))
    else {
        regressions.push(Regression(
            "a report has no `kernels` object — wrong schema?".to_string(),
        ));
        return (regressions, notes);
    };
    for (name, base_row) in base_kernels {
        let Some(cand_row) = cand_kernels.get(name) else {
            notes.push(format!("kernel `{name}` retired (in baseline only)"));
            continue;
        };
        let Value::Object(base_fields) = base_row else {
            continue;
        };
        for (field, base_value) in base_fields {
            if !field.ends_with("_ns") {
                continue;
            }
            let (Value::Number(base_ns), Some(Value::Number(cand_ns))) =
                (base_value, cand_row.get(field))
            else {
                notes.push(format!("field `{name}.{field}` missing from candidate"));
                continue;
            };
            if *base_ns <= 0.0 {
                continue;
            }
            let ratio = cand_ns / base_ns;
            if ratio > 2.0 {
                regressions.push(Regression(format!(
                    "{name}.{field}: {base_ns:.0} ns -> {cand_ns:.0} ns ({ratio:.2}x > 2x)"
                )));
            }
        }
        if let Some(Value::Bool(false)) = cand_row.get("bit_identical") {
            regressions.push(Regression(format!(
                "{name}: bit_identical is false — determinism contract broken"
            )));
        }
    }
    for name in cand_kernels.keys() {
        if base_kernels.get(name).is_none() {
            notes.push(format!("kernel `{name}` is new (no baseline)"));
        }
    }
    (regressions, notes)
}

/// The highest-numbered `BENCH_PR*.json` in the working directory whose
/// path differs from `candidate`.
fn default_baseline(candidate: &std::path::Path) -> Option<std::path::PathBuf> {
    let cand = candidate.canonicalize().ok();
    let mut best: Option<(u32, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(number) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u32>().ok())
        else {
            continue;
        };
        if path.canonicalize().ok() == cand && cand.is_some() {
            continue;
        }
        if best.as_ref().is_none_or(|(n, _)| number > *n) {
            best = Some((number, path));
        }
    }
    best.map(|(_, path)| path)
}

fn load(path: &std::path::Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let candidate_path = std::path::PathBuf::from(
        args.next()
            .expect("usage: bench_gate CANDIDATE.json [BASELINE.json]"),
    );
    let candidate = load(&candidate_path);
    // Required rows, the serial-push bar and the telemetry budget are
    // gated even without a baseline to compare against.
    let mut regressions = check_required(&candidate);
    regressions.extend(check_ingest_speedup(&candidate));
    regressions.extend(check_telemetry_overhead(&candidate));
    let baseline_path = match args.next() {
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => default_baseline(&candidate_path),
    };
    let mut notes = Vec::new();
    match baseline_path {
        None => println!("bench_gate: no BENCH_PR*.json baseline found — nothing to trend-gate"),
        Some(baseline_path) => {
            println!(
                "bench_gate: {} vs baseline {}",
                candidate_path.display(),
                baseline_path.display()
            );
            let (trend_regressions, trend_notes) =
                compare_reports(&load(&baseline_path), &candidate);
            regressions.extend(trend_regressions);
            notes = trend_notes;
        }
    }
    for note in &notes {
        println!("note: {note}");
    }
    if regressions.is_empty() {
        println!("bench_gate: OK — required rows present, no kernel regressed more than 2x");
        return;
    }
    for Regression(r) in &regressions {
        eprintln!("REGRESSION: {r}");
    }
    eprintln!(
        "bench_gate: {} regression(s) beyond the 2x bar",
        regressions.len()
    );
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn obj(fields: &[(&str, Value)]) -> Value {
        Value::Object(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    fn report(kernel: &str, fields: &[(&str, Value)]) -> Value {
        obj(&[("kernels", obj(&[(kernel, obj(fields))]))])
    }

    #[test]
    fn within_budget_passes() {
        let base = report("mc", &[("sequential_ns", 100.0.to_value())]);
        let cand = report("mc", &[("sequential_ns", 199.0.to_value())]);
        let (regressions, _) = compare_reports(&base, &cand);
        assert!(regressions.is_empty());
    }

    #[test]
    fn beyond_2x_fails() {
        let base = report("mc", &[("sequential_ns", 100.0.to_value())]);
        let cand = report("mc", &[("sequential_ns", 201.0.to_value())]);
        let (regressions, _) = compare_reports(&base, &cand);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].0.contains("mc.sequential_ns"));
    }

    #[test]
    fn non_timing_fields_are_ignored() {
        let base = report("mc", &[("speedup", 10.0.to_value())]);
        let cand = report("mc", &[("speedup", 1.0.to_value())]);
        let (regressions, _) = compare_reports(&base, &cand);
        assert!(regressions.is_empty(), "speedup is derived, not gated");
    }

    #[test]
    fn retired_and_new_kernels_are_notes_not_failures() {
        let base = report("old_kernel", &[("x_ns", 50.0.to_value())]);
        let cand = report("new_kernel", &[("x_ns", 50_000.0.to_value())]);
        let (regressions, notes) = compare_reports(&base, &cand);
        assert!(regressions.is_empty());
        assert_eq!(notes.len(), 2, "one retired + one new note: {notes:?}");
    }

    #[test]
    fn broken_determinism_flag_fails() {
        let base = report("pricing_period", &[("sequential_ns", 10.0.to_value())]);
        let cand = report(
            "pricing_period",
            &[
                ("sequential_ns", 10.0.to_value()),
                ("bit_identical", false.to_value()),
            ],
        );
        let (regressions, _) = compare_reports(&base, &cand);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].0.contains("determinism"));
    }

    #[test]
    fn missing_kernels_object_is_a_failure() {
        let (regressions, _) = compare_reports(&Value::Null, &Value::Null);
        assert_eq!(regressions.len(), 1);
    }

    fn report_with_kernels(names: &[&str]) -> Value {
        obj(&[(
            "kernels",
            Value::Object(
                names
                    .iter()
                    .map(|n| (n.to_string(), obj(&[("build_ns", 1.0.to_value())])))
                    .collect(),
            ),
        )])
    }

    #[test]
    fn candidate_missing_required_graph_build_rows_fails() {
        let regressions = check_required(&report_with_kernels(&["monte_carlo"]));
        assert_eq!(regressions.len(), 9, "{regressions:?}");
        assert!(regressions[0].0.contains("graph_build_scratch"));
        assert!(regressions[1].0.contains("graph_build_incremental"));
        assert!(regressions[2].0.contains("knn_query"));
        assert!(regressions[3].0.contains("service_throughput"));
        assert!(regressions[4].0.contains("telemetry_overhead"));
        assert!(regressions[5].0.contains("ingest_throughput"));
        assert!(regressions[6].0.contains("journal_throughput"));
        assert!(regressions[7].0.contains("lint_runtime"));
        assert!(regressions[8].0.contains("model_check_runtime"));
        // Some present, one dropped: still a failure.
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "knn_query",
            "service_throughput",
            "telemetry_overhead",
            "ingest_throughput",
            "journal_throughput",
            "lint_runtime",
            "model_check_runtime",
        ]));
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].0.contains("graph_build_incremental"));
    }

    /// The PR-4 required row: a candidate that silently dropped the
    /// sharded-service benchmark must fail the gate.
    #[test]
    fn candidate_missing_service_throughput_fails() {
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "graph_build_incremental",
            "knn_query",
            "telemetry_overhead",
            "ingest_throughput",
            "journal_throughput",
            "lint_runtime",
            "model_check_runtime",
        ]));
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("service_throughput"));
    }

    /// The PR-5 required row: a candidate that silently dropped the
    /// multi-producer ingestion benchmark (and with it the serial-push
    /// cross-check) must fail the gate.
    #[test]
    fn candidate_missing_ingest_throughput_fails() {
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "graph_build_incremental",
            "knn_query",
            "service_throughput",
            "telemetry_overhead",
            "journal_throughput",
            "lint_runtime",
            "model_check_runtime",
        ]));
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("ingest_throughput"));
    }

    /// The PR-6 required row: a candidate that silently dropped the
    /// write-ahead-journal benchmark (and with it the journaled-vs-
    /// unjournaled outcome cross-check) must fail the gate.
    #[test]
    fn candidate_missing_journal_throughput_fails() {
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "graph_build_incremental",
            "knn_query",
            "service_throughput",
            "telemetry_overhead",
            "ingest_throughput",
            "lint_runtime",
            "model_check_runtime",
        ]));
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("journal_throughput"));
    }

    /// The PR-9 required row: a candidate that silently dropped the
    /// static-analysis scan benchmark (and with it the scans-clean
    /// assertion) must fail the gate.
    #[test]
    fn candidate_missing_lint_runtime_fails() {
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "graph_build_incremental",
            "knn_query",
            "service_throughput",
            "telemetry_overhead",
            "ingest_throughput",
            "journal_throughput",
            "model_check_runtime",
        ]));
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("lint_runtime"));
    }

    /// The PR-10 required row: a candidate that silently dropped the
    /// model-checker benchmark (and with it the counterexample-free
    /// assertion over the ring's park/wake handshake) must fail the
    /// gate.
    #[test]
    fn candidate_missing_model_check_runtime_fails() {
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "graph_build_incremental",
            "knn_query",
            "service_throughput",
            "telemetry_overhead",
            "ingest_throughput",
            "journal_throughput",
            "lint_runtime",
        ]));
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("model_check_runtime"));
    }

    /// The PR-8 required row: a candidate that silently dropped the SoA
    /// k-NN kernel benchmark (and with it the static-rebuild
    /// cross-check) must fail the gate.
    #[test]
    fn candidate_missing_knn_query_fails() {
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "graph_build_incremental",
            "service_throughput",
            "telemetry_overhead",
            "ingest_throughput",
            "journal_throughput",
            "lint_runtime",
            "model_check_runtime",
        ]));
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("knn_query"));
    }

    #[test]
    fn candidate_with_required_rows_passes() {
        let regressions = check_required(&report_with_kernels(&[
            "graph_build_scratch",
            "graph_build_incremental",
            "knn_query",
            "service_throughput",
            "telemetry_overhead",
            "ingest_throughput",
            "journal_throughput",
            "lint_runtime",
            "model_check_runtime",
            "monte_carlo",
        ]));
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn required_check_rejects_missing_kernels_object() {
        assert_eq!(check_required(&Value::Null).len(), 1);
    }

    fn ingest_row(fields: &[(&str, Value)]) -> Value {
        report("ingest_throughput", fields)
    }

    /// The PR-7 absolute bar: multi-producer ingestion below 1.0x serial
    /// push fails regardless of any baseline file.
    #[test]
    fn multi_producer_ingest_below_serial_push_fails() {
        let cand = ingest_row(&[
            ("producers", 4.0.to_value()),
            ("speedup_vs_serial", 0.85.to_value()),
        ]);
        let regressions = check_ingest_speedup(&cand);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("0.850x"));
    }

    #[test]
    fn multi_producer_ingest_at_or_above_serial_push_passes() {
        for speedup in [1.0, 1.02, 3.5] {
            let cand = ingest_row(&[
                ("producers", 2.0.to_value()),
                ("speedup_vs_serial", speedup.to_value()),
            ]);
            assert!(check_ingest_speedup(&cand).is_empty(), "at {speedup}x");
        }
    }

    /// A ≥2-producer row that never measured the serial baseline is as
    /// bad as one that failed it: the bar is unenforceable.
    #[test]
    fn multi_producer_ingest_without_speedup_field_fails() {
        let cand = ingest_row(&[("producers", 4.0.to_value())]);
        let regressions = check_ingest_speedup(&cand);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("speedup_vs_serial"));
    }

    /// One lane through a ring cannot beat a direct call; the bar only
    /// applies from 2 producers up.
    #[test]
    fn single_producer_ingest_is_exempt_from_the_serial_bar() {
        let cand = ingest_row(&[
            ("producers", 1.0.to_value()),
            ("speedup_vs_serial", 0.6.to_value()),
        ]);
        assert!(check_ingest_speedup(&cand).is_empty());
    }

    #[test]
    fn ingest_row_without_producers_field_fails_the_speedup_check() {
        let cand = ingest_row(&[("speedup_vs_serial", 1.5.to_value())]);
        let regressions = check_ingest_speedup(&cand);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("producers"));
    }

    /// A report with no ingest row at all is handled by
    /// `check_required`; the speedup check must not double-report it.
    #[test]
    fn missing_ingest_row_is_not_a_speedup_failure() {
        assert!(check_ingest_speedup(&report_with_kernels(&["monte_carlo"])).is_empty());
        assert!(check_ingest_speedup(&Value::Null).is_empty());
    }

    fn telemetry_row(fields: &[(&str, Value)]) -> Value {
        report("telemetry_overhead", fields)
    }

    /// The PR-8 absolute bar: telemetry costing more than 3% of service
    /// throughput fails regardless of any baseline file.
    #[test]
    fn telemetry_overhead_beyond_3_percent_fails() {
        let cand = telemetry_row(&[("overhead", 1.031.to_value())]);
        let regressions = check_telemetry_overhead(&cand);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("1.03"));
    }

    #[test]
    fn telemetry_overhead_within_budget_passes() {
        for overhead in [1.0, 1.0001, 1.03] {
            let cand = telemetry_row(&[("overhead", overhead.to_value())]);
            assert!(check_telemetry_overhead(&cand).is_empty(), "at {overhead}x");
        }
    }

    /// A telemetry row that never measured its own overhead is as bad
    /// as one that blew the budget: the bar is unenforceable.
    #[test]
    fn telemetry_row_without_overhead_field_fails() {
        let cand = telemetry_row(&[("telemetry_ns", 500.0.to_value())]);
        let regressions = check_telemetry_overhead(&cand);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].0.contains("overhead"));
    }

    /// A report with no telemetry row at all is handled by
    /// `check_required`; the budget check must not double-report it.
    #[test]
    fn missing_telemetry_row_is_not_a_budget_failure() {
        assert!(check_telemetry_overhead(&report_with_kernels(&["monte_carlo"])).is_empty());
        assert!(check_telemetry_overhead(&Value::Null).is_empty());
    }
}
