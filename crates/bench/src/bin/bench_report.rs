//! Machine-readable perf trajectory: measures the PR-1 evaluation
//! kernels, the PR-2 parallel pricing/runner paths, the PR-3
//! incremental graph-build engine, the PR-4 sharded online service,
//! the PR-5/PR-7 multi-producer ingestion front-end, the PR-6
//! write-ahead journal, the PR-8 SoA k-NN + telemetry rows, the PR-9
//! static-analysis scan, and the PR-10 model-checker run against their
//! retained baselines and writes `BENCH_PR10.json`.
//!
//! ```sh
//! cargo run --release -p maps-bench --bin bench_report [-- OUT.json]
//! ```
//!
//! Schema (`maps-bench-report/v1`, also documented in the README): a
//! `kernels` object with one row per kernel; every `*_ns` field is the
//! **median of repeated wall-clock runs** in nanoseconds for one full
//! kernel invocation (not per sample/world). PR 5 adds the ingestion
//! row next to PR 4's service row; PR 7 extends it with the serial-push
//! baseline it must beat:
//!
//! ```json
//! {
//!   "kernels": {
//!     "ingest_throughput": {
//!       "n_workers": ..., "n_tasks": ..., "periods": ..., "shards": ...,
//!       "producers": ..., "queue_capacity": ..., "events": ...,
//!       "replay_ns": ..., "events_per_sec": ...,
//!       "serial_ns": ..., "speedup_vs_serial": ...,
//!       "threads": ..., "bit_identical": true
//!     }
//!   }
//! }
//! ```
//!
//! `events_per_sec` is the end-to-end ingest rate on a 100k-worker
//! stream (arrivals + task requests + ticks over the replay
//! wall-clock); `serial_ns` is the serial-push replay of the same
//! stream measured in the same process, and `speedup_vs_serial` their
//! ratio — `bench_gate` fails any report whose multi-producer ingestion
//! is slower than serial push (< 1.0); `bit_identical` records the
//! cross-check of the multi-producer outcome against serial ingestion
//! (itself checked against `Simulation::run` in the
//! `service_throughput` row) before anything is timed.
//!
//! PR 8 adds two rows: `knn_query` isolates the SoA capped k-NN
//! kernel (the inner loop of every graph build) on a 200k-point index,
//! bit-checked against a fresh static index before timing; and
//! `telemetry_overhead` prices the always-on latency histograms —
//! recording is a pure function of per-period counts, so the row
//! measures the exact `record_period` call pattern one
//! `service_throughput` replay performs and reports
//! `overhead = 1 + telemetry_ns / replay_ns`. `bench_gate` fails a
//! report whose telemetry costs more than 3% of service throughput
//! (`overhead > 1.03`).
//!
//! PR 9 adds the `lint_runtime` row: a full `maps-lint` workspace scan
//! (the static-analysis pass CI runs before the build), asserted clean
//! and then timed — the gate that keeps the determinism contracts
//! machine-checked must itself stay cheap enough to run on every push.
//!
//! PR 10 adds the `model_check_runtime` row: an exhaustive `maps-model`
//! exploration of the ring's SeqCst-fenced park/wake handshake (the
//! PR-7 fix in miniature), asserted counterexample-free and then timed.
//! Like `lint_runtime`, the row exists so the interleaving checker CI
//! runs on every push stays cheap enough to keep running — and so a
//! refactor cannot silently drop the model-check step from the gate.
//!
//! Each PR appends its own `BENCH_PR<N>.json` so the perf trajectory
//! stays diffable; the `bench_gate` binary fails CI when a fresh run
//! regresses >2x against the last committed report **or when a required
//! row (`graph_build_*`, `knn_query`, `service_throughput`,
//! `ingest_throughput`, `journal_throughput`, `lint_runtime`,
//! `model_check_runtime`) goes missing** (so a refactor cannot silently drop a standing subsystem
//! benchmark).

use maps_bench::{plateau_maps, random_graph, random_weights, PeriodFixture, XorShift};
use maps_core::{
    build_period_graph_capped, monte_carlo_expected_revenue_parallel,
    monte_carlo_expected_revenue_seeded, PeriodGraphCache, PricingStrategy, TaskInput, WorkerChurn,
    WorkerInput,
};
use maps_experiments::{run_panel, PanelSpec, RunOptions, Scale};
use maps_matching::{max_weight_matching_left_weights, MatchScratch, PossibleWorlds};
use maps_simulator::SyntheticConfig;
use maps_spatial::{BucketIndex, DynamicBucketIndex, GridSpec, Point, Rect};
use serde::{Serialize, Value};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Median wall-clock nanoseconds of `runs` invocations of `f`.
fn median_ns<O>(runs: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn accept_probs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift(seed | 1);
    (0..n).map(|_| 0.2 + 0.6 * rng.next_f64()).collect()
}

fn format_ms(ns: f64) -> String {
    format!("{:.2} ms", ns / 1e6)
}

/// Gray-code vs naive possible-world enumeration at the acceptance
/// criterion's n = 20 (1,048,576 worlds per solve).
fn possible_worlds_report() -> (Value, f64) {
    let n = 20usize;
    let graph = random_graph(n, n, 1.0 / 3.0, 42);
    let weights = random_weights(n, 43);
    let probs = accept_probs(n, 44);
    let pw = PossibleWorlds::new(&graph, &weights, &probs);

    // Correctness cross-check before timing anything.
    let naive_value = pw.expected_revenue_naive();
    let gray_value = pw.expected_revenue();
    assert!(
        (naive_value - gray_value).abs() < 1e-12 * naive_value.abs().max(1.0),
        "gray {gray_value} disagrees with naive {naive_value}"
    );

    let gray_ns = median_ns(5, || pw.expected_revenue());
    let naive_ns = median_ns(3, || pw.expected_revenue_naive());
    let speedup = naive_ns / gray_ns;
    println!(
        "possible_worlds n={n}: naive {} | gray {} | speedup {speedup:.1}x",
        format_ms(naive_ns),
        format_ms(gray_ns),
    );
    (
        serde::object([
            ("n_tasks", (n as f64).to_value()),
            ("worlds", ((1u64 << n) as f64).to_value()),
            ("naive_ns", naive_ns.to_value()),
            ("gray_ns", gray_ns.to_value()),
            ("speedup", speedup.to_value()),
        ]),
        speedup,
    )
}

/// Deterministic parallel Monte-Carlo vs its sequential twin.
fn monte_carlo_report() -> (Value, f64) {
    let (n_tasks, n_workers) = (400usize, 300usize);
    let graph = random_graph(n_tasks, n_workers, 0.04, 51);
    let weights = random_weights(n_tasks, 53);
    let probs = accept_probs(n_tasks, 55);
    let samples = 20_000u32;
    let seed = 7u64;

    let sequential_value =
        monte_carlo_expected_revenue_seeded(&graph, &weights, &probs, samples, seed);
    let parallel_value =
        monte_carlo_expected_revenue_parallel(&graph, &weights, &probs, samples, seed);
    let bit_identical = sequential_value.to_bits() == parallel_value.to_bits();
    assert!(bit_identical, "parallel MC diverged from sequential");

    let sequential_ns = median_ns(3, || {
        monte_carlo_expected_revenue_seeded(&graph, &weights, &probs, samples, seed)
    });
    let parallel_ns = median_ns(5, || {
        monte_carlo_expected_revenue_parallel(&graph, &weights, &probs, samples, seed)
    });
    let threads = rayon::current_num_threads();
    let speedup = sequential_ns / parallel_ns;
    // "Near-linear" is host-relative: efficiency ≈ 1.0 means the
    // parallel engine scales linearly in the threads this host offers
    // (on a 1-CPU container that is speedup ≈ 1.0 with no overhead).
    let efficiency = speedup / threads as f64;
    println!(
        "monte_carlo {n_tasks}x{n_workers} x{samples}: sequential {} | parallel {} \
         ({threads} threads) | speedup {speedup:.2}x | efficiency {efficiency:.2} \
         | bit-identical {bit_identical}",
        format_ms(sequential_ns),
        format_ms(parallel_ns),
    );
    (
        serde::object([
            ("n_tasks", (n_tasks as f64).to_value()),
            ("n_workers", (n_workers as f64).to_value()),
            ("samples", (samples as f64).to_value()),
            ("sequential_ns", sequential_ns.to_value()),
            ("parallel_ns", parallel_ns.to_value()),
            ("threads", (threads as f64).to_value()),
            ("speedup", speedup.to_value()),
            ("parallel_efficiency", efficiency.to_value()),
            ("bit_identical", bit_identical.to_value()),
        ]),
        speedup,
    )
}

/// Masked clearing kernel vs the `filter_left` materialization, in the
/// shape the evaluation loops actually use it: weights fixed, the
/// acceptance mask changing every round (so the masked path amortizes
/// its weight order and buffers, exactly like the Monte-Carlo and
/// possible-world engines do).
fn masked_clearing_report() -> Value {
    let (n_tasks, n_workers) = (1250usize, 5000usize);
    let rounds = 100usize;
    let fixture = maps_bench::PeriodFixture::new(n_tasks, n_workers, 10, 3);
    let weights = random_weights(n_tasks, 5);
    let masks: Vec<Vec<bool>> = (0..rounds)
        .map(|round| {
            let mut rng = XorShift(0x600D + round as u64);
            (0..n_tasks).map(|_| rng.next_f64() < 0.6).collect()
        })
        .collect();

    let filter_left_pass = || -> f64 {
        masks
            .iter()
            .map(|keep| {
                let (sub, old_of_new) = fixture.graph.filter_left(keep);
                let sub_weights: Vec<f64> =
                    old_of_new.iter().map(|&l| weights[l as usize]).collect();
                max_weight_matching_left_weights(&sub, &sub_weights).1
            })
            .sum()
    };
    let mut scratch = MatchScratch::new();
    let mut order = Vec::new();
    maps_matching::sort_by_weight_desc(&weights, &mut order);
    let mut masked_pass = || -> f64 {
        masks
            .iter()
            .map(|keep| {
                scratch.max_weight_value_ordered(&fixture.graph, &weights, &order, Some(keep))
            })
            .sum()
    };
    assert!(
        (filter_left_pass() - masked_pass()).abs() < 1e-6,
        "masked clearing disagrees with filter_left"
    );

    let filter_left_ns = median_ns(5, filter_left_pass);
    let masked_ns = median_ns(5, &mut masked_pass);
    let speedup = filter_left_ns / masked_ns;
    println!(
        "masked_clearing {n_tasks}x{n_workers} x{rounds} masks: filter_left {} | masked {} \
         | speedup {speedup:.1}x",
        format_ms(filter_left_ns),
        format_ms(masked_ns),
    );
    serde::object([
        ("n_tasks", (n_tasks as f64).to_value()),
        ("n_workers", (n_workers as f64).to_value()),
        ("rounds", (rounds as f64).to_value()),
        ("filter_left_ns", filter_left_ns.to_value()),
        ("masked_ns", masked_ns.to_value()),
        ("speedup", speedup.to_value()),
    ])
}

/// PR-2 tentpole row: the rayon table-driven `price_period` vs the
/// retained sequential on-demand path, on a 64-grid (≥32 per the
/// acceptance bar) panel with abundant supply and plateau-worst-case
/// acceptance statistics (see [`plateau_maps`]) — the regime where the
/// on-demand path degenerates to `O(n²·|ladder|)` re-scans per grid.
fn pricing_period_report() -> (Value, f64) {
    let (n_tasks, n_workers, side) = (4000usize, 5000usize, 8u32);
    let grids = (side * side) as usize;
    let fixture = PeriodFixture::new(n_tasks, n_workers, side, 11);

    let mut sequential_maps = plateau_maps(grids, false);
    let mut parallel_maps = plateau_maps(grids, true);
    let sequential_prices = sequential_maps.price_period(&fixture.input()).prices;
    let parallel_prices = parallel_maps.price_period(&fixture.input()).prices;
    let bit_identical = sequential_prices.len() == parallel_prices.len()
        && sequential_prices
            .iter()
            .zip(&parallel_prices)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "parallel pricing diverged from sequential");

    let sequential_ns = median_ns(5, || sequential_maps.price_period(&fixture.input()));
    let parallel_ns = median_ns(5, || parallel_maps.price_period(&fixture.input()));
    let threads = rayon::current_num_threads();
    let speedup = sequential_ns / parallel_ns;
    println!(
        "pricing_period {grids} grids, {n_tasks}x{n_workers}: sequential {} | parallel {} \
         ({threads} threads) | speedup {speedup:.2}x | bit-identical {bit_identical}",
        format_ms(sequential_ns),
        format_ms(parallel_ns),
    );
    (
        serde::object([
            ("grids", (grids as f64).to_value()),
            ("n_tasks", (n_tasks as f64).to_value()),
            ("n_workers", (n_workers as f64).to_value()),
            ("sequential_ns", sequential_ns.to_value()),
            ("parallel_ns", parallel_ns.to_value()),
            ("threads", (threads as f64).to_value()),
            ("speedup", speedup.to_value()),
            ("bit_identical", bit_identical.to_value()),
        ]),
        speedup,
    )
}

/// PR-2 runner row: the seed-parallel `(cell × seed)` fan-out vs the
/// serial runner on a small two-x panel.
fn seed_runner_report() -> Value {
    let spec = PanelSpec {
        figure: "bench",
        panel: "seed_runner",
        x_name: "|W|",
        paper_ref: "bench_report",
        xs: vec![30.0, 60.0],
        build: Arc::new(|x, _scale, seed| {
            SyntheticConfig::paper_default()
                .with_num_workers(x as usize)
                .with_num_tasks(150)
                .with_periods(8)
                .with_grid_side(4)
                .build(seed)
        }),
    };
    let num_seeds = 4u64;
    let options = RunOptions {
        scale: Scale::Quick,
        num_seeds,
        parallel: true,
        track_memory: false,
        ..RunOptions::default()
    };
    let serial_options = RunOptions {
        parallel: false,
        ..options
    };
    // Schedule-independent columns must agree bitwise (timing columns
    // are wall-clock readings and legitimately differ).
    let canon = |rows: &[maps_experiments::Row]| -> Vec<u64> {
        rows.iter()
            .flat_map(|r| {
                [
                    r.x.to_bits(),
                    r.revenue.to_bits(),
                    r.issued.to_bits(),
                    r.accepted.to_bits(),
                    r.matched.to_bits(),
                ]
            })
            .collect()
    };
    let serial_rows = run_panel(&spec, serial_options);
    let parallel_rows = run_panel(&spec, options);
    let bit_identical = canon(&serial_rows) == canon(&parallel_rows);
    assert!(bit_identical, "seed-parallel rows diverged from serial");

    let serial_ns = median_ns(3, || run_panel(&spec, serial_options));
    let parallel_ns = median_ns(3, || run_panel(&spec, options));
    let threads = rayon::current_num_threads();
    let speedup = serial_ns / parallel_ns;
    println!(
        "seed_runner {} cells x {num_seeds} seeds: serial {} | parallel {} \
         ({threads} threads) | speedup {speedup:.2}x | bit-identical {bit_identical}",
        serial_rows.len(),
        format_ms(serial_ns),
        format_ms(parallel_ns),
    );
    serde::object([
        ("cells", (serial_rows.len() as f64).to_value()),
        ("num_seeds", (num_seeds as f64).to_value()),
        ("serial_ns", serial_ns.to_value()),
        ("parallel_ns", parallel_ns.to_value()),
        ("threads", (threads as f64).to_value()),
        ("speedup", speedup.to_value()),
        ("bit_identical", bit_identical.to_value()),
    ])
}

/// PR-3 tentpole rows: per-period capped-graph construction on a
/// 100k-worker pool with low churn (1% arrivals + 1% departures per
/// period, within the ≤5% acceptance band) — the from-scratch pipeline
/// (materialize the live worker list + `build_period_graph_capped`, a
/// full index rebuild) vs `PeriodGraphCache::advance_capped` (apply the
/// churn to the dynamic index, then the same output-sensitive queries).
/// Both paths are cross-checked for exact graph equality every period
/// before anything is timed; `bit_identical` records the check.
fn graph_build_report() -> (Value, Value, f64) {
    let n_workers = 100_000usize;
    let n_tasks = 128usize;
    let churn = n_workers / 100;
    let k = 16usize;
    let periods = 15usize;
    let grid = GridSpec::square(Rect::square(100.0), 16);
    let mut rng = XorShift(0xC0FFEE);
    let random_worker = |rng: &mut XorShift| {
        WorkerInput::new(
            &grid,
            Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
            5.0 + rng.next_f64() * 10.0,
        )
    };
    let mut cache = PeriodGraphCache::new(&grid, n_workers);
    let seed_arrivals: Vec<(u32, WorkerInput)> = (0..n_workers)
        .map(|id| (id as u32, random_worker(&mut rng)))
        .collect();
    cache.apply(WorkerChurn {
        arrivals: &seed_arrivals,
        ..WorkerChurn::default()
    });
    drop(seed_arrivals);
    let mut next_id = n_workers as u32;

    let mut scratch_samples = Vec::with_capacity(periods);
    let mut incremental_samples = Vec::with_capacity(periods);
    let mut workers: Vec<WorkerInput> = Vec::new();
    let mut bit_identical = true;
    for _ in 0..periods {
        // Low churn: a deterministic sample of live ids departs, the same
        // number of fresh workers arrives.
        let live = cache.live_ids();
        let mut departures: Vec<u32> = (0..churn * 2)
            .map(|_| live[(rng.next_u64() as usize) % live.len()])
            .collect();
        departures.sort_unstable();
        departures.dedup();
        departures.truncate(churn);
        let arrivals: Vec<(u32, WorkerInput)> = (0..churn)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                (id, random_worker(&mut rng))
            })
            .collect();
        let tasks: Vec<TaskInput> = (0..n_tasks)
            .map(|_| {
                TaskInput::new(
                    &grid,
                    Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                    0.5 + rng.next_f64() * 3.0,
                )
            })
            .collect();

        let start = Instant::now();
        let incremental = black_box(cache.advance_capped(
            WorkerChurn {
                arrivals: &arrivals,
                departures: &departures,
                relocations: &[],
            },
            &tasks,
            k,
        ));
        incremental_samples.push(start.elapsed().as_secs_f64() * 1e9);

        // The from-scratch pipeline on the identical post-churn live set.
        let start = Instant::now();
        cache.fill_worker_inputs(&mut workers);
        let scratch = black_box(build_period_graph_capped(&grid, &tasks, &workers, k));
        scratch_samples.push(start.elapsed().as_secs_f64() * 1e9);

        bit_identical &= incremental == scratch;
    }
    assert!(bit_identical, "incremental graph diverged from scratch");
    scratch_samples.sort_by(f64::total_cmp);
    incremental_samples.sort_by(f64::total_cmp);
    let scratch_ns = scratch_samples[scratch_samples.len() / 2];
    let incremental_ns = incremental_samples[incremental_samples.len() / 2];
    let speedup = scratch_ns / incremental_ns;
    println!(
        "graph_build {n_workers} workers, {n_tasks} tasks, churn {churn}+{churn}/period, k={k}: \
         scratch {} | incremental {} | speedup {speedup:.2}x | bit-identical {bit_identical}",
        format_ms(scratch_ns),
        format_ms(incremental_ns),
    );
    let scratch_row = serde::object([
        ("n_workers", (n_workers as f64).to_value()),
        ("n_tasks", (n_tasks as f64).to_value()),
        ("churn_per_period", ((churn * 2) as f64).to_value()),
        ("k", (k as f64).to_value()),
        ("periods", (periods as f64).to_value()),
        ("build_ns", scratch_ns.to_value()),
    ]);
    let incremental_row = serde::object([
        ("n_workers", (n_workers as f64).to_value()),
        ("n_tasks", (n_tasks as f64).to_value()),
        ("churn_per_period", ((churn * 2) as f64).to_value()),
        ("k", (k as f64).to_value()),
        ("periods", (periods as f64).to_value()),
        ("build_ns", incremental_ns.to_value()),
        ("speedup", speedup.to_value()),
        ("bit_identical", bit_identical.to_value()),
    ]);
    (scratch_row, incremental_row, speedup)
}

/// PR-8 tentpole row: the SoA capped k-NN kernel in isolation. A batch
/// of capped nearest-neighbour queries runs against a churn-built
/// [`DynamicBucketIndex`] (the structure-of-arrays coordinate lanes the
/// PR-8 layout change introduced) over a 200k-point set. Every query
/// result is cross-checked for exact `(distance, id)` equality against
/// a fresh static [`BucketIndex`] over the same live set before
/// anything is timed; `bit_identical` records the check. The timed loop
/// uses `k_nearest_within_into` with a reused buffer — the exact shape
/// of the sharded service's per-period graph build.
fn knn_query_report() -> Value {
    let n_points = 200_000usize;
    let queries = 512usize;
    let k = 16usize;
    let radius = 10.0f64;
    let grid = GridSpec::square(Rect::square(100.0), 32);
    let mut rng = XorShift(0x50A0);
    let points: Vec<(Point, u32)> = (0..n_points)
        .map(|id| {
            (
                Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                id as u32,
            )
        })
        .collect();
    // Build the dynamic index by insertion (the path the service uses),
    // with a churn pass so the SoA lanes contain reuse holes rather than
    // a pristine append-only layout.
    let mut dynamic = DynamicBucketIndex::new(grid);
    for &(p, id) in &points {
        dynamic.insert(p, id);
    }
    let churn = n_points / 100;
    for &(p, id) in points.iter().take(churn) {
        dynamic.remove(p, id);
    }
    for &(p, id) in points.iter().take(churn) {
        dynamic.insert(p, id);
    }
    let static_index = BucketIndex::build_with_grid(grid, &points);
    let centers: Vec<Point> = (0..queries)
        .map(|_| Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0))
        .collect();

    // Correctness cross-check before timing anything.
    let mut bit_identical = true;
    for &c in &centers {
        let got = dynamic.k_nearest_within(c, radius, k, |_, _| true);
        let want = static_index.k_nearest_within(c, radius, k, |_, _| true);
        bit_identical &= got.len() == want.len()
            && got
                .iter()
                .zip(&want)
                .all(|(a, b)| a.0.to_bits() == b.0.to_bits() && a.1 == b.1);
    }
    assert!(bit_identical, "dynamic k-NN diverged from static rebuild");

    let mut buf: Vec<(f64, u32)> = Vec::new();
    let query_ns = median_ns(5, || {
        let mut checksum = 0u64;
        for &c in &centers {
            dynamic.k_nearest_within_into(c, radius, k, |_, _| true, &mut buf);
            checksum = checksum.wrapping_add(buf.len() as u64);
        }
        checksum
    });
    let queries_per_sec = queries as f64 / (query_ns / 1e9);
    println!(
        "knn_query {n_points} points, {queries} queries, k={k}, r={radius}: batch {} \
         | {queries_per_sec:.0} queries/s | bit-identical {bit_identical}",
        format_ms(query_ns),
    );
    serde::object([
        ("n_points", (n_points as f64).to_value()),
        ("queries", (queries as f64).to_value()),
        ("k", (k as f64).to_value()),
        ("radius", radius.to_value()),
        ("query_ns", query_ns.to_value()),
        ("queries_per_sec", queries_per_sec.to_value()),
        ("bit_identical", bit_identical.to_value()),
    ])
}

/// PR-8 telemetry row: the price of the always-on latency histograms.
/// Telemetry recording is a pure function of per-period counts (it
/// participates in `deterministic_bits`, so it cannot be compiled out
/// for an A/B leg without changing the outcome), which means its
/// end-to-end cost is exactly the `record_period` call pattern one
/// `service_throughput` replay performs: one call per period at that
/// row's issued-task and live-worker scale. The row times that pattern
/// (amplified for timer resolution, averaged back down) and reports
/// `overhead = 1 + telemetry_ns / replay_ns` against the service row's
/// replay measured in the same process. `bench_gate` fails any report
/// where `overhead > 1.03`.
fn telemetry_overhead_report(service_replay_ns: f64) -> Value {
    let periods = 10u64;
    let tasks_per_period = 200u64; // service_throughput: 2k tasks over 10 periods
    let live_workers = 100_000u64;
    let reps = 10_000usize;
    let batch_ns = median_ns(5, || {
        let mut t = maps_telemetry::LatencyTelemetry::new();
        for _ in 0..reps {
            for _ in 0..periods {
                t.record_period(black_box(tasks_per_period), black_box(live_workers));
            }
        }
        t
    });
    let telemetry_ns = batch_ns / reps as f64;
    let overhead = 1.0 + telemetry_ns / service_replay_ns;
    println!(
        "telemetry_overhead {periods} record_period calls/replay ({tasks_per_period} tasks, \
         {live_workers} workers): {telemetry_ns:.0} ns/replay | overhead {overhead:.6}x",
    );
    serde::object([
        ("periods", (periods as f64).to_value()),
        ("tasks_per_period", (tasks_per_period as f64).to_value()),
        ("live_workers", (live_workers as f64).to_value()),
        ("telemetry_ns", telemetry_ns.to_value()),
        ("replay_ns", service_replay_ns.to_value()),
        ("overhead", overhead.to_value()),
    ])
}

/// PR-4 tentpole row: end-to-end event throughput of the grid-sharded
/// online service on a 100k-worker stream (every worker arrival, task
/// request and period tick is one event). The replayed outcome is
/// cross-checked bit-for-bit against `Simulation::run` before anything
/// is timed — a throughput number for a service that diverges from the
/// batch oracle would be meaningless.
fn service_throughput_report() -> Value {
    let n_workers = 100_000usize;
    let n_tasks = 2_000usize;
    let periods = 10usize;
    let shards = 4usize;
    let truth = SyntheticConfig::paper_default()
        .with_num_workers(n_workers)
        .with_num_tasks(n_tasks)
        .with_periods(periods)
        .build(0x5E41);
    let options = maps_simulator::SimOptions {
        calibrate: false,
        ..maps_simulator::SimOptions::default()
    };
    let events = (truth.total_workers() + truth.total_tasks() + truth.num_periods()) as f64;
    let kind = maps_core::StrategyKind::Maps;

    let batch = maps_simulator::Simulation::new(truth.clone(), kind)
        .with_options(options)
        .run();
    let online = maps_service::replay_with_options(&truth, kind, shards, options);
    let bit_identical = online.deterministic_bits() == batch.deterministic_bits();
    assert!(bit_identical, "service replay diverged from the batch run");

    let replay_ns = median_ns(3, || {
        maps_service::replay_with_options(&truth, kind, shards, options)
    });
    let events_per_sec = events / (replay_ns / 1e9);
    let threads = rayon::current_num_threads();
    println!(
        "service_throughput {n_workers} workers, {n_tasks} tasks, {periods} periods, \
         {shards} shards: replay {} | {events_per_sec:.0} events/s ({threads} threads) \
         | bit-identical {bit_identical}",
        format_ms(replay_ns),
    );
    serde::object([
        ("n_workers", (n_workers as f64).to_value()),
        ("n_tasks", (n_tasks as f64).to_value()),
        ("periods", (periods as f64).to_value()),
        ("shards", (shards as f64).to_value()),
        ("events", events.to_value()),
        ("replay_ns", replay_ns.to_value()),
        ("events_per_sec", events_per_sec.to_value()),
        ("threads", (threads as f64).to_value()),
        ("bit_identical", bit_identical.to_value()),
    ])
}

/// PR-5/PR-7 tentpole row: end-to-end event throughput of the bounded
/// multi-producer ingestion front-end on the same 100k-worker stream
/// the `service_throughput` row uses, split across 4 producer threads.
/// The ingested outcome is cross-checked bit-for-bit against serial
/// ingestion (`replay_with_options`) before anything is timed — the
/// interleaving-invariance contract observed at benchmark scale.
///
/// Since PR 7 the row also times the serial-push baseline it competes
/// with (`serial_ns`) and records `speedup_vs_serial` — the number
/// whose silent regression below 1.0 shipped the PR-5/6 front-door
/// slowdown. `bench_gate` fails any candidate whose multi-producer
/// ingestion is slower than serial push.
///
/// Measurement protocol: the serial and ingested replays run in
/// **interleaved pairs** (serial, ingested, serial, ingested, …) and
/// `speedup_vs_serial` is the median of the per-pair ratios. Both legs
/// of a pair see the same instantaneous host conditions, so slow
/// environmental drift (a noisy-neighbor VM, frequency scaling) cancels
/// out of the ratio instead of landing on whichever block of
/// back-to-back runs it happened to hit.
fn ingest_throughput_report() -> Value {
    let n_workers = 100_000usize;
    let n_tasks = 2_000usize;
    let periods = 10usize;
    let shards = 4usize;
    let producers = 4usize;
    let queue_capacity = maps_service::IngestConfig::default().queue_capacity;
    let truth = SyntheticConfig::paper_default()
        .with_num_workers(n_workers)
        .with_num_tasks(n_tasks)
        .with_periods(periods)
        .build(0x5E41);
    let options = maps_simulator::SimOptions {
        calibrate: false,
        ..maps_simulator::SimOptions::default()
    };
    let events = (truth.total_workers() + truth.total_tasks() + truth.num_periods()) as f64;
    let kind = maps_core::StrategyKind::Maps;

    let serial = maps_service::replay_with_options(&truth, kind, shards, options);
    let ingested = maps_service::replay_ingested(&truth, kind, shards, producers, options);
    let bit_identical = ingested.deterministic_bits() == serial.deterministic_bits();
    assert!(bit_identical, "ingested replay diverged from serial push");

    // Interleaved pairs: each round times one serial leg then one
    // ingested leg back-to-back, and only the per-round ratio is kept.
    let rounds = 5usize;
    let mut serial_samples = Vec::with_capacity(rounds);
    let mut ingested_samples = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        std::hint::black_box(maps_service::replay_with_options(
            &truth, kind, shards, options,
        ));
        let s = t.elapsed().as_nanos() as f64;
        let t = std::time::Instant::now();
        std::hint::black_box(maps_service::replay_ingested(
            &truth, kind, shards, producers, options,
        ));
        let i = t.elapsed().as_nanos() as f64;
        serial_samples.push(s);
        ingested_samples.push(i);
        ratios.push(s / i);
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let serial_ns = median(serial_samples);
    let replay_ns = median(ingested_samples);
    let events_per_sec = events / (replay_ns / 1e9);
    let speedup_vs_serial = median(ratios);
    let threads = rayon::current_num_threads();
    println!(
        "ingest_throughput {n_workers} workers, {n_tasks} tasks, {periods} periods, \
         {shards} shards, {producers} producers: replay {} | {events_per_sec:.0} events/s \
         | serial {} | speedup_vs_serial {speedup_vs_serial:.2}x \
         ({threads} threads) | bit-identical {bit_identical}",
        format_ms(replay_ns),
        format_ms(serial_ns),
    );
    serde::object([
        ("n_workers", (n_workers as f64).to_value()),
        ("n_tasks", (n_tasks as f64).to_value()),
        ("periods", (periods as f64).to_value()),
        ("shards", (shards as f64).to_value()),
        ("producers", (producers as f64).to_value()),
        ("queue_capacity", (queue_capacity as f64).to_value()),
        ("events", events.to_value()),
        ("replay_ns", replay_ns.to_value()),
        ("events_per_sec", events_per_sec.to_value()),
        ("serial_ns", serial_ns.to_value()),
        ("speedup_vs_serial", speedup_vs_serial.to_value()),
        ("threads", (threads as f64).to_value()),
        ("bit_identical", bit_identical.to_value()),
    ])
}

/// PR-6 tentpole row: the cost of durability. The same 100k-worker
/// stream the `service_throughput` row replays is replayed again with
/// the write-ahead journal attached (every admitted event encoded and
/// buffered, flush + fsync + checkpoint at each epoch barrier). The
/// journaled outcome is cross-checked bit-for-bit against the
/// unjournaled replay before anything is timed, and the acceptance bar
/// is `overhead ≤ 2x`: a WAL that more than doubles ingest cost would
/// not be deployable in front of the pricing loop.
fn journal_throughput_report() -> Value {
    let n_workers = 100_000usize;
    let n_tasks = 2_000usize;
    let periods = 10usize;
    let shards = 4usize;
    let checkpoint_every = 4u32;
    let truth = SyntheticConfig::paper_default()
        .with_num_workers(n_workers)
        .with_num_tasks(n_tasks)
        .with_periods(periods)
        .build(0x5E41);
    let options = maps_simulator::SimOptions {
        calibrate: false,
        ..maps_simulator::SimOptions::default()
    };
    let events = (truth.total_workers() + truth.total_tasks() + truth.num_periods()) as f64;
    let kind = maps_core::StrategyKind::Maps;
    let scratch = std::env::temp_dir().join(format!("maps_bench_journal_{}", std::process::id()));

    let unjournaled = maps_service::replay_with_options(&truth, kind, shards, options);
    let journaled = maps_service::replay_journaled(
        &truth,
        kind,
        shards,
        options,
        &maps_service::JournalConfig::new(scratch.join("check"), checkpoint_every),
    )
    .expect("journaled replay");
    let bit_identical = journaled.deterministic_bits() == unjournaled.deterministic_bits();
    assert!(bit_identical, "journaled replay diverged from unjournaled");

    let unjournaled_ns = median_ns(3, || {
        maps_service::replay_with_options(&truth, kind, shards, options)
    });
    let mut run = 0u32;
    let replay_ns = median_ns(3, || {
        run += 1;
        maps_service::replay_journaled(
            &truth,
            kind,
            shards,
            options,
            &maps_service::JournalConfig::new(scratch.join(format!("run{run}")), checkpoint_every),
        )
        .expect("journaled replay")
    });
    let journal_bytes = std::fs::metadata(
        maps_service::JournalConfig::new(scratch.join("run1"), checkpoint_every).journal_path(),
    )
    .map(|m| m.len() as f64)
    .unwrap_or(0.0);
    let _ = std::fs::remove_dir_all(&scratch);
    let overhead = replay_ns / unjournaled_ns;
    let events_per_sec = events / (replay_ns / 1e9);
    let threads = rayon::current_num_threads();
    println!(
        "journal_throughput {n_workers} workers, {n_tasks} tasks, {periods} periods, \
         {shards} shards: unjournaled {} | journaled {} | overhead {overhead:.2}x \
         | {events_per_sec:.0} events/s ({threads} threads) | bit-identical {bit_identical}",
        format_ms(unjournaled_ns),
        format_ms(replay_ns),
    );
    serde::object([
        ("n_workers", (n_workers as f64).to_value()),
        ("n_tasks", (n_tasks as f64).to_value()),
        ("periods", (periods as f64).to_value()),
        ("shards", (shards as f64).to_value()),
        ("checkpoint_every", (checkpoint_every as f64).to_value()),
        ("events", events.to_value()),
        ("journal_bytes", journal_bytes.to_value()),
        ("replay_ns", replay_ns.to_value()),
        ("unjournaled_ns", unjournaled_ns.to_value()),
        ("overhead", overhead.to_value()),
        ("events_per_sec", events_per_sec.to_value()),
        ("threads", (threads as f64).to_value()),
        ("bit_identical", bit_identical.to_value()),
    ])
}

/// PR-9 row: the static-analysis gate's own runtime. Scans every
/// workspace `.rs` file through `maps_lint::scan_workspace` — the same
/// library entry the `maps-lint` binary and CI use — asserting the
/// workspace is clean (zero violations, matching the CI bar) before
/// timing, so the row can never report the latency of a failing scan.
fn lint_runtime_report() -> Value {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = maps_lint::scan_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace has lint violations; fix or waive before benchmarking"
    );
    let files = report.files_scanned as f64;
    let waived = report.waived.len() as f64;
    let scan_ns = median_ns(5, || {
        maps_lint::scan_workspace(&root).expect("workspace scan")
    });
    let files_per_sec = files / (scan_ns / 1e9);
    println!(
        "lint_runtime {files:.0} files, {waived:.0} waivers: scan {} | {files_per_sec:.0} files/s",
        format_ms(scan_ns),
    );
    serde::object([
        ("files", files.to_value()),
        ("waived", waived.to_value()),
        ("violations", (report.violations.len() as f64).to_value()),
        ("scan_ns", scan_ns.to_value()),
        ("files_per_sec", files_per_sec.to_value()),
    ])
}

/// PR-10 row: the interleaving model checker's own runtime. Exhaustively
/// explores the ring's SeqCst-fenced park/wake handshake in miniature —
/// the exact Dekker-style publish/park rendezvous PR 7's fence fix
/// relies on, and the same shape the `maps-service` model suite checks
/// against the shipping `ingest.rs` — through `maps-model`'s DFS
/// scheduler with sleep-set pruning. The exploration is asserted
/// counterexample-free (matching the CI bar) before timing, so the row
/// can never report the latency of a failing check.
///
/// The scenario deliberately uses `maps_model` types directly rather
/// than enabling `maps-service`'s `maps_model` feature: cargo feature
/// unification would otherwise switch the shipping ring to tracked
/// atomics for the whole bench binary and corrupt `ingest_throughput`.
fn model_check_runtime_report() -> Value {
    use maps_model::sync::{fence, AtomicBool, AtomicU64, Condvar, Mutex, Ordering};
    use std::sync::Arc;
    let scenario = || {
        let state = Arc::new((
            Mutex::new(()),
            Condvar::new(),
            AtomicU64::new(0),      // published
            AtomicBool::new(false), // parked
        ));
        let s2 = Arc::clone(&state);
        let t = maps_model::thread::spawn(move || {
            let (park, cv, published, parked) = &*s2;
            published.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst); // the PR 7 fix under test
            if parked.load(Ordering::Relaxed) {
                drop(park.lock().expect("park mutex"));
                cv.notify_all();
            }
        });
        let (park, cv, published, parked) = &*state;
        let guard = park.lock().expect("park mutex");
        parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if published.load(Ordering::SeqCst) == 0 {
            let _g = cv.wait(guard).expect("park mutex");
        } else {
            drop(guard);
        }
        parked.store(false, Ordering::SeqCst);
        t.join().unwrap();
    };
    let report = maps_model::explore(scenario);
    assert!(
        report.failure.is_none(),
        "park/wake handshake has a counterexample: {:?}",
        report.failure
    );
    let executions = report.executions as f64;
    let pruned = report.pruned as f64;
    let check_ns = median_ns(5, || {
        let r = maps_model::explore(scenario);
        assert!(r.failure.is_none(), "{:?}", r.failure);
    });
    let executions_per_sec = executions / (check_ns / 1e9);
    println!(
        "model_check_runtime park/wake handshake: {executions:.0} executions \
         ({pruned:.0} pruned): check {} | {executions_per_sec:.0} executions/s",
        format_ms(check_ns),
    );
    serde::object([
        ("executions", executions.to_value()),
        ("pruned", pruned.to_value()),
        ("check_ns", check_ns.to_value()),
        ("executions_per_sec", executions_per_sec.to_value()),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    println!("maps bench_report — PR 10 kernel trajectory");
    println!("===========================================");
    let (possible_worlds, pw_speedup) = possible_worlds_report();
    let (monte_carlo, _mc_speedup) = monte_carlo_report();
    let masked_clearing = masked_clearing_report();
    let (pricing_period, pricing_speedup) = pricing_period_report();
    let seed_runner = seed_runner_report();
    let (graph_build_scratch, graph_build_incremental, graph_speedup) = graph_build_report();
    let knn_query = knn_query_report();
    let service_throughput = service_throughput_report();
    let service_replay_ns = service_throughput
        .get("replay_ns")
        .and_then(|v| match v {
            Value::Number(n) => Some(*n),
            _ => None,
        })
        .expect("service row has replay_ns");
    let telemetry_overhead = telemetry_overhead_report(service_replay_ns);
    let ingest_throughput = ingest_throughput_report();
    let journal_throughput = journal_throughput_report();
    let lint_runtime = lint_runtime_report();
    let model_check_runtime = model_check_runtime_report();

    let journal_overhead = journal_throughput
        .get("overhead")
        .and_then(|v| match v {
            Value::Number(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(f64::INFINITY);
    if journal_overhead > 2.0 {
        eprintln!(
            "warning: journaled ingest overhead {journal_overhead:.2}x is beyond the 2x \
             acceptance bar"
        );
    }
    let ingest_speedup = ingest_throughput
        .get("speedup_vs_serial")
        .and_then(|v| match v {
            Value::Number(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0.0);
    if ingest_speedup < 1.0 {
        eprintln!(
            "warning: multi-producer ingestion speedup_vs_serial {ingest_speedup:.2}x is \
             below the serial-push bar"
        );
    }
    if pw_speedup < 5.0 {
        eprintln!("warning: gray-code speedup {pw_speedup:.1}x is below the 5x acceptance bar");
    }
    if pricing_speedup < 1.0 {
        eprintln!(
            "warning: parallel pricing speedup {pricing_speedup:.2}x shows no wall-clock win"
        );
    }
    if graph_speedup < 3.0 {
        eprintln!(
            "warning: incremental graph-build speedup {graph_speedup:.2}x is below the 3x \
             acceptance bar"
        );
    }
    let telemetry_cost = telemetry_overhead
        .get("overhead")
        .and_then(|v| match v {
            Value::Number(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(f64::INFINITY);
    if telemetry_cost > 1.03 {
        eprintln!(
            "warning: telemetry overhead {telemetry_cost:.4}x exceeds the 3% service-throughput \
             budget"
        );
    }

    let report = serde::object([
        ("schema", "maps-bench-report/v1".to_value()),
        ("pr", 10.0f64.to_value()),
        (
            "host",
            serde::object([("threads", (rayon::current_num_threads() as f64).to_value())]),
        ),
        (
            "kernels",
            serde::object([
                ("possible_worlds_n20", possible_worlds),
                ("monte_carlo", monte_carlo),
                ("masked_clearing", masked_clearing),
                ("pricing_period", pricing_period),
                ("seed_runner", seed_runner),
                ("graph_build_scratch", graph_build_scratch),
                ("graph_build_incremental", graph_build_incremental),
                ("knn_query", knn_query),
                ("service_throughput", service_throughput),
                ("telemetry_overhead", telemetry_overhead),
                ("ingest_throughput", ingest_throughput),
                ("journal_throughput", journal_throughput),
                ("lint_runtime", lint_runtime),
                ("model_check_runtime", model_check_runtime),
            ]),
        ),
    ]);
    let text = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{text}\n")).expect("report written");
    println!("wrote {out_path}");
}
