//! Machine-readable perf trajectory: measures the PR-1 evaluation
//! kernels against their naive baselines and writes `BENCH_PR1.json`.
//!
//! ```sh
//! cargo run --release -p maps-bench --bin bench_report [-- OUT.json]
//! ```
//!
//! Schema (`maps-bench-report/v1`, also documented in the README):
//!
//! ```json
//! {
//!   "schema": "maps-bench-report/v1",
//!   "pr": 1,
//!   "host": { "threads": 8 },
//!   "kernels": {
//!     "possible_worlds_n20": {
//!       "n_tasks": 20.0, "worlds": 1048576.0,
//!       "naive_ns": ..., "gray_ns": ..., "speedup": ...
//!     },
//!     "monte_carlo": {
//!       "n_tasks": ..., "n_workers": ..., "samples": ...,
//!       "sequential_ns": ..., "parallel_ns": ...,
//!       "threads": ..., "speedup": ..., "bit_identical": true
//!     },
//!     "masked_clearing": {
//!       "n_tasks": ..., "n_workers": ...,
//!       "filter_left_ns": ..., "masked_ns": ..., "speedup": ...
//!     }
//!   }
//! }
//! ```
//!
//! Every entry reports the **median of repeated wall-clock runs** in
//! nanoseconds for one full kernel invocation (not per sample/world).
//! Later PRs append `BENCH_PR<N>.json` files so the perf trajectory of
//! the repository stays diffable.

use maps_bench::{random_graph, random_weights, XorShift};
use maps_core::{monte_carlo_expected_revenue_parallel, monte_carlo_expected_revenue_seeded};
use maps_matching::{max_weight_matching_left_weights, MatchScratch, PossibleWorlds};
use serde::{Serialize, Value};
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock nanoseconds of `runs` invocations of `f`.
fn median_ns<O>(runs: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn accept_probs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift(seed | 1);
    (0..n).map(|_| 0.2 + 0.6 * rng.next_f64()).collect()
}

fn format_ms(ns: f64) -> String {
    format!("{:.2} ms", ns / 1e6)
}

/// Gray-code vs naive possible-world enumeration at the acceptance
/// criterion's n = 20 (1,048,576 worlds per solve).
fn possible_worlds_report() -> (Value, f64) {
    let n = 20usize;
    let graph = random_graph(n, n, 1.0 / 3.0, 42);
    let weights = random_weights(n, 43);
    let probs = accept_probs(n, 44);
    let pw = PossibleWorlds::new(&graph, &weights, &probs);

    // Correctness cross-check before timing anything.
    let naive_value = pw.expected_revenue_naive();
    let gray_value = pw.expected_revenue();
    assert!(
        (naive_value - gray_value).abs() < 1e-12 * naive_value.abs().max(1.0),
        "gray {gray_value} disagrees with naive {naive_value}"
    );

    let gray_ns = median_ns(5, || pw.expected_revenue());
    let naive_ns = median_ns(3, || pw.expected_revenue_naive());
    let speedup = naive_ns / gray_ns;
    println!(
        "possible_worlds n={n}: naive {} | gray {} | speedup {speedup:.1}x",
        format_ms(naive_ns),
        format_ms(gray_ns),
    );
    (
        serde::object([
            ("n_tasks", (n as f64).to_value()),
            ("worlds", ((1u64 << n) as f64).to_value()),
            ("naive_ns", naive_ns.to_value()),
            ("gray_ns", gray_ns.to_value()),
            ("speedup", speedup.to_value()),
        ]),
        speedup,
    )
}

/// Deterministic parallel Monte-Carlo vs its sequential twin.
fn monte_carlo_report() -> (Value, f64) {
    let (n_tasks, n_workers) = (400usize, 300usize);
    let graph = random_graph(n_tasks, n_workers, 0.04, 51);
    let weights = random_weights(n_tasks, 53);
    let probs = accept_probs(n_tasks, 55);
    let samples = 20_000u32;
    let seed = 7u64;

    let sequential_value =
        monte_carlo_expected_revenue_seeded(&graph, &weights, &probs, samples, seed);
    let parallel_value =
        monte_carlo_expected_revenue_parallel(&graph, &weights, &probs, samples, seed);
    let bit_identical = sequential_value.to_bits() == parallel_value.to_bits();
    assert!(bit_identical, "parallel MC diverged from sequential");

    let sequential_ns = median_ns(3, || {
        monte_carlo_expected_revenue_seeded(&graph, &weights, &probs, samples, seed)
    });
    let parallel_ns = median_ns(5, || {
        monte_carlo_expected_revenue_parallel(&graph, &weights, &probs, samples, seed)
    });
    let threads = rayon::current_num_threads();
    let speedup = sequential_ns / parallel_ns;
    // "Near-linear" is host-relative: efficiency ≈ 1.0 means the
    // parallel engine scales linearly in the threads this host offers
    // (on a 1-CPU container that is speedup ≈ 1.0 with no overhead).
    let efficiency = speedup / threads as f64;
    println!(
        "monte_carlo {n_tasks}x{n_workers} x{samples}: sequential {} | parallel {} \
         ({threads} threads) | speedup {speedup:.2}x | efficiency {efficiency:.2} \
         | bit-identical {bit_identical}",
        format_ms(sequential_ns),
        format_ms(parallel_ns),
    );
    (
        serde::object([
            ("n_tasks", (n_tasks as f64).to_value()),
            ("n_workers", (n_workers as f64).to_value()),
            ("samples", (samples as f64).to_value()),
            ("sequential_ns", sequential_ns.to_value()),
            ("parallel_ns", parallel_ns.to_value()),
            ("threads", (threads as f64).to_value()),
            ("speedup", speedup.to_value()),
            ("parallel_efficiency", efficiency.to_value()),
            ("bit_identical", bit_identical.to_value()),
        ]),
        speedup,
    )
}

/// Masked clearing kernel vs the `filter_left` materialization, in the
/// shape the evaluation loops actually use it: weights fixed, the
/// acceptance mask changing every round (so the masked path amortizes
/// its weight order and buffers, exactly like the Monte-Carlo and
/// possible-world engines do).
fn masked_clearing_report() -> Value {
    let (n_tasks, n_workers) = (1250usize, 5000usize);
    let rounds = 100usize;
    let fixture = maps_bench::PeriodFixture::new(n_tasks, n_workers, 10, 3);
    let weights = random_weights(n_tasks, 5);
    let masks: Vec<Vec<bool>> = (0..rounds)
        .map(|round| {
            let mut rng = XorShift(0x600D + round as u64);
            (0..n_tasks).map(|_| rng.next_f64() < 0.6).collect()
        })
        .collect();

    let filter_left_pass = || -> f64 {
        masks
            .iter()
            .map(|keep| {
                let (sub, old_of_new) = fixture.graph.filter_left(keep);
                let sub_weights: Vec<f64> =
                    old_of_new.iter().map(|&l| weights[l as usize]).collect();
                max_weight_matching_left_weights(&sub, &sub_weights).1
            })
            .sum()
    };
    let mut scratch = MatchScratch::new();
    let mut order = Vec::new();
    maps_matching::sort_by_weight_desc(&weights, &mut order);
    let mut masked_pass = || -> f64 {
        masks
            .iter()
            .map(|keep| {
                scratch.max_weight_value_ordered(&fixture.graph, &weights, &order, Some(keep))
            })
            .sum()
    };
    assert!(
        (filter_left_pass() - masked_pass()).abs() < 1e-6,
        "masked clearing disagrees with filter_left"
    );

    let filter_left_ns = median_ns(5, filter_left_pass);
    let masked_ns = median_ns(5, &mut masked_pass);
    let speedup = filter_left_ns / masked_ns;
    println!(
        "masked_clearing {n_tasks}x{n_workers} x{rounds} masks: filter_left {} | masked {} \
         | speedup {speedup:.1}x",
        format_ms(filter_left_ns),
        format_ms(masked_ns),
    );
    serde::object([
        ("n_tasks", (n_tasks as f64).to_value()),
        ("n_workers", (n_workers as f64).to_value()),
        ("rounds", (rounds as f64).to_value()),
        ("filter_left_ns", filter_left_ns.to_value()),
        ("masked_ns", masked_ns.to_value()),
        ("speedup", speedup.to_value()),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());

    println!("maps bench_report — PR 1 kernel trajectory");
    println!("==========================================");
    let (possible_worlds, pw_speedup) = possible_worlds_report();
    let (monte_carlo, _mc_speedup) = monte_carlo_report();
    let masked_clearing = masked_clearing_report();

    if pw_speedup < 5.0 {
        eprintln!("warning: gray-code speedup {pw_speedup:.1}x is below the 5x acceptance bar");
    }

    let report = serde::object([
        ("schema", "maps-bench-report/v1".to_value()),
        ("pr", 1.0f64.to_value()),
        (
            "host",
            serde::object([("threads", (rayon::current_num_threads() as f64).to_value())]),
        ),
        (
            "kernels",
            serde::object([
                ("possible_worlds_n20", possible_worlds),
                ("monte_carlo", monte_carlo),
                ("masked_clearing", masked_clearing),
            ]),
        ),
    ]);
    let text = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{text}\n")).expect("report written");
    println!("wrote {out_path}");
}
