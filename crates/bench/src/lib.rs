//! # maps-bench
//!
//! Criterion benchmarks backing the paper's Time panels in micro form
//! plus data-structure benchmarks for the substrates. Shared fixtures
//! live here; the benches themselves are under `benches/`.
//!
//! Run everything with `cargo bench --workspace`; each bench uses small
//! sample counts so the full suite completes in minutes.

#![warn(missing_docs)]

use maps_core::{MapsConfig, MapsStrategy, PeriodInput, TaskInput, WorkerInput};
use maps_market::PriceLadder;
use maps_matching::{BipartiteGraph, BipartiteGraphBuilder};
use maps_spatial::{GridSpec, Point, Rect};

pub use maps_testkit::XorShift;

/// A ready-to-price period fixture.
pub struct PeriodFixture {
    /// Grid of the fixture.
    pub grid: GridSpec,
    /// Tasks of the period.
    pub tasks: Vec<TaskInput>,
    /// Workers of the period.
    pub workers: Vec<WorkerInput>,
    /// Range-constraint bipartite graph.
    pub graph: BipartiteGraph,
}

impl PeriodFixture {
    /// Builds a period with `n_tasks` × `n_workers` over a `side × side`
    /// grid on the paper's 100×100 region, worker radius 10.
    pub fn new(n_tasks: usize, n_workers: usize, side: u32, seed: u64) -> Self {
        let grid = GridSpec::square(Rect::square(100.0), side);
        let mut rng = XorShift(seed | 1);
        let tasks: Vec<TaskInput> = (0..n_tasks)
            .map(|_| {
                TaskInput::new(
                    &grid,
                    Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                    0.5 + rng.next_f64() * 100.0,
                )
            })
            .collect();
        let workers: Vec<WorkerInput> = (0..n_workers)
            .map(|_| {
                WorkerInput::new(
                    &grid,
                    Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                    10.0,
                )
            })
            .collect();
        let graph = maps_core::build_period_graph_capped(&grid, &tasks, &workers, 64);
        Self {
            grid,
            tasks,
            workers,
            graph,
        }
    }

    /// A borrowed [`PeriodInput`] over this fixture.
    pub fn input(&self) -> PeriodInput<'_> {
        PeriodInput {
            grid: &self.grid,
            tasks: &self.tasks,
            workers: &self.workers,
            graph: &self.graph,
        }
    }
}

/// A MAPS strategy over the paper-default ladder with coarse
/// pseudorandom acceptance statistics (multiples of 1/8): plateau- and
/// tie-heavy, the hard case for the pricing heap and the shape where
/// the precomputed maximizer tables matter most. `parallel` selects the
/// rayon table path vs the retained sequential on-demand path.
pub fn seeded_maps(num_cells: usize, parallel: bool, seed: u64) -> MapsStrategy {
    let mut maps = MapsStrategy::new(
        num_cells,
        PriceLadder::paper_default(),
        MapsConfig {
            parallel,
            ..MapsConfig::default()
        },
    );
    let mut rng = XorShift(seed | 1);
    for cell in 0..num_cells {
        for idx in 0..maps.ladder().len() {
            maps.stats_mut(cell)
                .observe_batch(idx, 8, rng.next_u64() % 9);
        }
    }
    maps
}

/// A MAPS strategy seeded with the **plateau worst case** for the
/// sequential pricing path: the lowest rung has near-full acceptance
/// (`Ŝ = 0.95`, the global revenue maximum) while every other rung's
/// product `p·Ŝ(p)` is pinned at 0.8. Once the top rung's index is
/// demand-capped at 0.8, the lowest rung stays supply-capped (and
/// therefore better only at depth) until the supply ratio reaches 0.8 —
/// so the heap crosses a long `Δ = 0` plateau where the on-demand path
/// re-scans all remaining supply levels per admission (`O(n²·|ladder|)`)
/// and the precomputed table pays for itself even single-threaded.
/// Sample counts are large so UCB radii are negligible.
pub fn plateau_maps(num_cells: usize, parallel: bool) -> MapsStrategy {
    let mut maps = MapsStrategy::new(
        num_cells,
        PriceLadder::paper_default(),
        MapsConfig {
            parallel,
            ..MapsConfig::default()
        },
    );
    let n = 1_000_000u64;
    let ratios: Vec<f64> = maps
        .ladder()
        .prices()
        .iter()
        .enumerate()
        .map(|(idx, &p)| if idx == 0 { 0.95 } else { 0.8 / p })
        .collect();
    for cell in 0..num_cells {
        for (idx, &s) in ratios.iter().enumerate() {
            maps.stats_mut(cell)
                .observe_batch(idx, n, (s * n as f64) as u64);
        }
    }
    maps
}

/// Random bipartite graph with the given density (`0..=1`).
pub fn random_graph(n_left: usize, n_right: usize, density: f64, seed: u64) -> BipartiteGraph {
    let mut rng = XorShift(seed | 1);
    let mut b = BipartiteGraphBuilder::new(n_left, n_right);
    for l in 0..n_left {
        for r in 0..n_right {
            if rng.next_f64() < density {
                b.add_edge(l, r);
            }
        }
    }
    b.build()
}

/// Left-side weights in `[0, 10)`.
pub fn random_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift(seed | 1);
    (0..n).map(|_| rng.next_f64() * 10.0).collect()
}
