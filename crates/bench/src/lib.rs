//! # maps-bench
//!
//! Criterion benchmarks backing the paper's Time panels in micro form
//! plus data-structure benchmarks for the substrates. Shared fixtures
//! live here; the benches themselves are under `benches/`.
//!
//! Run everything with `cargo bench --workspace`; each bench uses small
//! sample counts so the full suite completes in minutes.

#![warn(missing_docs)]

use maps_core::{PeriodInput, TaskInput, WorkerInput};
use maps_matching::{BipartiteGraph, BipartiteGraphBuilder};
use maps_spatial::{GridSpec, Point, Rect};

/// Deterministic xorshift for fixture construction (no rand dependency
/// needed in the hot path).
#[derive(Debug, Clone)]
pub struct XorShift(pub u64);

impl XorShift {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A ready-to-price period fixture.
pub struct PeriodFixture {
    /// Grid of the fixture.
    pub grid: GridSpec,
    /// Tasks of the period.
    pub tasks: Vec<TaskInput>,
    /// Workers of the period.
    pub workers: Vec<WorkerInput>,
    /// Range-constraint bipartite graph.
    pub graph: BipartiteGraph,
}

impl PeriodFixture {
    /// Builds a period with `n_tasks` × `n_workers` over a `side × side`
    /// grid on the paper's 100×100 region, worker radius 10.
    pub fn new(n_tasks: usize, n_workers: usize, side: u32, seed: u64) -> Self {
        let grid = GridSpec::square(Rect::square(100.0), side);
        let mut rng = XorShift(seed | 1);
        let tasks: Vec<TaskInput> = (0..n_tasks)
            .map(|_| {
                TaskInput::new(
                    &grid,
                    Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                    0.5 + rng.next_f64() * 100.0,
                )
            })
            .collect();
        let workers: Vec<WorkerInput> = (0..n_workers)
            .map(|_| {
                WorkerInput::new(
                    &grid,
                    Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                    10.0,
                )
            })
            .collect();
        let graph = maps_core::build_period_graph_capped(&grid, &tasks, &workers, 64);
        Self {
            grid,
            tasks,
            workers,
            graph,
        }
    }

    /// A borrowed [`PeriodInput`] over this fixture.
    pub fn input(&self) -> PeriodInput<'_> {
        PeriodInput {
            grid: &self.grid,
            tasks: &self.tasks,
            workers: &self.workers,
            graph: &self.graph,
        }
    }
}

/// Random bipartite graph with the given density (`0..=1`).
pub fn random_graph(n_left: usize, n_right: usize, density: f64, seed: u64) -> BipartiteGraph {
    let mut rng = XorShift(seed | 1);
    let mut b = BipartiteGraphBuilder::new(n_left, n_right);
    for l in 0..n_left {
        for r in 0..n_right {
            if rng.next_f64() < density {
                b.add_edge(l, r);
            }
        }
    }
    b.build()
}

/// Left-side weights in `[0, 10)`.
pub fn random_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift(seed | 1);
    (0..n).map(|_| rng.next_f64() * 10.0).collect()
}
