//! Base pricing — Algorithm 1 of the paper (Sec. 3).
//!
//! For every grid, probe each ladder price `p` against
//! `h(p) = ⌈(2p²/ε²)·ln(2k/δ)⌉` recent requesters, estimate the
//! acceptance ratio `Ŝ^g(p)`, pick the rung maximizing `p·Ŝ^g(p)` (ties
//! towards the smaller price) as the estimated Myerson reserve price
//! `p_m^g`, and return the arithmetic mean over grids as the **base
//! price** `p_b`.
//!
//! Guarantees reproduced in tests: Theorem 2 (with prob. `1−δ` the chosen
//! rung is ε-optimal among candidates), Theorem 3 (`p_m·S(p_m) ≥
//! (1−α)·p*·S(p*)` against the continuous optimum).

use crate::problem::DemandProbe;
use maps_market::{FreqEstimator, PriceLadder};

/// Outcome of the base-pricing calibration phase.
#[derive(Debug, Clone)]
pub struct BasePriceResult {
    /// Estimated Myerson reserve price per grid: `(ladder index, price)`.
    pub per_grid: Vec<(usize, f64)>,
    /// The base price `p_b = Σ_g p_m^g / G`.
    pub base_price: f64,
    /// The per-grid sampling statistics — MAPS and CappedUCB seed their
    /// UCB learners from these (the paper's shared statistics `P`).
    pub stats: Vec<FreqEstimator>,
}

/// Algorithm 1, parameterized by the sampling accuracy `(ε, δ)`.
#[derive(Debug, Clone)]
pub struct BasePricing {
    ladder: PriceLadder,
    epsilon: f64,
    delta: f64,
}

impl BasePricing {
    /// Creates the calibrator.
    ///
    /// # Panics
    /// Panics unless `ε > 0` and `δ ∈ (0, 1)`.
    pub fn new(ladder: PriceLadder, epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
        Self {
            ladder,
            epsilon,
            delta,
        }
    }

    /// The paper's defaults: ladder (1, 5, α=0.5), ε = 0.2, δ = 0.01
    /// (Example 4).
    pub fn paper_default() -> Self {
        Self::new(PriceLadder::paper_default(), 0.2, 0.01)
    }

    /// The candidate ladder.
    pub fn ladder(&self) -> &PriceLadder {
        &self.ladder
    }

    /// Sampling half-width `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Failure probability `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Runs Algorithm 1 over `num_cells` grids against the probe oracle.
    ///
    /// # Panics
    /// Panics if `num_cells == 0`.
    pub fn learn(&self, num_cells: usize, probe: &mut dyn DemandProbe) -> BasePriceResult {
        assert!(num_cells > 0, "need at least one grid");
        let k = self.ladder.k();
        let mut per_grid = Vec::with_capacity(num_cells);
        let mut stats = Vec::with_capacity(num_cells);
        let mut sum = 0.0;
        for cell in 0..num_cells {
            let mut freq = FreqEstimator::new(self.ladder.len());
            // Lines 4–8: probe every rung h(p) times.
            for (idx, p) in self.ladder.ascending() {
                let h = FreqEstimator::required_samples(p, self.epsilon, self.delta, k);
                let accepted = probe.probe(cell.into(), p, h);
                assert!(
                    accepted <= h,
                    "probe returned more acceptances than probes ({accepted} > {h})"
                );
                freq.record(idx, h, accepted);
            }
            // Line 9: argmax p·Ŝ(p), ties to the smaller price.
            let mut best_idx = 0usize;
            let mut best_val = f64::NEG_INFINITY;
            for (idx, p) in self.ladder.ascending() {
                let v = p * freq.s_hat(idx).expect("all rungs probed");
                if v > best_val {
                    best_val = v;
                    best_idx = idx;
                }
            }
            let p_m = self.ladder.price(best_idx);
            sum += p_m;
            per_grid.push((best_idx, p_m));
            stats.push(freq);
        }
        BasePriceResult {
            per_grid,
            base_price: sum / num_cells as f64,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_market::{Demand, DemandDistribution};
    use maps_spatial::CellId;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Probe backed by ground-truth demand distributions, one per grid.
    struct TruthProbe {
        demands: Vec<Demand>,
        rng: SmallRng,
        probes_issued: u64,
    }

    impl TruthProbe {
        fn new(demands: Vec<Demand>, seed: u64) -> Self {
            Self {
                demands,
                rng: SmallRng::seed_from_u64(seed),
                probes_issued: 0,
            }
        }
    }

    impl DemandProbe for TruthProbe {
        fn probe(&mut self, cell: CellId, price: f64, n: u64) -> u64 {
            self.probes_issued += n;
            let s = self.demands[cell.index()].survival(price);
            (0..n).filter(|_| self.rng.gen::<f64>() < s).count() as u64
        }
    }

    #[test]
    fn deterministic_probe_finds_exact_argmax() {
        // A probe that answers with exact (rounded) acceptance counts:
        // the argmax over the ladder must be recovered exactly.
        struct Exact;
        impl DemandProbe for Exact {
            fn probe(&mut self, _cell: CellId, price: f64, n: u64) -> u64 {
                let s = Demand::paper_normal(2.0, 1.0).survival(price);
                (s * n as f64).round() as u64
            }
        }
        let bp = BasePricing::paper_default();
        let result = bp.learn(4, &mut Exact);
        let d = Demand::paper_normal(2.0, 1.0);
        // Ground-truth ladder argmax:
        let want = bp
            .ladder()
            .ascending()
            .max_by(|a, b| {
                (a.1 * d.survival(a.1))
                    .partial_cmp(&(b.1 * d.survival(b.1)))
                    .unwrap()
            })
            .unwrap();
        for &(idx, p) in &result.per_grid {
            assert_eq!(idx, want.0);
            assert!((p - want.1).abs() < 1e-12);
        }
        assert!((result.base_price - want.1).abs() < 1e-12);
    }

    #[test]
    fn base_price_is_mean_of_grid_reserves() {
        // Two grids with very different demand: the base price must be
        // the average of the two per-grid choices.
        struct TwoGrids;
        impl DemandProbe for TwoGrids {
            fn probe(&mut self, cell: CellId, price: f64, n: u64) -> u64 {
                let d = if cell.index() == 0 {
                    Demand::paper_normal(1.2, 0.4) // cheap market
                } else {
                    Demand::paper_normal(3.5, 0.4) // expensive market
                };
                (d.survival(price) * n as f64).round() as u64
            }
        }
        let bp = BasePricing::paper_default();
        let r = bp.learn(2, &mut TwoGrids);
        assert!(r.per_grid[0].1 < r.per_grid[1].1);
        let mean = (r.per_grid[0].1 + r.per_grid[1].1) / 2.0;
        assert!((r.base_price - mean).abs() < 1e-12);
        // Stats are returned per grid with all rungs probed.
        assert_eq!(r.stats.len(), 2);
        for s in &r.stats {
            for idx in 0..bp.ladder().len() {
                assert!(s.tested(idx) > 0);
            }
        }
    }

    #[test]
    fn theorem2_pac_guarantee_statistical() {
        // With probability 1−δ the chosen rung's true value is within ε of
        // the best rung's. Run 25 seeded trials; allow ≤ 2 failures
        // (δ = 0.01 each ⇒ expected ≈ 0.25 failures).
        let bp = BasePricing::paper_default();
        let d = Demand::paper_normal(2.0, 1.0);
        let best: f64 = bp
            .ladder()
            .ascending()
            .map(|(_, p)| p * d.survival(p))
            .fold(0.0, f64::max);
        let mut failures = 0;
        for seed in 0..25 {
            let mut probe = TruthProbe::new(vec![Demand::paper_normal(2.0, 1.0)], seed);
            let r = bp.learn(1, &mut probe);
            let (_, p_m) = r.per_grid[0];
            if p_m * d.survival(p_m) < best - bp.epsilon() {
                failures += 1;
            }
        }
        assert!(failures <= 2, "{failures}/25 PAC violations");
    }

    #[test]
    fn theorem3_against_continuous_optimum() {
        // p_m·S(p_m) ≥ (1−α)·p*·S(p*) for the continuous optimum p*.
        use maps_market::myerson_reserve_continuous;
        for demand in [
            Demand::paper_normal(2.0, 1.0),
            Demand::paper_normal(3.0, 1.5),
            Demand::paper_exponential(1.0),
        ] {
            let bp = BasePricing::paper_default();
            let mut probe = TruthProbe::new(vec![demand; 4], 11);
            let r = bp.learn(4, &mut probe);
            let (_, v_star) = myerson_reserve_continuous(&demand, 1.0, 5.0, 1e-9);
            for &(_, p_m) in &r.per_grid {
                let v = p_m * demand.survival(p_m);
                assert!(
                    v >= (1.0 - bp.ladder().alpha()) * v_star - bp.epsilon(),
                    "{demand:?}: {v} < (1-α)·{v_star}"
                );
            }
        }
    }

    #[test]
    fn probe_budget_matches_schedule() {
        // The number of issued probes must be exactly G · Σ_p h(p).
        let bp = BasePricing::paper_default();
        let mut probe = TruthProbe::new(vec![Demand::paper_normal(2.0, 1.0); 3], 5);
        let _ = bp.learn(3, &mut probe);
        let k = bp.ladder().k();
        let per_grid: u64 = bp
            .ladder()
            .ascending()
            .map(|(_, p)| FreqEstimator::required_samples(p, 0.2, 0.01, k))
            .sum();
        assert_eq!(probe.probes_issued, 3 * per_grid);
    }

    #[test]
    #[should_panic(expected = "at least one grid")]
    fn rejects_zero_grids() {
        struct Never;
        impl DemandProbe for Never {
            fn probe(&mut self, _: CellId, _: f64, _: u64) -> u64 {
                0
            }
        }
        let _ = BasePricing::paper_default().learn(0, &mut Never);
    }
}
