//! The compared baseline strategies of Sec. 5.1.
//!
//! * [`BasePStrategy`] — Algorithm 1's base price `p_b` posted uniformly
//!   in every grid ("assumes the unlimited supply and sets the same base
//!   price p_b for all grids").
//! * [`SdrStrategy`] — supply/demand **ratio**: `0.5·p_b·|R^tg|/|W^tg|`
//!   when demand exceeds supply, `p_b` otherwise.
//! * [`SdeStrategy`] — supply/demand **exponential**:
//!   `p_b·(1 + 2·e^{|W^tg|−|R^tg|})` when demand exceeds supply, `p_b`
//!   otherwise.
//! * [`CappedUcbStrategy`] — the state-of-the-art single-market strategy
//!   of Babaioff et al. \[9\], applied to each grid independently:
//!   `argmax_p min(|R^tg|·p·S^g(p), |W^tg|·p)` — Eq. (1) with
//!   `n^tg = |W^tg|` and every `d_r = 1`, learned through the same UCB
//!   index as MAPS.
//!
//! All output prices are clamped into `[p_min, p_max]` (the paper caps
//! prices in Algorithm 2 and Sec. 4.2.3; without a cap SDE's exponential
//! explodes as soon as a grid has a few more tasks than workers).

use crate::base::BasePricing;
use crate::problem::{
    DemandProbe, Observation, PeriodInput, PriceSchedule, PricingStrategy, StateError, StateWords,
};
use maps_market::{PriceLadder, UcbStats};

/// Maps the market layer's slice-based state loaders onto the
/// [`StateWords`] cursor (shared with the MAPS strategy impl).
pub(crate) fn load_ucb(stats: &mut UcbStats, state: &mut StateWords<'_>) -> Result<(), StateError> {
    let used = stats.load_words(state.rest()).map_err(|msg| {
        if msg.ends_with("truncated") {
            StateError::Truncated
        } else {
            StateError::Mismatch(msg)
        }
    })?;
    state.advance(used);
    Ok(())
}

/// Counts tasks and workers per grid cell — shared by SDR/SDE/CappedUCB,
/// which all reason about the local head-counts `|R^tg|`, `|W^tg|`.
fn per_cell_counts(input: &PeriodInput<'_>) -> (Vec<u32>, Vec<u32>) {
    let g = input.grid.num_cells();
    let mut tasks = vec![0u32; g];
    let mut workers = vec![0u32; g];
    for t in input.tasks {
        tasks[t.cell.index()] += 1;
    }
    for w in input.workers {
        workers[w.cell.index()] += 1;
    }
    (tasks, workers)
}

/// Base pricing used as a flat strategy (the paper's `BaseP`).
#[derive(Debug, Clone)]
pub struct BasePStrategy {
    calibrator: BasePricing,
    num_cells: usize,
    base_price: f64,
}

impl BasePStrategy {
    /// Creates `BaseP` over the given ladder and accuracy parameters.
    pub fn new(num_cells: usize, ladder: PriceLadder, epsilon: f64, delta: f64) -> Self {
        let mid = ladder.price(ladder.len() / 2);
        Self {
            calibrator: BasePricing::new(ladder, epsilon, delta),
            num_cells,
            base_price: mid,
        }
    }

    /// Paper defaults (ladder (1,5,0.5), ε=0.2, δ=0.01).
    pub fn paper_default(num_cells: usize) -> Self {
        Self::new(num_cells, PriceLadder::paper_default(), 0.2, 0.01)
    }

    /// The learned base price.
    pub fn base_price(&self) -> f64 {
        self.base_price
    }

    /// Overrides the base price (tests / pre-calibrated runs).
    pub fn set_base_price(&mut self, p: f64) {
        self.base_price = p;
    }
}

impl PricingStrategy for BasePStrategy {
    fn name(&self) -> &'static str {
        "BaseP"
    }

    fn calibrate(&mut self, probe: &mut dyn DemandProbe) {
        self.base_price = self.calibrator.learn(self.num_cells, probe).base_price;
    }

    fn price_period(&mut self, input: &PeriodInput<'_>) -> PriceSchedule {
        PriceSchedule::uniform(input.grid.num_cells(), self.base_price)
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.base_price.to_bits());
    }

    fn load_state(&mut self, state: &mut StateWords<'_>) -> Result<(), StateError> {
        self.base_price = state.take_f64()?;
        Ok(())
    }
}

/// Supply/demand-ratio heuristic (`SDR`).
#[derive(Debug, Clone)]
pub struct SdrStrategy {
    inner: BasePStrategy,
    /// The empirically-tuned coefficient (the paper optimizes it on the
    /// datasets and reports 0.5).
    coefficient: f64,
}

impl SdrStrategy {
    /// Creates SDR with the paper's coefficient 0.5.
    pub fn new(num_cells: usize, ladder: PriceLadder, epsilon: f64, delta: f64) -> Self {
        Self {
            inner: BasePStrategy::new(num_cells, ladder, epsilon, delta),
            coefficient: 0.5,
        }
    }

    /// Paper defaults.
    pub fn paper_default(num_cells: usize) -> Self {
        Self::new(num_cells, PriceLadder::paper_default(), 0.2, 0.01)
    }

    /// Overrides the learned base price (tests).
    pub fn set_base_price(&mut self, p: f64) {
        self.inner.set_base_price(p);
    }

    /// Overrides the ratio coefficient.
    pub fn set_coefficient(&mut self, c: f64) {
        assert!(c > 0.0, "coefficient must be positive");
        self.coefficient = c;
    }
}

impl PricingStrategy for SdrStrategy {
    fn name(&self) -> &'static str {
        "SDR"
    }

    fn calibrate(&mut self, probe: &mut dyn DemandProbe) {
        self.inner.calibrate(probe);
    }

    fn price_period(&mut self, input: &PeriodInput<'_>) -> PriceSchedule {
        let (tasks, workers) = per_cell_counts(input);
        let pb = self.inner.base_price;
        let ladder = self.inner.calibrator.ladder();
        let prices = tasks
            .iter()
            .zip(&workers)
            .map(|(&r, &w)| {
                if r > w {
                    // |W^tg| can be zero with tasks present; the paper
                    // leaves this case open — we divide by max(|W|,1) and
                    // rely on the window clamp.
                    ladder.clamp(self.coefficient * pb * r as f64 / w.max(1) as f64)
                } else {
                    pb
                }
            })
            .collect();
        PriceSchedule { prices }
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.coefficient.to_bits());
        self.inner.save_state(out);
    }

    fn load_state(&mut self, state: &mut StateWords<'_>) -> Result<(), StateError> {
        self.coefficient = state.take_f64()?;
        self.inner.load_state(state)
    }
}

/// Supply/demand-exponential heuristic (`SDE`).
#[derive(Debug, Clone)]
pub struct SdeStrategy {
    inner: BasePStrategy,
}

impl SdeStrategy {
    /// Creates SDE.
    pub fn new(num_cells: usize, ladder: PriceLadder, epsilon: f64, delta: f64) -> Self {
        Self {
            inner: BasePStrategy::new(num_cells, ladder, epsilon, delta),
        }
    }

    /// Paper defaults.
    pub fn paper_default(num_cells: usize) -> Self {
        Self::new(num_cells, PriceLadder::paper_default(), 0.2, 0.01)
    }

    /// Overrides the learned base price (tests).
    pub fn set_base_price(&mut self, p: f64) {
        self.inner.set_base_price(p);
    }
}

impl PricingStrategy for SdeStrategy {
    fn name(&self) -> &'static str {
        "SDE"
    }

    fn calibrate(&mut self, probe: &mut dyn DemandProbe) {
        self.inner.calibrate(probe);
    }

    fn price_period(&mut self, input: &PeriodInput<'_>) -> PriceSchedule {
        let (tasks, workers) = per_cell_counts(input);
        let pb = self.inner.base_price;
        let ladder = self.inner.calibrator.ladder();
        let prices = tasks
            .iter()
            .zip(&workers)
            .map(|(&r, &w)| {
                if r > w {
                    // p_b · (1 + 2·e^{|W|−|R|}): the exponent is negative
                    // here (w < r), so the boost lies in (p_b, 3·p_b) and
                    // decays as the imbalance grows — clamped regardless.
                    ladder.clamp(pb * (1.0 + 2.0 * ((w as f64) - (r as f64)).exp()))
                } else {
                    pb
                }
            })
            .collect();
        PriceSchedule { prices }
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        self.inner.save_state(out);
    }

    fn load_state(&mut self, state: &mut StateWords<'_>) -> Result<(), StateError> {
        self.inner.load_state(state)
    }
}

/// CappedUCB (Babaioff et al. \[9\]) applied per grid independently.
///
/// Unlike MAPS, this baseline is *not* seeded by the Algorithm-1
/// calibration: the paper applies the original single-market algorithm,
/// which learns the demand of each grid online through its own UCB index
/// (standard optimism: an untried price is tried first). This online
/// exploration cost — paid in every one of the `G` independent markets —
/// is part of why the paper finds CappedUCB uncompetitive, and why it
/// "consumes the most memory" (it keeps per-grid counters for tasks,
/// workers, and every candidate price).
#[derive(Debug, Clone)]
pub struct CappedUcbStrategy {
    ladder: PriceLadder,
    stats: Vec<UcbStats>,
}

impl CappedUcbStrategy {
    /// Creates CappedUCB over the candidate ladder.
    pub fn new(num_cells: usize, ladder: PriceLadder) -> Self {
        let stats = vec![UcbStats::new(ladder.len()); num_cells];
        Self { ladder, stats }
    }

    /// Paper defaults (ladder (1, 5, α=0.5)).
    pub fn paper_default(num_cells: usize) -> Self {
        Self::new(num_cells, PriceLadder::paper_default())
    }

    /// Mutable statistics access (tests).
    pub fn stats_mut(&mut self, cell: usize) -> &mut UcbStats {
        &mut self.stats[cell]
    }
}

impl PricingStrategy for CappedUcbStrategy {
    fn name(&self) -> &'static str {
        "CappedUCB"
    }

    fn price_period(&mut self, input: &PeriodInput<'_>) -> PriceSchedule {
        let (tasks, workers) = per_cell_counts(input);
        let ladder = &self.ladder;
        let mut prices = Vec::with_capacity(tasks.len());
        for cell in 0..tasks.len() {
            let r = tasks[cell] as f64;
            let w = workers[cell] as f64;
            // argmax_p min(|R|·p·UCB(p), |W|·p), each d_r = 1 (the paper's
            // Sec. 5.1 statement of the baseline). Untried rungs have
            // optimism +∞ (classic UCB1), so all rungs get explored.
            // When |W^tg| = 0 the objective is identically 0 for every
            // price; following the paper's global tie-breaking convention
            // ("ties are broken by choosing the smaller price") the scan
            // runs ascending, so uncovered grids post p_min. Those cheap
            // accepted-but-locally-unservable tasks are exactly the
            // global-coupling blind spot the paper blames for CappedUCB's
            // weakness ("it does not consider the grids globally").
            let mut best = (f64::NEG_INFINITY, ladder.p_min());
            for (idx, p) in ladder.ascending() {
                let demand_side = if r == 0.0 {
                    0.0
                } else if self.stats[cell].n_at(idx) == 0 {
                    f64::INFINITY
                } else {
                    r * p * self.stats[cell].ucb(idx)
                };
                let value = demand_side.min(w * p);
                if value > best.0 {
                    best = (value, p);
                }
            }
            prices.push(best.1);
        }
        PriceSchedule { prices }
    }

    fn observe(&mut self, feedback: &[Observation]) {
        for obs in feedback {
            let idx = self.ladder.nearest_index(obs.price);
            self.stats[obs.cell.index()].observe(idx, obs.accepted);
        }
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.stats.len() as u64);
        for stats in &self.stats {
            stats.save_words(out);
        }
    }

    fn load_state(&mut self, state: &mut StateWords<'_>) -> Result<(), StateError> {
        if state.take()? as usize != self.stats.len() {
            return Err(StateError::Mismatch("CappedUCB cell count"));
        }
        for stats in &mut self.stats {
            load_ucb(stats, state)?;
        }
        Ok(())
    }
}

/// Builds the paper-default instance of `kind` for a `num_cells`-cell
/// grid — the one factory shared by every driver (the batch simulator
/// and the sharded online service), so the two can never drift apart in
/// strategy parameterization.
pub fn paper_default_strategy(
    kind: crate::problem::StrategyKind,
    num_cells: usize,
) -> Box<dyn PricingStrategy> {
    use crate::problem::StrategyKind;
    match kind {
        StrategyKind::Maps => Box::new(crate::MapsStrategy::paper_default(num_cells)),
        StrategyKind::BaseP => Box::new(BasePStrategy::paper_default(num_cells)),
        StrategyKind::Sdr => Box::new(SdrStrategy::paper_default(num_cells)),
        StrategyKind::Sde => Box::new(SdeStrategy::paper_default(num_cells)),
        StrategyKind::CappedUcb => Box::new(CappedUcbStrategy::paper_default(num_cells)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_period_graph;
    use crate::problem::{TaskInput, WorkerInput};
    use maps_spatial::{GridSpec, Point, Rect};

    fn one_cell_grid() -> GridSpec {
        GridSpec::square(Rect::square(10.0), 1)
    }

    /// Builds a PeriodInput with `r` tasks and `w` workers in one cell.
    fn input_with_counts(
        grid: &GridSpec,
        r: usize,
        w: usize,
    ) -> (Vec<TaskInput>, Vec<WorkerInput>) {
        let tasks = (0..r)
            .map(|i| TaskInput::new(grid, Point::new(1.0 + 0.01 * i as f64, 1.0), 1.0))
            .collect();
        let workers = (0..w)
            .map(|i| WorkerInput::new(grid, Point::new(2.0 + 0.01 * i as f64, 2.0), 5.0))
            .collect();
        (tasks, workers)
    }

    fn run<S: PricingStrategy>(s: &mut S, grid: &GridSpec, r: usize, w: usize) -> f64 {
        let (tasks, workers) = input_with_counts(grid, r, w);
        let graph = build_period_graph(grid, &tasks, &workers);
        let input = PeriodInput {
            grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        s.price_period(&input).prices[0]
    }

    #[test]
    fn basep_is_flat() {
        let grid = GridSpec::square(Rect::square(10.0), 2);
        let mut s = BasePStrategy::paper_default(grid.num_cells());
        s.set_base_price(2.25);
        let (tasks, workers) = input_with_counts(&grid, 3, 1);
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = s.price_period(&input);
        assert!(schedule.prices.iter().all(|&p| p == 2.25));
        assert_eq!(s.name(), "BaseP");
    }

    #[test]
    fn sdr_formula() {
        let grid = one_cell_grid();
        let mut s = SdrStrategy::paper_default(1);
        s.set_base_price(2.0);
        // balanced or excess supply → base price
        assert_eq!(run(&mut s, &grid, 2, 2), 2.0);
        assert_eq!(run(&mut s, &grid, 1, 5), 2.0);
        // 4 tasks, 2 workers → 0.5·2·(4/2) = 2.0
        assert_eq!(run(&mut s, &grid, 4, 2), 2.0);
        // 8 tasks, 2 workers → 0.5·2·4 = 4.0
        assert_eq!(run(&mut s, &grid, 8, 2), 4.0);
        // 40 tasks, 2 workers → 20 → clamped at p_max = 5
        assert_eq!(run(&mut s, &grid, 40, 2), 5.0);
        // zero workers → ratio uses max(w,1), clamp applies
        assert_eq!(run(&mut s, &grid, 12, 0), 5.0);
    }

    #[test]
    fn sde_formula() {
        let grid = one_cell_grid();
        let mut s = SdeStrategy::paper_default(1);
        s.set_base_price(2.0);
        // no shortage → base price
        assert_eq!(run(&mut s, &grid, 2, 3), 2.0);
        // shortage of 1 → 2·(1+2e^{-1}) ≈ 3.47
        let p = run(&mut s, &grid, 3, 2);
        assert!((p - 2.0 * (1.0 + 2.0 * (-1.0f64).exp())).abs() < 1e-12);
        // shortage of 10 → boost ≈ 0 → ≈ base price
        let p = run(&mut s, &grid, 12, 2);
        assert!((p - 2.0) < 1e-3);
    }

    #[test]
    fn sde_never_escapes_window() {
        let grid = one_cell_grid();
        let mut s = SdeStrategy::paper_default(1);
        s.set_base_price(4.0);
        // boost factor < 3 ⇒ 12 > p_max=5 → clamp.
        let p = run(&mut s, &grid, 3, 2);
        assert!(p <= 5.0);
    }

    #[test]
    fn capped_ucb_limited_supply_prices_high() {
        let grid = one_cell_grid();
        let mut s = CappedUcbStrategy::paper_default(1);
        // Seed: S(1)=0.95, S(1.5)=0.9, S(2.25)=0.6, S(3.375)=0.2.
        let table = [0.95, 0.9, 0.6, 0.2];
        for (idx, sv) in table.iter().enumerate() {
            let n = 1_000_000u64;
            s.stats_mut(0).observe_batch(idx, n, (sv * n as f64) as u64);
        }
        // Plenty of workers → demand-side argmax p·S(p):
        // {0.95, 1.35, 1.35, 0.675} → 1.5 or 2.25 (ties keep larger when
        // scanning down: 2.25 wins… values equal ⇒ larger price kept).
        let p_rich = run(&mut s, &grid, 4, 100);
        assert!(p_rich >= 1.5);
        // 10 tasks, 1 worker: min(10·p·S, p) → p_max maximizes the supply
        // line as long as 10·S(p_max) ≥ 1 (0.2·10 = 2 ≥ 1) → 3.375.
        let p_scarce = run(&mut s, &grid, 10, 1);
        assert_eq!(p_scarce, 3.375);
        assert!(p_scarce > p_rich);
    }

    #[test]
    fn capped_ucb_observe_updates() {
        let mut s = CappedUcbStrategy::paper_default(1);
        s.observe(&[Observation {
            cell: 0usize.into(),
            price: 1.4, // nearest rung 1.5 (idx 1)
            accepted: true,
        }]);
        assert_eq!(s.stats_mut(0).n_at(1), 1);
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(SdrStrategy::paper_default(1).name(), "SDR");
        assert_eq!(SdeStrategy::paper_default(1).name(), "SDE");
        assert_eq!(CappedUcbStrategy::paper_default(1).name(), "CappedUCB");
    }
}
