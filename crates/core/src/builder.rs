//! Constructs the per-period bipartite graph under the range constraint.
//!
//! Definition 5(ii): "There is an edge (r, w) ∈ E^t if the task r
//! satisfies the range constraint of the worker w", i.e. the task origin
//! lies within distance `a_w` of the worker's location. Built with the
//! bucketed spatial index so the cost is output-sensitive — required for
//! the paper's 500k×500k scalability experiment.

use crate::problem::{TaskInput, WorkerInput};
use maps_matching::{BipartiteGraph, BipartiteGraphBuilder};
use maps_spatial::{BucketIndex, GridSpec};

/// Builds the complete task–worker graph for one period.
///
/// Tasks are the left side (indices follow `tasks` order), workers the
/// right side.
pub fn build_period_graph(
    grid: &GridSpec,
    tasks: &[TaskInput],
    workers: &[WorkerInput],
) -> BipartiteGraph {
    // Index task origins once; each worker queries its own radius.
    let items: Vec<_> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.origin, i as u32))
        .collect();
    let index = BucketIndex::build(grid.region(), &items);
    // Average degree is usually modest; reserve optimistically.
    let mut builder =
        BipartiteGraphBuilder::with_capacity(tasks.len(), workers.len(), workers.len() * 4);
    for (w_idx, w) in workers.iter().enumerate() {
        index.for_each_within_disc(w.location, w.radius, |_, t_idx| {
            builder.add_edge(t_idx as usize, w_idx);
        });
    }
    builder.build()
}

/// Builds the task–worker graph keeping only each task's `k` nearest
/// in-range workers.
///
/// With the paper's 500k-worker scalability setting, hundreds of
/// thousands of workers are simultaneously available and the complete
/// graph holds millions of edges per period. Because edge weights live on
/// the task side (`d_r · p_r`), a maximum-weight matching only needs
/// enough *distinct* worker options per task; capping at `k` nearest
/// workers preserves the matching value in all but adversarial cases
/// while shrinking the graph to `O(k·|R^t|)` edges. With
/// `k ≥ workers.len()` the result equals [`build_period_graph`].
pub fn build_period_graph_capped(
    grid: &GridSpec,
    tasks: &[TaskInput],
    workers: &[WorkerInput],
    k: usize,
) -> BipartiteGraph {
    if workers.len() <= k {
        return build_period_graph(grid, tasks, workers);
    }
    // Index worker locations; each task pulls its k nearest in-range.
    let items: Vec<_> = workers
        .iter()
        .enumerate()
        .map(|(i, w)| (w.location, i as u32))
        .collect();
    let index = BucketIndex::build(grid.region(), &items);
    let max_radius = workers.iter().map(|w| w.radius).fold(0.0f64, f64::max);
    let mut builder =
        BipartiteGraphBuilder::with_capacity(tasks.len(), workers.len(), tasks.len() * k);
    for (t_idx, task) in tasks.iter().enumerate() {
        let near = index.k_nearest_within(task.origin, max_radius, k, |dist, w_idx| {
            dist <= workers[w_idx as usize].radius
        });
        for (_, w_idx) in near {
            builder.add_edge(t_idx, w_idx as usize);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_spatial::{Point, Rect};

    #[test]
    fn running_example_edges() {
        // Example 1: workers w1(3,5), w2(7,5), w3(5,3), all with radius
        // 2.5; tasks r1, r2 in grid 9 and r3 at (5,5). Expected edges:
        // r1-{w1}, r2-{w1}, r3-{w1,w2,w3}.
        let grid = GridSpec::square(Rect::square(8.0), 4);
        let tasks = [
            TaskInput::new(&grid, Point::new(1.0, 4.5), 1.3), // r1
            TaskInput::new(&grid, Point::new(1.5, 5.0), 0.7), // r2
            TaskInput::new(&grid, Point::new(5.0, 5.0), 1.0), // r3
        ];
        let workers = [
            WorkerInput::new(&grid, Point::new(3.0, 5.0), 2.5),
            WorkerInput::new(&grid, Point::new(7.0, 5.0), 2.5),
            WorkerInput::new(&grid, Point::new(5.0, 3.0), 2.5),
        ];
        let g = build_period_graph(&grid, &tasks, &workers);
        assert_eq!(g.neighbors(0), &[0]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0, 1, 2]);
    }

    #[test]
    fn empty_sides() {
        let grid = GridSpec::square(Rect::square(8.0), 4);
        let g = build_period_graph(&grid, &[], &[]);
        assert_eq!(g.n_left(), 0);
        assert_eq!(g.n_right(), 0);
        let tasks = [TaskInput::new(&grid, Point::new(1.0, 1.0), 1.0)];
        let g = build_period_graph(&grid, &tasks, &[]);
        assert_eq!(g.n_left(), 1);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn capped_equals_full_when_k_large() {
        let grid = GridSpec::square(Rect::square(100.0), 10);
        let mut state = 0x1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let tasks: Vec<_> = (0..50)
            .map(|_| TaskInput::new(&grid, Point::new(next() * 100.0, next() * 100.0), 1.0))
            .collect();
        let workers: Vec<_> = (0..30)
            .map(|_| WorkerInput::new(&grid, Point::new(next() * 100.0, next() * 100.0), 15.0))
            .collect();
        let full = build_period_graph(&grid, &tasks, &workers);
        let capped = build_period_graph_capped(&grid, &tasks, &workers, 30);
        assert_eq!(full, capped);
    }

    #[test]
    fn capped_keeps_nearest_workers() {
        let grid = GridSpec::square(Rect::square(100.0), 10);
        let tasks = [TaskInput::new(&grid, Point::new(50.0, 50.0), 1.0)];
        let workers: Vec<_> = (0..10)
            .map(|i| WorkerInput::new(&grid, Point::new(50.0 + i as f64, 50.0), 20.0))
            .collect();
        let g = build_period_graph_capped(&grid, &tasks, &workers, 3);
        // Nearest three workers are indices 0, 1, 2.
        assert_eq!(g.neighbors(0), &[0, 1, 2]);
    }

    #[test]
    fn capped_respects_per_worker_radius() {
        let grid = GridSpec::square(Rect::square(100.0), 10);
        let tasks = [TaskInput::new(&grid, Point::new(50.0, 50.0), 1.0)];
        let workers = [
            WorkerInput::new(&grid, Point::new(51.0, 50.0), 0.5), // near but short range
            WorkerInput::new(&grid, Point::new(55.0, 50.0), 10.0),
            WorkerInput::new(&grid, Point::new(60.0, 50.0), 10.0),
        ];
        let g = build_period_graph_capped(&grid, &tasks, &workers, 1);
        // Worker 0 cannot reach the task (its own radius is 0.5); the cap
        // must not waste a slot on it.
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn matches_brute_force() {
        // Deterministic pseudo-random placement, compare against O(R·W).
        let grid = GridSpec::square(Rect::square(100.0), 10);
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let tasks: Vec<_> = (0..200)
            .map(|_| {
                TaskInput::new(
                    &grid,
                    Point::new(next() * 100.0, next() * 100.0),
                    0.1 + next(),
                )
            })
            .collect();
        let workers: Vec<_> = (0..100)
            .map(|_| {
                WorkerInput::new(
                    &grid,
                    Point::new(next() * 100.0, next() * 100.0),
                    5.0 + next() * 10.0,
                )
            })
            .collect();
        let g = build_period_graph(&grid, &tasks, &workers);
        for (ti, t) in tasks.iter().enumerate() {
            for (wi, w) in workers.iter().enumerate() {
                let expect = t.origin.euclidean(w.location) <= w.radius;
                assert_eq!(
                    g.has_edge(ti, wi),
                    expect,
                    "task {ti} worker {wi}: dist {}",
                    t.origin.euclidean(w.location)
                );
            }
        }
    }
}
