//! Reusable per-period graph construction: the incremental counterpart
//! of [`crate::builder`].
//!
//! The paper's 500k×500k scalability claim rests on per-period work
//! being proportional to *churn* — the workers arriving, expiring or
//! relocating between periods — not to the standing pool.
//! [`crate::build_period_graph_capped`] rebuilds the full spatial index
//! from scratch every period; [`PeriodGraphCache`] instead owns a
//! [`DynamicBucketIndex`] over the live workers and mutates it by churn,
//! so a period with `c` worker events costs `O(c · log bucket)` index
//! maintenance plus the output-sensitive query work.
//!
//! ## Determinism contract (the scratch-rebuild oracle)
//!
//! [`PeriodGraphCache::advance`] and [`PeriodGraphCache::advance_capped`]
//! are **bit-identical** to [`crate::build_period_graph`] /
//! [`crate::build_period_graph_capped`] called on the *materialized live
//! set*: the live workers listed in ascending id order. The from-scratch
//! builders are retained as the oracle (per the workspace's standing
//! bit-determinism invariant) and the equivalence is enforced by unit
//! tests here plus the cross-crate proptest churn oracle
//! (`incremental_graph_matches_scratch_rebuild`). The identity holds
//! because the dynamic index keeps bucket slots sorted by id (matching a
//! fresh build's stable counting sort over the id-sorted live set) and
//! capped queries use the total `(distance, id)` order, which is
//! independent of either index's bucket grid.

use crate::problem::{TaskInput, WorkerInput};
use maps_matching::{BipartiteGraph, BipartiteGraphBuilder};
use maps_spatial::{BucketIndex, DynamicBucketIndex, GridSpec, Point};

/// One period's worth of worker-set changes, referenced by worker id.
///
/// Ids are caller-assigned `u32`s, unique among live workers; the
/// ascending id order defines the materialized worker list (and thus the
/// graph's right-side numbering). Re-using the id of a *departed* worker
/// is allowed — the simulator does exactly that when a busy worker
/// re-enters after relocating — and keeps the worker's position in the
/// materialized order stable across its whole lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerChurn<'a> {
    /// Workers entering the live set this period.
    pub arrivals: &'a [(u32, WorkerInput)],
    /// Ids leaving the live set this period (must be live).
    pub departures: &'a [u32],
    /// Live workers moving to a new location this period.
    pub relocations: &'a [(u32, Point)],
}

/// Incremental per-period task–worker graph builder.
///
/// Owns the dynamic spatial index over live workers plus the edge arena
/// (via [`BipartiteGraphBuilder`]); see the module docs for the
/// oracle contract.
#[derive(Debug, Clone)]
pub struct PeriodGraphCache {
    grid: GridSpec,
    index: DynamicBucketIndex<u32>,
    /// Worker state by id; `None` = not live. Grows to the largest id
    /// ever seen (append-only — departures only clear the slot).
    slots: Vec<Option<WorkerInput>>,
    /// Live ids, ascending. Maintained by a single merge pass per
    /// [`PeriodGraphCache::apply`] call.
    live_ids: Vec<u32>,
    /// Lazily maintained maximum live radius (`-0.0` normalized to
    /// `0.0`): inserts update it in O(1); removing the last max-radius
    /// holder marks the tracker dirty and the next capped build rescans
    /// the live set once. Radii are effectively continuous, so the max
    /// departs with probability `churn/live` per period and the rescan
    /// is O(churn) amortized.
    max_radius: f64,
    /// How many live workers carry exactly `max_radius`.
    max_radius_count: usize,
    /// Whether the tracked max was invalidated by a removal (updates are
    /// suspended until the next rescan).
    max_radius_dirty: bool,
    /// Scratch for the live-id merge (swapped with `live_ids`).
    merged: Vec<u32>,
    /// Scratch for sorting churn id lists.
    sorted_ids: Vec<u32>,
    /// Recycled edge arena threaded through every
    /// [`BipartiteGraphBuilder`] this cache creates, so per-period graph
    /// construction stops allocating edge storage once warm.
    edge_arena: Vec<(u32, u32)>,
}

impl PeriodGraphCache {
    /// An empty cache over the pricing `grid`, with the spatial index
    /// sized for `expected_workers` simultaneously live workers.
    pub fn new(grid: &GridSpec, expected_workers: usize) -> Self {
        Self {
            grid: *grid,
            index: DynamicBucketIndex::with_expected_len(grid.region(), expected_workers),
            slots: Vec::new(),
            live_ids: Vec::new(),
            max_radius: 0.0,
            max_radius_count: 0,
            max_radius_dirty: false,
            merged: Vec::new(),
            sorted_ids: Vec::new(),
            edge_arena: Vec::new(),
        }
    }

    /// The pricing grid this cache builds graphs for.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of live workers.
    pub fn live_count(&self) -> usize {
        self.live_ids.len()
    }

    /// Live worker ids, ascending. `live_ids()[j]` is the id of the
    /// graph's right-side vertex `j` in the most recently built graph.
    pub fn live_ids(&self) -> &[u32] {
        &self.live_ids
    }

    /// The live worker with `id`, if any.
    pub fn worker(&self, id: u32) -> Option<&WorkerInput> {
        self.slots.get(id as usize).and_then(|s| s.as_ref())
    }

    /// Writes the materialized live worker list (ascending id) into
    /// `out` — exactly the `workers` argument the from-scratch oracle
    /// would receive, and what a [`crate::PeriodInput`] needs.
    pub fn fill_worker_inputs(&self, out: &mut Vec<WorkerInput>) {
        out.clear();
        out.reserve(self.live_ids.len());
        out.extend(
            self.live_ids
                .iter()
                .map(|&id| self.slots[id as usize].expect("live id has a slot")),
        );
    }

    /// Inserts one worker immediately (id must not be live).
    pub fn insert(&mut self, id: u32, worker: WorkerInput) {
        self.insert_slot(id, worker);
        match self.live_ids.binary_search(&id) {
            Ok(_) => unreachable!("insert_slot rejects live ids"),
            Err(pos) => self.live_ids.insert(pos, id),
        }
    }

    /// Removes one live worker immediately, returning its state.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn remove(&mut self, id: u32) -> WorkerInput {
        let w = self.remove_slot(id);
        let pos = self
            .live_ids
            .binary_search(&id)
            .expect("live id is in live_ids");
        self.live_ids.remove(pos);
        w
    }

    /// Moves one live worker to a new location immediately.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn relocate(&mut self, id: u32, to: Point) {
        let slot = self.slots[id as usize]
            .as_mut()
            .expect("relocation of a non-live worker");
        let from = slot.location;
        slot.location = to;
        slot.cell = self.grid.cell_of(to);
        self.index.relocate(from, to, id);
    }

    /// Applies one period's churn: departures, then relocations, then
    /// arrivals, then a single merge pass over the live-id list (so bulk
    /// churn does not pay a per-event `O(live)` shift). Departures and
    /// arrivals go through the index's bulk paths
    /// ([`DynamicBucketIndex::remove_bulk`] /
    /// [`DynamicBucketIndex::insert_bulk`]), one compaction/merge pass
    /// per touched bucket instead of one lane shift per event — the
    /// final bucket contents are identical to the one-at-a-time ops, so
    /// queries stay bit-identical.
    pub fn apply(&mut self, churn: WorkerChurn<'_>) {
        let mut departing: Vec<(Point, u32)> = Vec::with_capacity(churn.departures.len());
        for &id in churn.departures {
            let w = self.book_departure(id);
            departing.push((w.location, id));
        }
        let removed = self.index.remove_bulk(&departing);
        assert_eq!(
            removed,
            departing.len(),
            "live worker missing from the spatial index"
        );
        for &(id, to) in churn.relocations {
            self.relocate(id, to);
        }
        let mut arriving: Vec<(Point, u32)> = Vec::with_capacity(churn.arrivals.len());
        for &(id, w) in churn.arrivals {
            self.book_arrival(id, w);
            arriving.push((w.location, id));
        }
        self.index.insert_bulk(&arriving);
        self.merge_live_ids(churn.departures, churn.arrivals);
    }

    /// Applies `churn` and builds the complete task–worker graph of the
    /// resulting live set — bit-identical to
    /// [`crate::build_period_graph`] on the materialized live workers.
    pub fn advance(&mut self, churn: WorkerChurn<'_>, tasks: &[TaskInput]) -> BipartiteGraph {
        self.apply(churn);
        self.build_graph(tasks)
    }

    /// Applies `churn` and builds the capped graph (each task's `k`
    /// nearest in-range workers) — bit-identical to
    /// [`crate::build_period_graph_capped`] on the materialized live
    /// workers.
    pub fn advance_capped(
        &mut self,
        churn: WorkerChurn<'_>,
        tasks: &[TaskInput],
        k: usize,
    ) -> BipartiteGraph {
        self.apply(churn);
        self.build_graph_capped(tasks, k)
    }

    /// Builds the complete graph of the current live set (no churn).
    ///
    /// Tasks change wholesale every period, so (like the oracle) this
    /// builds a fresh throwaway index over *task origins* and queries it
    /// once per live worker — the cached index only ever holds workers.
    pub fn build_graph(&mut self, tasks: &[TaskInput]) -> BipartiteGraph {
        let items: Vec<_> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.origin, i as u32))
            .collect();
        let task_index = BucketIndex::build(self.grid.region(), &items);
        let mut builder = BipartiteGraphBuilder::with_arena(
            tasks.len(),
            self.live_ids.len(),
            self.live_ids.len() * 4,
            std::mem::take(&mut self.edge_arena),
        );
        for (dense, &id) in self.live_ids.iter().enumerate() {
            let w = &self.slots[id as usize].expect("live id has a slot");
            task_index.for_each_within_disc(w.location, w.radius, |_, t_idx| {
                builder.add_edge(t_idx as usize, dense);
            });
        }
        let (graph, arena) = builder.build_recycling();
        self.edge_arena = arena;
        graph
    }

    /// The maximum live worker radius (`0.0` when empty) — exactly the
    /// capped oracle's `fold(0.0, f64::max)` over the materialized
    /// worker list. Public so a *sharded* deployment (one cache per
    /// shard) can reduce the per-shard maxima into the global query
    /// radius the capped build contract requires.
    pub fn max_live_radius(&mut self) -> f64 {
        self.current_max_radius()
    }

    /// The `k` nearest live workers within `radius` of `origin` under
    /// the total `(distance, id)` order, honouring each worker's own
    /// range constraint — one task's worth of the capped build.
    ///
    /// Because the order is total and grid-independent, the union of
    /// per-shard candidate lists re-sorted by `(distance, id)` and
    /// truncated to `k` equals the same query against one cache holding
    /// every worker: this is the decomposition the sharded service's
    /// cross-shard matching rests on.
    pub fn k_nearest_candidates(&self, origin: Point, radius: f64, k: usize) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        self.k_nearest_candidates_into(origin, radius, k, &mut out);
        out
    }

    /// [`PeriodGraphCache::k_nearest_candidates`] writing into a
    /// caller-supplied buffer (cleared first): the per-tick hot loop of
    /// the sharded service issues `shards × tasks` of these queries, so
    /// the buffer amortizes per-query allocation away.
    pub fn k_nearest_candidates_into(
        &self,
        origin: Point,
        radius: f64,
        k: usize,
        out: &mut Vec<(f64, u32)>,
    ) {
        let slots = &self.slots;
        self.index.k_nearest_within_into(
            origin,
            radius,
            k,
            |dist, id| dist <= slots[id as usize].expect("live id has a slot").radius,
            out,
        );
    }

    /// Calls `f(task_idx, worker_id)` for every (in-range task, live
    /// worker) pair against a caller-built index over task origins —
    /// the *uncapped* edge enumeration of [`PeriodGraphCache::build_graph`],
    /// exposed per-cache so shards can enumerate their slices of the
    /// full graph in parallel (the edge set is a union; the graph
    /// builder canonicalizes insertion order).
    pub fn for_each_task_edge(&self, task_index: &BucketIndex<u32>, mut f: impl FnMut(u32, u32)) {
        for &id in &self.live_ids {
            let w = &self.slots[id as usize].expect("live id has a slot");
            task_index.for_each_within_disc(w.location, w.radius, |_, t_idx| f(t_idx, id));
        }
    }

    /// Builds the capped graph of the current live set (no churn).
    pub fn build_graph_capped(&mut self, tasks: &[TaskInput], k: usize) -> BipartiteGraph {
        if self.live_ids.len() <= k {
            return self.build_graph(tasks);
        }
        let max_radius = self.current_max_radius();
        let mut builder = BipartiteGraphBuilder::with_arena(
            tasks.len(),
            self.live_ids.len(),
            tasks.len() * k,
            std::mem::take(&mut self.edge_arena),
        );
        let (index, slots, live_ids) = (&self.index, &self.slots, &self.live_ids);
        for (t_idx, task) in tasks.iter().enumerate() {
            let near = index.k_nearest_within(task.origin, max_radius, k, |dist, id| {
                dist <= slots[id as usize].expect("live id has a slot").radius
            });
            for (_, id) in near {
                let dense = live_ids.binary_search(&id).expect("queried id is live");
                builder.add_edge(t_idx, dense);
            }
        }
        let (graph, arena) = builder.build_recycling();
        self.edge_arena = arena;
        graph
    }

    fn insert_slot(&mut self, id: u32, worker: WorkerInput) {
        self.book_arrival(id, worker);
        self.index.insert(worker.location, id);
    }

    /// The slot/max-radius bookkeeping of an arrival, *without* the
    /// spatial-index insert — [`PeriodGraphCache::apply`] books a whole
    /// batch first and then bulk-inserts into the index in one pass.
    fn book_arrival(&mut self, id: u32, worker: WorkerInput) {
        assert!(
            worker.radius.is_finite() && worker.radius >= 0.0,
            "worker radius must be non-negative, got {}",
            worker.radius
        );
        let idx = id as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        assert!(
            self.slots[idx].is_none(),
            "arrival of an already-live worker id {id}"
        );
        self.slots[idx] = Some(worker);
        if !self.max_radius_dirty {
            let radius = normalize_radius(worker.radius);
            if self.max_radius_count == 0 || radius > self.max_radius {
                self.max_radius = radius;
                self.max_radius_count = 1;
            } else if radius == self.max_radius {
                self.max_radius_count += 1;
            }
        }
    }

    fn remove_slot(&mut self, id: u32) -> WorkerInput {
        let w = self.book_departure(id);
        assert!(
            self.index.remove(w.location, id),
            "live worker missing from the spatial index"
        );
        w
    }

    /// The slot/max-radius bookkeeping of a departure, *without* the
    /// spatial-index removal — the bulk twin of [`Self::book_arrival`].
    fn book_departure(&mut self, id: u32) -> WorkerInput {
        let w = self
            .slots
            .get_mut(id as usize)
            .and_then(Option::take)
            .expect("departure of a non-live worker");
        if !self.max_radius_dirty && normalize_radius(w.radius) == self.max_radius {
            self.max_radius_count -= 1;
            if self.max_radius_count == 0 {
                self.max_radius_dirty = true;
            }
        }
        w
    }

    /// The maximum live radius (0.0 when empty) — the capped oracle's
    /// `fold(0.0, f64::max)` over the materialized worker list.
    /// Rescans the live set if a removal invalidated the tracked max.
    fn current_max_radius(&mut self) -> f64 {
        if self.max_radius_dirty {
            self.max_radius = 0.0;
            self.max_radius_count = 0;
            for &id in &self.live_ids {
                let radius = normalize_radius(self.slots[id as usize].expect("live").radius);
                if self.max_radius_count == 0 || radius > self.max_radius {
                    self.max_radius = radius;
                    self.max_radius_count = 1;
                } else if radius == self.max_radius {
                    self.max_radius_count += 1;
                }
            }
            self.max_radius_dirty = false;
        }
        if self.max_radius_count == 0 {
            0.0
        } else {
            self.max_radius
        }
    }

    /// Rewrites `live_ids` as `(live_ids \ departures) ∪ arrivals` in one
    /// ordered merge pass. Departed ids are guaranteed present and
    /// arrival ids absent (checked by the slot ops above).
    fn merge_live_ids(&mut self, departures: &[u32], arrivals: &[(u32, WorkerInput)]) {
        if departures.is_empty() && arrivals.is_empty() {
            return;
        }
        self.sorted_ids.clear();
        self.sorted_ids.extend(departures.iter().copied());
        let dep_count = self.sorted_ids.len();
        self.sorted_ids.extend(arrivals.iter().map(|&(id, _)| id));
        self.sorted_ids[..dep_count].sort_unstable();
        self.sorted_ids[dep_count..].sort_unstable();
        let (dep, arr) = self.sorted_ids.split_at(dep_count);
        self.merged.clear();
        self.merged
            .reserve(self.live_ids.len() + arr.len() - dep.len());
        let (mut ai, mut di) = (0, 0);
        for &id in &self.live_ids {
            while ai < arr.len() && arr[ai] < id {
                self.merged.push(arr[ai]);
                ai += 1;
            }
            if di < dep.len() && dep[di] == id {
                di += 1;
                continue;
            }
            self.merged.push(id);
        }
        self.merged.extend_from_slice(&arr[ai..]);
        debug_assert_eq!(di, dep.len(), "every departure id must be live");
        std::mem::swap(&mut self.live_ids, &mut self.merged);
    }
}

/// Canonical form of a non-negative radius (`-0.0` → `0.0`), so equality
/// comparisons in the max tracker are bit-stable.
fn normalize_radius(radius: f64) -> f64 {
    radius + 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_period_graph, build_period_graph_capped};
    use maps_spatial::{Point, Rect};

    use maps_testkit::XorShift;

    fn grid() -> GridSpec {
        GridSpec::square(Rect::square(100.0), 5)
    }

    fn random_worker(grid: &GridSpec, rng: &mut XorShift) -> WorkerInput {
        WorkerInput::new(
            grid,
            Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
            2.0 + rng.next_f64() * 20.0,
        )
    }

    fn random_tasks(grid: &GridSpec, rng: &mut XorShift, n: usize) -> Vec<TaskInput> {
        (0..n)
            .map(|_| {
                TaskInput::new(
                    grid,
                    Point::new(rng.next_f64() * 100.0, rng.next_f64() * 100.0),
                    0.5 + rng.next_f64() * 3.0,
                )
            })
            .collect()
    }

    /// Mirror of the cache's live set for the from-scratch oracle.
    struct Mirror {
        live: Vec<(u32, WorkerInput)>, // ascending id
    }
    impl Mirror {
        fn workers(&self) -> Vec<WorkerInput> {
            self.live.iter().map(|&(_, w)| w).collect()
        }
    }

    /// Random churn over several periods: advance must equal the
    /// from-scratch oracle bitwise (structural equality of the CSR graph
    /// is exactly bit equality — all fields are integers).
    #[test]
    fn advance_matches_scratch_oracle_under_churn() {
        let grid = grid();
        for (seed, k) in [(1u64, 4usize), (2, 1), (3, 13), (4, 200)] {
            let mut rng = XorShift(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let mut cache = PeriodGraphCache::new(&grid, 64);
            let mut mirror = Mirror { live: Vec::new() };
            let mut next_id = 0u32;
            for period in 0..12 {
                let mut departures = Vec::new();
                let mut survivors = Vec::new();
                for &(id, w) in &mirror.live {
                    if rng.next_u64().is_multiple_of(5) {
                        departures.push(id);
                    } else {
                        survivors.push((id, w));
                    }
                }
                mirror.live = survivors;
                let mut relocations = Vec::new();
                for entry in mirror.live.iter_mut() {
                    if rng.next_u64().is_multiple_of(6) {
                        let to =
                            Point::new(rng.next_f64() * 110.0 - 5.0, rng.next_f64() * 110.0 - 5.0);
                        entry.1.location = to;
                        entry.1.cell = grid.cell_of(to);
                        relocations.push((entry.0, to));
                    }
                }
                let arrivals: Vec<(u32, WorkerInput)> = (0..(rng.next_u64() % 20))
                    .map(|_| {
                        let id = next_id;
                        next_id += 1;
                        (id, random_worker(&grid, &mut rng))
                    })
                    .collect();
                mirror.live.extend(arrivals.iter().copied());
                let n_tasks = (rng.next_u64() % 25) as usize;
                let tasks = random_tasks(&grid, &mut rng, n_tasks);
                let churn = WorkerChurn {
                    arrivals: &arrivals,
                    departures: &departures,
                    relocations: &relocations,
                };
                let incremental = cache.advance_capped(churn, &tasks, k);
                let scratch = build_period_graph_capped(&grid, &tasks, &mirror.workers(), k);
                assert_eq!(
                    incremental, scratch,
                    "seed {seed} k {k} period {period}: capped graph diverged"
                );
                let full = cache.build_graph(&tasks);
                let full_oracle = build_period_graph(&grid, &tasks, &mirror.workers());
                assert_eq!(
                    full, full_oracle,
                    "seed {seed} k {k} period {period}: full graph diverged"
                );
                assert_eq!(cache.live_count(), mirror.live.len());
            }
        }
    }

    /// Departed-id reuse (the simulator's busy-release pattern) keeps the
    /// worker at its original position in the materialized order.
    #[test]
    fn departed_ids_can_be_reused() {
        let grid = grid();
        let mut rng = XorShift(77);
        let mut cache = PeriodGraphCache::new(&grid, 8);
        let w0 = random_worker(&grid, &mut rng);
        let w1 = random_worker(&grid, &mut rng);
        let w2 = random_worker(&grid, &mut rng);
        cache.apply(WorkerChurn {
            arrivals: &[(0, w0), (1, w1), (2, w2)],
            ..WorkerChurn::default()
        });
        let gone = cache.remove(1);
        assert_eq!(gone, w1);
        assert_eq!(cache.live_ids(), &[0, 2]);
        // Same period: departure of 0 and re-arrival of 1 elsewhere.
        let w1b = random_worker(&grid, &mut rng);
        cache.apply(WorkerChurn {
            arrivals: &[(1, w1b)],
            departures: &[0],
            relocations: &[],
        });
        assert_eq!(cache.live_ids(), &[1, 2]);
        let mut out = Vec::new();
        cache.fill_worker_inputs(&mut out);
        assert_eq!(out, vec![w1b, w2]);
    }

    #[test]
    fn empty_cache_builds_empty_graphs() {
        let grid = grid();
        let mut cache = PeriodGraphCache::new(&grid, 4);
        let mut rng = XorShift(5);
        let tasks = random_tasks(&grid, &mut rng, 3);
        let g = cache.advance_capped(WorkerChurn::default(), &tasks, 4);
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 0);
        assert_eq!(g.n_edges(), 0);
        let g = cache.advance(WorkerChurn::default(), &[]);
        assert_eq!(g.n_left(), 0);
    }

    #[test]
    fn max_radius_tracks_removals() {
        // Regression shape: the k-nearest query radius must shrink when
        // the widest worker departs, exactly as the oracle's fold does.
        let grid = grid();
        let near = WorkerInput::new(&grid, Point::new(10.0, 10.0), 3.0);
        let wide = WorkerInput::new(&grid, Point::new(90.0, 90.0), 80.0);
        let tied = WorkerInput::new(&grid, Point::new(20.0, 10.0), 3.0);
        let mut cache = PeriodGraphCache::new(&grid, 4);
        cache.apply(WorkerChurn {
            arrivals: &[(0, near), (1, wide), (2, tied)],
            ..WorkerChurn::default()
        });
        let tasks = [TaskInput::new(&grid, Point::new(50.0, 50.0), 1.0)];
        // k=2 < live: the capped path queries with max radius 80 and the
        // wide worker is the only one in range.
        let g = cache.build_graph_capped(&tasks, 2);
        assert_eq!(g.neighbors(0), &[1]);
        cache.remove(1);
        cache.insert(3, WorkerInput::new(&grid, Point::new(52.0, 50.0), 2.5));
        let g = cache.build_graph_capped(&tasks, 2);
        let oracle = {
            let mut out = Vec::new();
            cache.fill_worker_inputs(&mut out);
            build_period_graph_capped(cache.grid(), &tasks, &out, 2)
        };
        assert_eq!(g, oracle);
        assert_eq!(g.neighbors(0), &[2], "only the new near worker reaches");
    }

    /// The shard decomposition contract: splitting the live set across
    /// two caches, merging their per-task candidate lists by
    /// `(distance, id)` and truncating to `k` reproduces the single
    /// cache's query exactly — and the per-cache uncapped edge
    /// enumerations union to the full graph's edge set.
    #[test]
    fn sharded_queries_merge_to_the_whole() {
        let grid = grid();
        let mut rng = XorShift(0x5AD);
        let mut whole = PeriodGraphCache::new(&grid, 32);
        let mut even = PeriodGraphCache::new(&grid, 16);
        let mut odd = PeriodGraphCache::new(&grid, 16);
        for id in 0..40u32 {
            let w = random_worker(&grid, &mut rng);
            whole.insert(id, w);
            if id % 2 == 0 {
                even.insert(id, w);
            } else {
                odd.insert(id, w);
            }
        }
        let radius = even.max_live_radius().max(odd.max_live_radius());
        assert_eq!(radius.to_bits(), whole.max_live_radius().to_bits());
        let tasks = random_tasks(&grid, &mut rng, 12);
        for k in [1usize, 3, 8] {
            for task in &tasks {
                let mut merged = even.k_nearest_candidates(task.origin, radius, k);
                merged.extend(odd.k_nearest_candidates(task.origin, radius, k));
                merged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                merged.truncate(k);
                let direct = whole.k_nearest_candidates(task.origin, radius, k);
                assert_eq!(merged.len(), direct.len(), "k {k}");
                for (m, d) in merged.iter().zip(&direct) {
                    assert_eq!(m.0.to_bits(), d.0.to_bits(), "k {k}");
                    assert_eq!(m.1, d.1, "k {k}");
                }
            }
        }
        // Uncapped: per-shard edge enumerations union to the full set.
        let items: Vec<_> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.origin, i as u32))
            .collect();
        let task_index = BucketIndex::build(grid.region(), &items);
        let mut sharded: Vec<(u32, u32)> = Vec::new();
        even.for_each_task_edge(&task_index, |t, w| sharded.push((t, w)));
        odd.for_each_task_edge(&task_index, |t, w| sharded.push((t, w)));
        sharded.sort_unstable();
        let full = whole.build_graph(&tasks);
        let mut direct: Vec<(u32, u32)> = full.edges().map(|(l, r)| (l as u32, r as u32)).collect();
        // The whole cache's right side is dense over its own live ids
        // (0..40 here, so dense == id) — keep the comparison honest.
        direct.sort_unstable();
        assert_eq!(sharded, direct);
    }

    #[test]
    #[should_panic(expected = "already-live")]
    fn duplicate_live_id_panics() {
        let grid = grid();
        let mut rng = XorShift(9);
        let mut cache = PeriodGraphCache::new(&grid, 4);
        let w = random_worker(&grid, &mut rng);
        cache.insert(0, w);
        cache.insert(0, w);
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn departure_of_dead_id_panics() {
        let grid = grid();
        let mut cache = PeriodGraphCache::new(&grid, 4);
        cache.apply(WorkerChurn {
            departures: &[3],
            ..WorkerChurn::default()
        });
    }
}
