//! Revenue evaluation: market clearing and expected-revenue estimators.
//!
//! Definition 5: at the end of a period, the accepting tasks and the
//! available workers form an instantiated bipartite graph whose
//! maximum-weight matching value is the platform's revenue. The exact
//! expectation (Definition 6) is `Σ_world U(world)·Pr[world]`; here we
//! provide the per-world clearing primitive and Monte-Carlo estimators
//! for instances too large for possible-world enumeration.
//!
//! # Estimator variants
//!
//! * [`monte_carlo_expected_revenue`] — classic single-stream sampler
//!   over a caller-provided RNG. Since PR 1 each sample runs through
//!   the zero-allocation masked kernel ([`MatchScratch`] +
//!   [`BipartiteGraph::masked`]-style `keep` masks with a precomputed
//!   weight order) instead of materializing a `filter_left` subgraph.
//! * [`monte_carlo_expected_revenue_seeded`] — the deterministic
//!   **block-seeded** sequential form: samples are grouped into fixed
//!   blocks of [`MC_BLOCK`], each block draws from its own
//!   `SmallRng` seeded by `(seed, block_index)`, and block sums are
//!   reduced in block order.
//! * [`monte_carlo_expected_revenue_parallel`] — the same computation
//!   with blocks fanned out over rayon. Because block seeding and the
//!   reduction order are fixed by construction, the result is
//!   **bit-identical** to the seeded sequential form at any thread
//!   count (enforced by `parallel_matches_sequential_bitwise`).

use maps_matching::{
    max_weight_matching_left_weights, sort_by_weight_desc, BipartiteGraph, MatchScratch, Matching,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Number of Monte-Carlo samples per deterministic seeding block.
///
/// Each block owns an independent RNG stream and a sequential in-block
/// accumulator, so the estimate is invariant to how blocks are
/// distributed over threads.
pub const MC_BLOCK: u32 = 64;

/// Clears the market: maximum-weight matching between (already accepted)
/// tasks and workers, with task weights `d_r · p_r`.
///
/// Returns the matching and the realized revenue `U(B^t)`.
pub fn realize_revenue(graph: &BipartiteGraph, weights: &[f64]) -> (Matching, f64) {
    max_weight_matching_left_weights(graph, weights)
}

/// Reusable workspace for the Monte-Carlo estimators: acceptance mask,
/// weight-sorted task order and the matching scratch. Binding sorts
/// the weights once; sampling then runs allocation-free. The parallel
/// engine binds a single template and hands each block a clone, so no
/// block ever re-sorts.
#[derive(Debug, Clone, Default)]
pub struct McScratch {
    keep: Vec<bool>,
    order: Vec<u32>,
    matching: MatchScratch,
}

impl McScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)binds the workspace to an instance: sizes the mask and
    /// recomputes the weight order.
    fn bind(&mut self, graph: &BipartiteGraph, weights: &[f64]) {
        self.keep.clear();
        self.keep.resize(graph.n_left(), false);
        sort_by_weight_desc(weights, &mut self.order);
    }

    /// Draws one world from `rng` and returns its clearing revenue.
    fn sample_once<R: Rng + ?Sized>(
        &mut self,
        graph: &BipartiteGraph,
        weights: &[f64],
        accept_probs: &[f64],
        rng: &mut R,
    ) -> f64 {
        for (k, &q) in self.keep.iter_mut().zip(accept_probs) {
            *k = rng.gen::<f64>() < q;
        }
        self.matching
            .max_weight_value_ordered(graph, weights, &self.order, Some(&self.keep))
    }
}

fn check_inputs(graph: &BipartiteGraph, weights: &[f64], accept_probs: &[f64], samples: u32) {
    assert_eq!(weights.len(), graph.n_left(), "one weight per task");
    assert_eq!(
        accept_probs.len(),
        graph.n_left(),
        "one probability per task"
    );
    assert!(samples > 0, "need at least one sample");
}

/// Monte-Carlo estimate of the expected total revenue
/// `E[U(B^t) | P^t]` for given per-task acceptance probabilities,
/// drawing all worlds from the caller's RNG stream.
///
/// Allocates a fresh workspace per call; strategies evaluating many
/// candidate schedules should hold one [`McScratch`] and call
/// [`monte_carlo_expected_revenue_with`] instead.
///
/// # Panics
/// Panics if slice lengths disagree with the graph or `samples == 0`.
pub fn monte_carlo_expected_revenue(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
    samples: u32,
    rng: &mut impl Rng,
) -> f64 {
    let mut scratch = McScratch::new();
    monte_carlo_expected_revenue_with(graph, weights, accept_probs, samples, rng, &mut scratch)
}

/// [`monte_carlo_expected_revenue`] into a caller-owned workspace:
/// after the first call at a given instance size, estimation performs
/// no heap allocation (the weight order is still re-derived per call,
/// since weights may change between calls).
///
/// # Panics
/// Panics if slice lengths disagree with the graph or `samples == 0`.
pub fn monte_carlo_expected_revenue_with(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
    samples: u32,
    rng: &mut impl Rng,
    scratch: &mut McScratch,
) -> f64 {
    check_inputs(graph, weights, accept_probs, samples);
    scratch.bind(graph, weights);
    let mut total = 0.0;
    for _ in 0..samples {
        total += scratch.sample_once(graph, weights, accept_probs, rng);
    }
    total / samples as f64
}

/// The RNG for one seeding block: every `(seed, block)` pair owns an
/// independent, reproducible stream.
fn block_rng(seed: u64, block: u32) -> SmallRng {
    // SplitMix-style mixing so nearby blocks decorrelate fully; the
    // vendored SmallRng expands this through SplitMix64 again.
    SmallRng::seed_from_u64(seed ^ (block as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Sum of one block's samples, accumulated sequentially in sample
/// order. Shared verbatim by the sequential and parallel front ends —
/// this is what makes them bit-identical.
fn block_sum(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
    seed: u64,
    block: u32,
    block_len: u32,
    scratch: &mut McScratch,
) -> f64 {
    let mut rng = block_rng(seed, block);
    let mut acc = 0.0;
    for _ in 0..block_len {
        acc += scratch.sample_once(graph, weights, accept_probs, &mut rng);
    }
    acc
}

fn num_blocks(samples: u32) -> u32 {
    samples.div_ceil(MC_BLOCK)
}

fn block_len(samples: u32, block: u32) -> u32 {
    let start = block * MC_BLOCK;
    MC_BLOCK.min(samples - start)
}

/// Deterministic block-seeded sequential Monte-Carlo estimate: the
/// reference stream for [`monte_carlo_expected_revenue_parallel`].
/// Same `seed` and `samples` ⇒ same result, always.
///
/// # Panics
/// Panics if slice lengths disagree with the graph or `samples == 0`.
pub fn monte_carlo_expected_revenue_seeded(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
    samples: u32,
    seed: u64,
) -> f64 {
    check_inputs(graph, weights, accept_probs, samples);
    let mut scratch = McScratch::new();
    scratch.bind(graph, weights);
    let mut total = 0.0;
    for block in 0..num_blocks(samples) {
        total += block_sum(
            graph,
            weights,
            accept_probs,
            seed,
            block,
            block_len(samples, block),
            &mut scratch,
        );
    }
    total / samples as f64
}

/// Rayon-parallel Monte-Carlo estimate, bit-identical to
/// [`monte_carlo_expected_revenue_seeded`] for the same `seed` at any
/// thread count: blocks are seeded by index, sampled independently
/// (one [`McScratch`] per block invocation, reused buffers inside) and
/// reduced in block order.
///
/// # Panics
/// Panics if slice lengths disagree with the graph or `samples == 0`.
pub fn monte_carlo_expected_revenue_parallel(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
    samples: u32,
    seed: u64,
) -> f64 {
    check_inputs(graph, weights, accept_probs, samples);
    // Bind (and weight-sort) once; each worker chunk clones the
    // pre-bound workspace — O(threads) allocations per call, not
    // O(blocks) — and walks its contiguous block range with it.
    let mut template = McScratch::new();
    template.bind(graph, weights);
    let template = template;
    let n_blocks = num_blocks(samples) as usize;
    let chunk = n_blocks.div_ceil(rayon::current_num_threads().max(1));
    let chunks: Vec<Vec<f64>> = (0..n_blocks.div_ceil(chunk))
        .into_par_iter()
        .map(|c| {
            let mut scratch = template.clone();
            (c * chunk..((c + 1) * chunk).min(n_blocks))
                .map(|block| {
                    let block = block as u32;
                    block_sum(
                        graph,
                        weights,
                        accept_probs,
                        seed,
                        block,
                        block_len(samples, block),
                        &mut scratch,
                    )
                })
                .collect()
        })
        .collect();
    // Ordered reduction: chunks are contiguous block ranges in chunk
    // order, so flattening yields block order — the identical float
    // summation order to the sequential path under any chunking or
    // thread schedule.
    chunks.iter().flatten().sum::<f64>() / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_matching::{expected_total_revenue_exact, BipartiteGraphBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn running_example() -> BipartiteGraph {
        BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build()
    }

    #[test]
    fn realize_revenue_running_example() {
        let g = running_example();
        let (m, rev) = realize_revenue(&g, &[3.9, 2.1, 2.0]);
        assert!((rev - 5.9).abs() < 1e-9);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn monte_carlo_matches_exact_enumeration() {
        let g = running_example();
        let weights = [3.9, 2.1, 2.0];
        let probs = [0.5, 0.5, 0.8];
        let exact = expected_total_revenue_exact(&g, &weights, &probs);
        let mut rng = SmallRng::seed_from_u64(12345);
        let mc = monte_carlo_expected_revenue(&g, &weights, &probs, 40_000, &mut rng);
        assert!(
            (mc - exact).abs() < 0.05,
            "MC {mc} vs exact {exact} (4.075 per Example 3)"
        );
    }

    #[test]
    fn seeded_monte_carlo_matches_exact_enumeration() {
        let g = running_example();
        let weights = [3.9, 2.1, 2.0];
        let probs = [0.5, 0.5, 0.8];
        let exact = expected_total_revenue_exact(&g, &weights, &probs);
        let mc = monte_carlo_expected_revenue_seeded(&g, &weights, &probs, 40_000, 7);
        assert!((mc - exact).abs() < 0.05, "seeded MC {mc} vs exact {exact}");
        let mc_par = monte_carlo_expected_revenue_parallel(&g, &weights, &probs, 40_000, 7);
        assert!((mc_par - exact).abs() < 0.05, "parallel MC {mc_par}");
    }

    #[test]
    fn scratch_reuse_matches_fresh_workspace() {
        let g = running_example();
        let weights = [3.9, 2.1, 2.0];
        let probs = [0.5, 0.5, 0.8];
        let mut scratch = McScratch::new();
        // Same rng stream ⇒ identical estimates, fresh or reused.
        let mut rng = SmallRng::seed_from_u64(9);
        let reused_a =
            monte_carlo_expected_revenue_with(&g, &weights, &probs, 200, &mut rng, &mut scratch);
        let reused_b =
            monte_carlo_expected_revenue_with(&g, &weights, &probs, 200, &mut rng, &mut scratch);
        let mut rng = SmallRng::seed_from_u64(9);
        let fresh_a = monte_carlo_expected_revenue(&g, &weights, &probs, 200, &mut rng);
        let fresh_b = monte_carlo_expected_revenue(&g, &weights, &probs, 200, &mut rng);
        assert_eq!(reused_a.to_bits(), fresh_a.to_bits());
        assert_eq!(reused_b.to_bits(), fresh_b.to_bits());
    }

    #[test]
    fn monte_carlo_degenerate_probs() {
        let g = running_example();
        let weights = [3.9, 2.1, 2.0];
        let mut rng = SmallRng::seed_from_u64(1);
        let all = monte_carlo_expected_revenue(&g, &weights, &[1.0; 3], 10, &mut rng);
        assert!((all - 5.9).abs() < 1e-9);
        let none = monte_carlo_expected_revenue(&g, &weights, &[0.0; 3], 10, &mut rng);
        assert_eq!(none, 0.0);
    }

    /// The acceptance criterion for this PR's parallel engine: the
    /// parallel estimator returns bit-identical results to the seeded
    /// sequential path for the same seed, at every thread count.
    #[test]
    fn parallel_matches_sequential_bitwise() {
        // A bigger pseudorandom instance so blocks are non-trivial.
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let (n_left, n_right) = (40usize, 25usize);
        let mut b = BipartiteGraphBuilder::new(n_left, n_right);
        for l in 0..n_left {
            for r in 0..n_right {
                if next() % 4 == 0 {
                    b.add_edge(l, r);
                }
            }
        }
        let g = b.build();
        let weights: Vec<f64> = (0..n_left).map(|_| (next() % 900) as f64 / 100.0).collect();
        let probs: Vec<f64> = (0..n_left).map(|_| (next() % 100) as f64 / 100.0).collect();

        for &(samples, seed) in &[(1u32, 3u64), (63, 5), (64, 7), (65, 11), (1000, 13)] {
            let sequential =
                monte_carlo_expected_revenue_seeded(&g, &weights, &probs, samples, seed);
            // 1/2/3/8-thread sweep + bitwise comparison via the shared
            // determinism harness.
            let parallel = maps_testkit::assert_deterministic(|| {
                monte_carlo_expected_revenue_parallel(&g, &weights, &probs, samples, seed)
            });
            assert_eq!(
                sequential.to_bits(),
                parallel.to_bits(),
                "samples {samples} seed {seed}: {sequential} vs {parallel}"
            );
        }
    }

    #[test]
    fn seeded_is_reproducible_and_seed_sensitive() {
        let g = running_example();
        let weights = [3.9, 2.1, 2.0];
        let probs = [0.5, 0.5, 0.8];
        let a = monte_carlo_expected_revenue_seeded(&g, &weights, &probs, 500, 42);
        let b = monte_carlo_expected_revenue_seeded(&g, &weights, &probs, 500, 42);
        assert_eq!(a.to_bits(), b.to_bits());
        let c = monte_carlo_expected_revenue_seeded(&g, &weights, &probs, 500, 43);
        assert_ne!(a.to_bits(), c.to_bits(), "different seeds must differ");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let g = running_example();
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = monte_carlo_expected_revenue(&g, &[1.0; 3], &[0.5; 3], 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn parallel_rejects_zero_samples() {
        let g = running_example();
        let _ = monte_carlo_expected_revenue_parallel(&g, &[1.0; 3], &[0.5; 3], 0, 1);
    }
}
