//! Revenue evaluation: market clearing and expected-revenue estimators.
//!
//! Definition 5: at the end of a period, the accepting tasks and the
//! available workers form an instantiated bipartite graph whose
//! maximum-weight matching value is the platform's revenue. The exact
//! expectation (Definition 6) is `Σ_world U(world)·Pr[world]`; here we
//! provide the per-world clearing primitive and a Monte-Carlo estimator
//! for instances too large for possible-world enumeration.

use maps_matching::{max_weight_matching_left_weights, BipartiteGraph, Matching};
use rand::Rng;

/// Clears the market: maximum-weight matching between (already accepted)
/// tasks and workers, with task weights `d_r · p_r`.
///
/// Returns the matching and the realized revenue `U(B^t)`.
pub fn realize_revenue(graph: &BipartiteGraph, weights: &[f64]) -> (Matching, f64) {
    max_weight_matching_left_weights(graph, weights)
}

/// Monte-Carlo estimate of the expected total revenue
/// `E[U(B^t) | P^t]` for given per-task acceptance probabilities.
///
/// # Panics
/// Panics if slice lengths disagree with the graph or `samples == 0`.
pub fn monte_carlo_expected_revenue(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
    samples: u32,
    rng: &mut impl Rng,
) -> f64 {
    assert_eq!(weights.len(), graph.n_left(), "one weight per task");
    assert_eq!(accept_probs.len(), graph.n_left(), "one probability per task");
    assert!(samples > 0, "need at least one sample");
    let mut total = 0.0;
    let mut keep = vec![false; graph.n_left()];
    for _ in 0..samples {
        for (k, &q) in keep.iter_mut().zip(accept_probs) {
            *k = rng.gen::<f64>() < q;
        }
        let (sub, old_of_new) = graph.filter_left(&keep);
        let sub_weights: Vec<f64> = old_of_new.iter().map(|&l| weights[l as usize]).collect();
        let (_, revenue) = max_weight_matching_left_weights(&sub, &sub_weights);
        total += revenue;
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_matching::{expected_total_revenue_exact, BipartiteGraphBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn running_example() -> BipartiteGraph {
        BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build()
    }

    #[test]
    fn realize_revenue_running_example() {
        let g = running_example();
        let (m, rev) = realize_revenue(&g, &[3.9, 2.1, 2.0]);
        assert!((rev - 5.9).abs() < 1e-9);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn monte_carlo_matches_exact_enumeration() {
        let g = running_example();
        let weights = [3.9, 2.1, 2.0];
        let probs = [0.5, 0.5, 0.8];
        let exact = expected_total_revenue_exact(&g, &weights, &probs);
        let mut rng = SmallRng::seed_from_u64(12345);
        let mc = monte_carlo_expected_revenue(&g, &weights, &probs, 40_000, &mut rng);
        assert!(
            (mc - exact).abs() < 0.05,
            "MC {mc} vs exact {exact} (4.075 per Example 3)"
        );
    }

    #[test]
    fn monte_carlo_degenerate_probs() {
        let g = running_example();
        let weights = [3.9, 2.1, 2.0];
        let mut rng = SmallRng::seed_from_u64(1);
        let all = monte_carlo_expected_revenue(&g, &weights, &[1.0; 3], 10, &mut rng);
        assert!((all - 5.9).abs() < 1e-9);
        let none = monte_carlo_expected_revenue(&g, &weights, &[0.0; 3], 10, &mut rng);
        assert_eq!(none, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let g = running_example();
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = monte_carlo_expected_revenue(&g, &[1.0; 3], &[0.5; 3], 0, &mut rng);
    }
}
