//! The executable NP-hardness construction of Theorem 1 (Appendix A):
//! a polynomial-time reduction from 3-SAT to the decision version of the
//! GDP problem.
//!
//! For a CNF formula with `m` clauses and `n` variables:
//!
//! * each clause `C_i` becomes a **worker** `w_i`;
//! * each literal occurrence becomes a **requester**: positive literals
//!   have valuation `v = 1` and distance `d = 1`, negative literals have
//!   `v = 2` and `d = 0.5` (deterministic valuations — acceptance means
//!   `p ≤ v`);
//! * all requesters for variable `x_j` (both polarities) share one grid,
//!   so the platform must post them the *same* price;
//! * worker `w_i` can reach exactly the three requesters of its clause.
//!
//! Pricing grid `j` at 1 ⇔ assigning `x_j := true` (positive literals
//! yield revenue `1·1`, negative ones only `0.5`); pricing at 2 ⇔
//! `x_j := false` (only negative literals accept, yielding `2·0.5 = 1`).
//! The maximum total revenue is `m` iff the formula is satisfiable.

use maps_matching::{max_weight_matching_dense, BipartiteGraph, BipartiteGraphBuilder};

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// 0-based variable index.
    pub var: usize,
    /// `true` for `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal `x_var`.
    pub fn pos(var: usize) -> Self {
        Self {
            var,
            positive: true,
        }
    }

    /// Negative literal `¬x_var`.
    pub fn neg(var: usize) -> Self {
        Self {
            var,
            positive: false,
        }
    }
}

/// A 3-SAT formula in CNF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formula {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses of exactly three literals.
    pub clauses: Vec<[Literal; 3]>,
}

impl Formula {
    /// Builds a formula, validating variable indices.
    ///
    /// # Panics
    /// Panics if a literal references an out-of-range variable.
    pub fn new(num_vars: usize, clauses: Vec<[Literal; 3]>) -> Self {
        for c in &clauses {
            for l in c {
                assert!(l.var < num_vars, "literal references variable {}", l.var);
            }
        }
        Self { num_vars, clauses }
    }

    /// Evaluates the formula under a truth assignment.
    pub fn is_satisfied(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| assignment[l.var] == l.positive))
    }

    /// Exhaustive satisfiability check (test-sized formulas only).
    pub fn brute_force_satisfiable(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars <= 20, "brute force limited to 20 variables");
        for mask in 0u64..(1 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|v| mask >> v & 1 == 1).collect();
            if self.is_satisfied(&assignment) {
                return Some(assignment);
            }
        }
        None
    }
}

/// The GDP instance produced by the reduction.
#[derive(Debug, Clone)]
pub struct GdpHardnessInstance {
    /// Requester–worker graph (requester `3i+j` ↔ worker `i`).
    pub graph: BipartiteGraph,
    /// Deterministic valuation per requester (1 or 2).
    pub valuations: Vec<f64>,
    /// Travel distance per requester (1 or 0.5).
    pub distances: Vec<f64>,
    /// Grid (= variable) of each requester.
    pub grid_of_requester: Vec<usize>,
    /// Number of clauses `m` (= number of workers).
    pub num_clauses: usize,
    /// Number of grids (= number of variables).
    pub num_grids: usize,
}

/// Performs the Theorem-1 reduction.
pub fn reduce(formula: &Formula) -> GdpHardnessInstance {
    let m = formula.clauses.len();
    let mut builder = BipartiteGraphBuilder::new(3 * m, m);
    let mut valuations = Vec::with_capacity(3 * m);
    let mut distances = Vec::with_capacity(3 * m);
    let mut grid_of_requester = Vec::with_capacity(3 * m);
    for (i, clause) in formula.clauses.iter().enumerate() {
        for (j, lit) in clause.iter().enumerate() {
            let r = 3 * i + j;
            builder.add_edge(r, i);
            if lit.positive {
                valuations.push(1.0);
                distances.push(1.0);
            } else {
                valuations.push(2.0);
                distances.push(0.5);
            }
            grid_of_requester.push(lit.var);
        }
    }
    GdpHardnessInstance {
        graph: builder.build(),
        valuations,
        distances,
        grid_of_requester,
        num_clauses: m,
        num_grids: formula.num_vars,
    }
}

impl GdpHardnessInstance {
    /// Total revenue when grid `j` is priced `1` iff `assignment[j]`
    /// (otherwise `2`): accepting requesters are those with `p ≤ v`, and
    /// the revenue is the maximum-weight matching over them.
    pub fn revenue_for_assignment(&self, assignment: &[bool]) -> f64 {
        assert_eq!(assignment.len(), self.num_grids);
        let n = self.graph.n_left();
        let weights: Vec<Option<f64>> = (0..n)
            .map(|r| {
                let price = if assignment[self.grid_of_requester[r]] {
                    1.0
                } else {
                    2.0
                };
                (price <= self.valuations[r]).then(|| price * self.distances[r])
            })
            .collect();
        let (_, revenue) = max_weight_matching_dense(n, self.graph.n_right(), |l, w| {
            self.graph.has_edge(l, w).then(|| weights[l]).flatten()
        });
        revenue
    }

    /// The decision problem: does any price assignment reach revenue `m`?
    /// (Exhaustive over `2^num_grids` — test-sized instances only.)
    pub fn max_revenue_reaches_m(&self) -> bool {
        assert!(
            self.num_grids <= 20,
            "exhaustive search limited to 20 grids"
        );
        let m = self.num_clauses as f64;
        (0u64..(1 << self.num_grids)).any(|mask| {
            let assignment: Vec<bool> = (0..self.num_grids).map(|v| mask >> v & 1 == 1).collect();
            self.revenue_for_assignment(&assignment) >= m - 1e-9
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ x2) — satisfiable.
    fn sat_formula() -> Formula {
        Formula::new(
            3,
            vec![
                [Literal::pos(0), Literal::pos(1), Literal::pos(2)],
                [Literal::neg(0), Literal::neg(1), Literal::pos(2)],
            ],
        )
    }

    /// (x ∨ x ∨ x) ∧ (¬x ∨ ¬x ∨ ¬x): x=true violates clause 2, x=false
    /// violates clause 1 — unsatisfiable.
    fn unsat_formula() -> Formula {
        Formula::new(
            1,
            vec![
                [Literal::pos(0), Literal::pos(0), Literal::pos(0)],
                [Literal::neg(0), Literal::neg(0), Literal::neg(0)],
            ],
        )
    }

    #[test]
    fn formula_evaluation() {
        let f = sat_formula();
        assert!(f.is_satisfied(&[false, false, true]));
        assert!(f.is_satisfied(&[true, false, false]));
        assert!(!f.is_satisfied(&[true, true, false]));
        assert!(f.brute_force_satisfiable().is_some());
        assert!(unsat_formula().brute_force_satisfiable().is_none());
    }

    #[test]
    fn reduction_shape() {
        let inst = reduce(&sat_formula());
        assert_eq!(inst.num_clauses, 2);
        assert_eq!(inst.num_grids, 3);
        assert_eq!(inst.graph.n_left(), 6);
        assert_eq!(inst.graph.n_right(), 2);
        // Worker i connects to exactly its clause's three requesters.
        for i in 0..2 {
            for j in 0..3 {
                assert!(inst.graph.has_edge(3 * i + j, i));
            }
        }
        assert!(!inst.graph.has_edge(0, 1));
    }

    #[test]
    fn satisfying_assignment_reaches_m() {
        let f = sat_formula();
        let inst = reduce(&f);
        let assignment = f.brute_force_satisfiable().unwrap();
        let rev = inst.revenue_for_assignment(&assignment);
        assert!(
            (rev - inst.num_clauses as f64).abs() < 1e-9,
            "satisfying assignment must earn exactly m, got {rev}"
        );
    }

    #[test]
    fn violating_assignment_earns_less() {
        let f = sat_formula();
        let inst = reduce(&f);
        // x = (true, true, false) violates clause 2.
        let rev = inst.revenue_for_assignment(&[true, true, false]);
        assert!(rev < inst.num_clauses as f64 - 1e-9, "got {rev}");
    }

    #[test]
    fn decision_matches_satisfiability_sat() {
        let f = sat_formula();
        assert_eq!(
            reduce(&f).max_revenue_reaches_m(),
            f.brute_force_satisfiable().is_some()
        );
    }

    #[test]
    fn decision_matches_satisfiability_unsat() {
        let f = unsat_formula();
        let inst = reduce(&f);
        assert!(!inst.max_revenue_reaches_m());
        // Best achievable with one variable and contradictory clauses:
        // price 1 → clause-1 worker earns 1·1, clause-2 worker still earns
        // 1·0.5 from a negative literal (total 1.5); price 2 → positive
        // literals reject, only clause 2 earns 2·0.5 = 1. Both < m = 2.
        let r1 = inst.revenue_for_assignment(&[true]);
        let r2 = inst.revenue_for_assignment(&[false]);
        assert!((r1 - 1.5).abs() < 1e-9, "got {r1}");
        assert!((r2 - 1.0).abs() < 1e-9, "got {r2}");
    }

    #[test]
    fn exhaustive_equivalence_on_random_formulas() {
        // Pseudo-random 3-SAT instances: revenue m ⇔ satisfiable.
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let num_vars = 2 + (next() % 4) as usize; // 2..=5
            let num_clauses = 1 + (next() % 6) as usize; // 1..=6
            let clauses: Vec<[Literal; 3]> = (0..num_clauses)
                .map(|_| {
                    [0; 3].map(|_| Literal {
                        var: (next() % num_vars as u64) as usize,
                        positive: next() % 2 == 0,
                    })
                })
                .collect();
            let f = Formula::new(num_vars, clauses);
            let inst = reduce(&f);
            assert_eq!(
                inst.max_revenue_reaches_m(),
                f.brute_force_satisfiable().is_some(),
                "trial {trial}: {f:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn formula_rejects_bad_literal() {
        let _ = Formula::new(1, vec![[Literal::pos(0), Literal::pos(1), Literal::pos(0)]]);
    }
}
