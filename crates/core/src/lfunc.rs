//! The expected-revenue approximation `L^g(n, p)` of Eq. (1) and the
//! Algorithm-3 maximizer.
//!
//! For a grid `g` with task distances `d_{r_1} ≥ d_{r_2} ≥ …` the paper
//! approximates the expected revenue at unit price `p` with `n` units of
//! supply as
//!
//! ```text
//! L^g(n, p) = min( Σ_{r∈R^tg} d_r · p · S^g(p) ,   Σ_{i=1..n} d_{r_i} · p )
//!             └────────── demand curve ─────────┘  └──── supply curve ────┘
//! ```
//!
//! Fig. 4 of the paper shows the three regimes: sufficient supply (the
//! Myerson price maximizes), limited supply with the Myerson price still
//! optimal, and limited supply where the curves' intersection is optimal.
//!
//! Algorithm 3 maximizes the *learned* counterpart: it scores each ladder
//! price with the index `Ĩ(p) = min(p·Ŝ(p) + c(p), (D/C)·p)` (UCB
//! optimism on the demand side, exact supply side) and returns the best
//! rung, scanning from `p_max` downwards.

use maps_market::{PriceLadder, UcbStats};

/// How MAPS turns two successive maximizers into the heap key `Δ^g`.
///
/// Algorithm 3's pseudocode returns `p_new·Ŝ(p_new) − p_old·Ŝ(p_old)`,
/// but the worked Example 5 computes the increase as "the maximum of the
/// minor one of the line and the discretized demand curve", i.e. the
/// difference of [`LFunction::value`] maxima — the quantity whose
/// submodularity Theorem 8 exploits. Both coincide when the discrete
/// maximizer sits on the demand curve; they differ when it is
/// supply-limited. We default to the L-difference and keep the literal
/// pseudocode rule as an ablation (`bench/ablation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaRule {
    /// `Δ = max_p L̂(n+1, p) − max_p L̂(n, p)` (Example 5 / Theorem 8).
    #[default]
    LDifference,
    /// `Δ = C·(p_new·Ŝ(p_new) − p_old·Ŝ(p_old))` — the pseudocode line 10
    /// of Algorithm 3, scaled by the grid's distance mass so that grids
    /// are comparable (Example 5's heap keys include the mass).
    ScaledShorthand,
}

/// Which expected-revenue approximation Algorithm 3 maximizes.
///
/// The paper's Appendix C.6 closes with: *"Another approximate expression
/// could be `Σ_{i=1}^{min(|R^tg|·S^g(p), n^tg)} d_{r_i}·p·S^g(p)`. We
/// leave the analysis in future work."* — implemented here as
/// [`ApproxKind::TruncatedExpectation`]: instead of capping the demand
/// curve by the supply line, it sums the top distances that are both
/// within supply *and* within the expected number of acceptors, scaled by
/// the acceptance probability. It lower-bounds Eq. (1) pointwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproxKind {
    /// Eq. (1): `min(demand curve, supply curve)` — the paper's default.
    #[default]
    MinCurves,
    /// Appendix C.6's alternative (the paper's future-work variant).
    TruncatedExpectation,
}

/// Result of one Algorithm-3 maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximizer {
    /// Ladder index of the chosen price.
    pub price_idx: usize,
    /// The chosen price `p_new`.
    pub price: f64,
    /// `L̂(n, p_new) = min(C·p·Ŝ(p), D_n·p)` at the chosen price (plain
    /// sample mean, no optimism) — used for `Δ` under
    /// [`DeltaRule::LDifference`].
    pub l_hat: f64,
    /// `C·p_new·Ŝ(p_new)` — used for `Δ` under
    /// [`DeltaRule::ScaledShorthand`].
    pub revenue_hat: f64,
    /// The optimistic index value `Ĩ(p_new)` that won the scan.
    pub index_value: f64,
}

/// Per-grid demand/supply curve bookkeeping for one time period.
#[derive(Debug, Clone, PartialEq)]
pub struct LFunction {
    /// Task distances sorted in decreasing order.
    dists_desc: Vec<f64>,
    /// `prefix[i] = Σ_{j<i} dists_desc[j]`; `prefix[0] = 0`.
    prefix: Vec<f64>,
}

impl LFunction {
    /// Builds the curves from the travel distances of a grid's tasks.
    ///
    /// # Panics
    /// Panics on non-finite or negative distances.
    pub fn new(mut dists: Vec<f64>) -> Self {
        for &d in &dists {
            assert!(d.is_finite() && d >= 0.0, "invalid task distance {d}");
        }
        dists.sort_unstable_by(|a, b| b.total_cmp(a));
        let mut prefix = Vec::with_capacity(dists.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &d in &dists {
            acc += d;
            prefix.push(acc);
        }
        Self {
            dists_desc: dists,
            prefix,
        }
    }

    /// Number of tasks `|R^tg|`.
    pub fn num_tasks(&self) -> usize {
        self.dists_desc.len()
    }

    /// Total demand mass `C = Σ_{r∈R^tg} d_r`.
    pub fn total_mass(&self) -> f64 {
        *self.prefix.last().expect("prefix never empty")
    }

    /// Supply mass `D_n = Σ_{i=1..n} d_{r_i}` (top-`n` distances;
    /// `n` beyond `|R^tg|` saturates at `C`).
    pub fn supply_mass(&self, n: usize) -> f64 {
        self.prefix[n.min(self.dists_desc.len())]
    }

    /// The `i`-th largest distance (0-based).
    pub fn nth_distance(&self, i: usize) -> f64 {
        self.dists_desc[i]
    }

    /// Exact `L^g(n, p)` of Eq. (1) for a *known* acceptance ratio `s`.
    pub fn value(&self, n: usize, p: f64, s: f64) -> f64 {
        (self.total_mass() * p * s).min(self.supply_mass(n) * p)
    }

    /// Appendix C.6's alternative approximation
    /// `L̃(n, p) = Σ_{i=1}^{min(⌈|R|·s⌉, n)} d_{r_i} · p · s`.
    pub fn value_tilde(&self, n: usize, p: f64, s: f64) -> f64 {
        let expected_acceptors = (self.num_tasks() as f64 * s).ceil() as usize;
        self.supply_mass(expected_acceptors.min(n)) * p * s
    }

    /// Dispatch between [`Self::value`] and [`Self::value_tilde`].
    pub fn value_kind(&self, kind: ApproxKind, n: usize, p: f64, s: f64) -> f64 {
        match kind {
            ApproxKind::MinCurves => self.value(n, p, s),
            ApproxKind::TruncatedExpectation => self.value_tilde(n, p, s),
        }
    }

    /// Algorithm 3: scan the ladder from `p_max` downwards and return the
    /// rung maximizing `Ĩ(p) = min(p·Ŝ(p) + c(p), (D_n/C)·p)` where
    /// `c(p) = p·√(2·ln N / N(p))` when `use_ucb` (zero otherwise — the
    /// no-optimism ablation). Strict improvement while scanning downwards
    /// means ties keep the *larger* price, exactly as the pseudocode's
    /// `if Ĩ_new < …` update does.
    ///
    /// Returns `None` when the grid has no demand mass (`C = 0`).
    pub fn maximize(
        &self,
        n: usize,
        stats: &UcbStats,
        ladder: &PriceLadder,
        use_ucb: bool,
    ) -> Option<Maximizer> {
        self.maximize_kind(ApproxKind::MinCurves, n, stats, ladder, use_ucb)
    }

    /// Algorithm 3 with a selectable approximation: `MinCurves` scores
    /// each rung with the paper's index `min(p·Ŝ(p)+c(p), (D_n/C)·p)`;
    /// `TruncatedExpectation` scores with `L̃` evaluated at the optimistic
    /// `Ŝ(p)+radius`. Either way `l_hat` is the chosen approximation at
    /// the plain sample mean (what `Δ^g` is computed from).
    pub fn maximize_kind(
        &self,
        kind: ApproxKind,
        n: usize,
        stats: &UcbStats,
        ladder: &PriceLadder,
        use_ucb: bool,
    ) -> Option<Maximizer> {
        let c_mass = self.total_mass();
        if c_mass <= 0.0 {
            return None;
        }
        let supply_ratio = self.supply_mass(n) / c_mass;
        let mut best: Option<Maximizer> = None;
        for (idx, p) in ladder.descending() {
            let s_hat = stats.s_hat(idx);
            let radius = if use_ucb { stats.radius(idx) } else { 0.0 };
            let index_value = match kind {
                ApproxKind::MinCurves => (p * s_hat + p * radius).min(supply_ratio * p),
                // Optimistic s, capped at 1 (a probability).
                ApproxKind::TruncatedExpectation => {
                    self.value_tilde(n, p, (s_hat + radius).min(1.0)) / c_mass
                }
            };
            let better = match &best {
                None => true,
                Some(b) => index_value > b.index_value,
            };
            if better {
                best = Some(Maximizer {
                    price_idx: idx,
                    price: p,
                    l_hat: self.value_kind(kind, n, p, s_hat),
                    revenue_hat: c_mass * p * s_hat,
                    index_value,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper as seeded UCB statistics over the ladder
    /// {1, 2, 3} with large sample counts (so radii are negligible).
    fn table1_stats(ladder: &PriceLadder) -> UcbStats {
        let mut stats = UcbStats::new(ladder.len());
        let s = [0.9, 0.8, 0.5];
        for (idx, _) in ladder.ascending() {
            let n = 1_000_000u64;
            stats.observe_batch(idx, n, (s[idx] * n as f64) as u64);
        }
        stats
    }

    /// A two-rung ladder {1, 2} (p_min=1, p_max=3, α=1: the next rung 4
    /// exceeds p_max). Geometric ladders cannot hit {1,2,3} exactly, so
    /// these unit tests exercise two rungs; the running-example module
    /// reproduces the paper's {1,2,3} table with its own price set.
    fn table1_ladder() -> PriceLadder {
        PriceLadder::new(1.0, 3.0, 1.0)
    }

    #[test]
    fn prefix_sums_and_masses() {
        let l = LFunction::new(vec![0.7, 1.3, 1.0]);
        assert_eq!(l.num_tasks(), 3);
        assert!((l.total_mass() - 3.0).abs() < 1e-12);
        assert!((l.supply_mass(0) - 0.0).abs() < 1e-12);
        assert!((l.supply_mass(1) - 1.3).abs() < 1e-12);
        assert!((l.supply_mass(2) - 2.3).abs() < 1e-12);
        assert!((l.supply_mass(3) - 3.0).abs() < 1e-12);
        assert!((l.supply_mass(99) - 3.0).abs() < 1e-12, "saturates");
        assert_eq!(l.nth_distance(0), 1.3);
    }

    #[test]
    fn example5_grid9_values() {
        // Grid 9 = {r1 (d=1.3), r2 (d=0.7)}, Table-1 ratios. The paper's
        // Fig. 5: with n=1 the maximum of min(demand, supply) over
        // {1,2,3} is 3 at p=3.
        let l = LFunction::new(vec![1.3, 0.7]);
        let s = [0.9, 0.8, 0.5];
        let prices = [1.0, 2.0, 3.0];
        let values: Vec<f64> = prices
            .iter()
            .zip(s)
            .map(|(&p, s)| l.value(1, p, s))
            .collect();
        assert!((values[0] - 1.3).abs() < 1e-12); // min(1.8, 1.3)
        assert!((values[1] - 2.6).abs() < 1e-12); // min(3.2, 2.6)
        assert!((values[2] - 3.0).abs() < 1e-12); // min(3.0, 3.9)
    }

    #[test]
    fn example5_grid11_values() {
        // Grid 11 = {r3 (d=1)}: with n=1 the max is 1.6 at p=2.
        let l = LFunction::new(vec![1.0]);
        assert!((l.value(1, 1.0, 0.9) - 0.9).abs() < 1e-12);
        assert!((l.value(1, 2.0, 0.8) - 1.6).abs() < 1e-12);
        assert!((l.value(1, 3.0, 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn value_zero_supply_is_zero() {
        let l = LFunction::new(vec![2.0, 1.0]);
        assert_eq!(l.value(0, 3.0, 0.9), 0.0);
    }

    #[test]
    fn value_monotone_in_supply() {
        let l = LFunction::new(vec![2.0, 1.5, 1.0, 0.5]);
        for p in [1.0, 2.0, 3.0] {
            for s in [0.1, 0.5, 0.9] {
                let mut prev = -1.0;
                for n in 0..=5 {
                    let v = l.value(n, p, s);
                    assert!(v + 1e-12 >= prev, "L not monotone in n");
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn supply_increments_are_diminishing() {
        // The geometric heart of Lemma 9: because distances are added in
        // decreasing order, max_p L(n+1,p) − max_p L(n,p) is decreasing.
        let l = LFunction::new(vec![2.0, 1.5, 1.0, 0.5]);
        let s = |p: f64| (1.0 - (p - 1.0) / 4.0).clamp(0.0, 1.0); // linear S
        let prices: Vec<f64> = (0..=40).map(|i| 1.0 + i as f64 * 0.1).collect();
        let max_l = |n: usize| -> f64 {
            prices
                .iter()
                .map(|&p| l.value(n, p, s(p)))
                .fold(0.0, f64::max)
        };
        let mut prev_delta = f64::INFINITY;
        for n in 0..5 {
            let delta = max_l(n + 1) - max_l(n);
            assert!(
                delta <= prev_delta + 1e-9,
                "Δ increased at n={n}: {delta} > {prev_delta}"
            );
            prev_delta = delta;
        }
    }

    #[test]
    fn maximizer_empty_grid_is_none() {
        let ladder = table1_ladder();
        let stats = UcbStats::new(ladder.len());
        let l = LFunction::new(vec![]);
        assert!(l.maximize(1, &stats, &ladder, true).is_none());
    }

    #[test]
    fn maximizer_picks_intersection_under_limited_supply() {
        // Two-rung ladder {1, 2} with S(1)=0.9, S(2)=0.8 and one task of
        // distance 1 among demand mass 2 → supply ratio 0.5 with n=1:
        // Ĩ(1) = min(0.9, 0.5) = 0.5, Ĩ(2) = min(1.6, 1.0) = 1.0 → p=2.
        let ladder = table1_ladder();
        let mut stats = UcbStats::new(2);
        stats.observe_batch(0, 1_000_000, 900_000);
        stats.observe_batch(1, 1_000_000, 800_000);
        let l = LFunction::new(vec![1.0, 1.0]);
        let m = l.maximize(1, &stats, &ladder, false).unwrap();
        assert_eq!(m.price, 2.0);
        assert!((m.l_hat - 2.0).abs() < 1e-9); // min(2·2·0.8, 1·2) = 2
        assert!((m.revenue_hat - 3.2).abs() < 1e-6);
    }

    #[test]
    fn maximizer_sufficient_supply_is_myerson_like() {
        // With n ≥ |R| the supply line dominates and the argmax is the
        // revenue-curve maximizer over the ladder.
        let ladder = table1_ladder(); // {1, 2}
        let mut stats = UcbStats::new(2);
        stats.observe_batch(0, 1_000_000, 900_000); // 1·0.9 = 0.9
        stats.observe_batch(1, 1_000_000, 800_000); // 2·0.8 = 1.6 ← max
        let l = LFunction::new(vec![1.0]);
        let m = l.maximize(5, &stats, &ladder, false).unwrap();
        assert_eq!(m.price, 2.0);
        assert!((m.l_hat - 1.6).abs() < 1e-6);
    }

    #[test]
    fn ucb_optimism_can_flip_choice() {
        // Price 1 has a slightly lower mean but far fewer samples; with
        // UCB enabled its radius lifts it above price 2.
        let ladder = table1_ladder();
        let mut stats = UcbStats::new(2);
        stats.observe_batch(0, 4, 3); // Ŝ=0.75, big radius
        stats.observe_batch(1, 100_000, 40_000); // Ŝ=0.4, tiny radius
        let l = LFunction::new(vec![1.0]);
        let no_ucb = l.maximize(5, &stats, &ladder, false).unwrap();
        // Without optimism: 1·0.75 = 0.75 vs 2·0.4 = 0.8 → price 2.
        assert_eq!(no_ucb.price, 2.0);
        let with_ucb = l.maximize(5, &stats, &ladder, true).unwrap();
        // radius(idx0) = √(2 ln(100004)/4) ≈ 2.4 → index ≈ 3.15 → price 1.
        assert_eq!(with_ucb.price, 1.0);
    }

    #[test]
    fn descending_tie_keeps_larger_price() {
        // Both rungs produce identical indices; the scan from p_max down
        // with strict improvement keeps the larger rung.
        let ladder = table1_ladder();
        let mut stats = UcbStats::new(2);
        // S(1)=0.8, S(2)=0.4 → p·Ŝ equal (0.8); choose supply-unconstrained.
        stats.observe_batch(0, 1_000_000, 800_000);
        stats.observe_batch(1, 1_000_000, 400_000);
        let l = LFunction::new(vec![1.0]);
        let m = l.maximize(5, &stats, &ladder, false).unwrap();
        assert_eq!(m.price, 2.0);
    }

    #[test]
    fn table1_fixture_consistency() {
        let ladder = table1_ladder();
        let stats = table1_stats(&ladder);
        assert!((stats.s_hat(0) - 0.9).abs() < 1e-9);
        assert!((stats.s_hat(1) - 0.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid task distance")]
    fn rejects_nan_distance() {
        let _ = LFunction::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn tilde_lower_bounds_min_curves() {
        // L̃ ≤ L pointwise (Appendix C.6's variant is more conservative):
        // D_{min(⌈Rs⌉,n)}·p·s ≤ D_n·p and ≤ C·p·s.
        let lf = LFunction::new(vec![3.0, 2.0, 1.5, 1.0, 0.5]);
        for n in 0..=6 {
            for p in [1.0, 1.5, 2.25, 3.375] {
                for s in [0.0, 0.1, 0.5, 0.9, 1.0] {
                    let l = lf.value(n, p, s);
                    let lt = lf.value_tilde(n, p, s);
                    assert!(lt <= l + 1e-12, "L̃({n},{p},{s})={lt} exceeds L={l}");
                    assert!(lt >= 0.0);
                }
            }
        }
    }

    #[test]
    fn tilde_equals_min_curves_under_full_acceptance() {
        // With s = 1, L̃ = D_n·p = L when supply binds.
        let lf = LFunction::new(vec![2.0, 1.0]);
        assert!((lf.value_tilde(1, 2.0, 1.0) - lf.value(1, 2.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn maximize_kind_tilde_values() {
        // Rungs {1, 2}, Ŝ = (0.9, 0.8), distances [1.3, 0.7], n = 1:
        // L̃(1, 1, .9) = 1.3·1·0.9 = 1.17 and L̃(1, 2, .8) = 1.3·2·0.8
        // = 2.08 → rung 2 wins with l_hat = 2.08.
        let ladder = table1_ladder(); // rungs {1, 2}
        let mut stats = UcbStats::new(2);
        stats.observe_batch(0, 1_000_000, 900_000);
        stats.observe_batch(1, 1_000_000, 800_000);
        let lf = LFunction::new(vec![1.3, 0.7]);
        let m = lf
            .maximize_kind(ApproxKind::TruncatedExpectation, 1, &stats, &ladder, false)
            .unwrap();
        assert_eq!(m.price, 2.0);
        assert!((m.l_hat - 1.3 * 2.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn maximize_kind_dispatch_matches_direct() {
        let ladder = table1_ladder();
        let stats = table1_stats(&ladder);
        let lf = LFunction::new(vec![1.0, 2.0, 0.5]);
        let a = lf.maximize(2, &stats, &ladder, true);
        let b = lf.maximize_kind(ApproxKind::MinCurves, 2, &stats, &ladder, true);
        assert_eq!(a, b);
    }
}
