//! # maps-core
//!
//! The primary contribution of *Tong et al., "Dynamic Pricing in Spatial
//! Crowdsourcing: A Matching-Based Approach", SIGMOD 2018*: the **Global
//! Dynamic Pricing (GDP)** problem and the pricing strategies evaluated in
//! the paper.
//!
//! ## Problem (Definition 7)
//!
//! Per time period the platform sees tasks `R^t` (each with an origin grid
//! cell and travel distance `d_r`) and workers `W^t` (each with a range
//! constraint). It must post one unit price per grid cell so that the
//! *expected total revenue* — the expectation over requesters' random
//! accept/reject decisions of the maximum-weight bipartite matching
//! between accepting tasks and workers — is maximized. The problem is
//! NP-hard ([`hardness`] contains the executable 3-SAT reduction of
//! Theorem 1).
//!
//! ## Strategies (Sec. 3–5)
//!
//! | Type | Paper reference |
//! |------|-----------------|
//! | [`BasePricing`] / [`BasePStrategy`] | Algorithm 1 — PAC estimation of per-grid Myerson prices, averaged into a global base price |
//! | [`MapsStrategy`] | Algorithms 2 + 3 — UCB demand learning, `L^g(n,p)` revenue approximation, greedy supply distribution with a lazy max-heap over marginal gains |
//! | [`SdrStrategy`] | supply/demand-ratio heuristic |
//! | [`SdeStrategy`] | supply/demand exponential heuristic |
//! | [`CappedUcbStrategy`] | Babaioff et al. limited-supply posted pricing, per grid independently |
//!
//! All strategies implement [`PricingStrategy`] and are driven by the
//! simulator in `maps-simulator`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod base;
pub mod baselines;
pub mod builder;
pub mod cache;
pub mod evaluate;
pub mod hardness;
pub mod lfunc;
pub mod maps_strategy;
pub mod problem;
pub mod running_example;
pub mod smoothing;

pub use base::{BasePriceResult, BasePricing};
pub use baselines::{
    paper_default_strategy, BasePStrategy, CappedUcbStrategy, SdeStrategy, SdrStrategy,
};
pub use builder::{build_period_graph, build_period_graph_capped};
pub use cache::{PeriodGraphCache, WorkerChurn};
pub use evaluate::{
    monte_carlo_expected_revenue, monte_carlo_expected_revenue_parallel,
    monte_carlo_expected_revenue_seeded, monte_carlo_expected_revenue_with, realize_revenue,
    McScratch, MC_BLOCK,
};
pub use lfunc::{ApproxKind, DeltaRule, LFunction};
pub use maps_strategy::{MapsConfig, MapsStrategy};
pub use problem::{
    DemandProbe, Observation, PeriodInput, PriceSchedule, PricingStrategy, StateError, StateWords,
    StrategyKind, TaskInput, WorkerInput,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::base::{BasePriceResult, BasePricing};
    pub use crate::baselines::{
        paper_default_strategy, BasePStrategy, CappedUcbStrategy, SdeStrategy, SdrStrategy,
    };
    pub use crate::builder::{build_period_graph, build_period_graph_capped};
    pub use crate::cache::{PeriodGraphCache, WorkerChurn};
    pub use crate::evaluate::{
        monte_carlo_expected_revenue, monte_carlo_expected_revenue_parallel,
        monte_carlo_expected_revenue_seeded, monte_carlo_expected_revenue_with, realize_revenue,
        McScratch, MC_BLOCK,
    };
    pub use crate::lfunc::{ApproxKind, DeltaRule, LFunction};
    pub use crate::maps_strategy::{MapsConfig, MapsStrategy};
    pub use crate::problem::{
        DemandProbe, Observation, PeriodInput, PriceSchedule, PricingStrategy, StateError,
        StateWords, StrategyKind, TaskInput, WorkerInput,
    };
    pub use crate::running_example::RunningExample;
}
