//! MAPS — the MAtching-based Pricing Strategy (Algorithms 2 + 3, Sec. 4).
//!
//! Per time period, MAPS:
//!
//! 1. builds the task–worker bipartite graph (done by the caller and
//!    passed in through [`PeriodInput`]),
//! 2. groups tasks by grid and builds each grid's demand/supply curves
//!    ([`LFunction`]),
//! 3. greedily distributes the *dependent* supply: a max-heap keyed by
//!    the marginal gain `Δ^g` repeatedly admits one more worker into the
//!    grid that profits most, maintaining feasibility with an incremental
//!    augmenting path in the shared pre-matching `M′` (so a worker serving
//!    two grids is never double-counted), and
//! 4. finalizes each grid's price at the Algorithm-3 maximizer of its
//!    learned revenue approximation.
//!
//! Lemma 9 (per-grid `Δ` is non-increasing) makes the lazy heap sound and
//! Theorem 8 gives the `(1−1/e)` guarantee for the resulting supply plan.
//!
//! ## Deviations from the pseudocode (documented in DESIGN.md)
//!
//! * The first `G` heap pops with `Δ = ∞` in Algorithm 2 only exist to
//!   bootstrap the per-grid candidates; we push the first real candidate
//!   for each non-empty grid directly.
//! * On popping an entry whose promised augmenting path was consumed by
//!   another grid in the meantime (possible because line 16's feasibility
//!   check happens at *insert* time), we re-verify and finalize the grid
//!   at its current supply instead of corrupting `M′`.
//! * Admissions with `Δ = 0` are skipped: they cannot change any price or
//!   the approximation value, only burn a worker inside the throw-away
//!   pre-matching.
//!
//! ## Parallel per-grid table builds (PR 2)
//!
//! With [`MapsConfig::parallel`] (the default), step 2 precomputes each
//! grid's full maximizer table `max_p L̂(n, p)` for `n = 1..=|R^tg|` and
//! fans the per-grid builds out over rayon. Grids are independent, every
//! table entry is a pure function of `(L^g, Ŝ^g, ladder)`, and the
//! per-cell results are collected in cell order, so the schedule is
//! **bit-identical** to the retained sequential path (which computes the
//! same maximizers on demand inside the heap loop) at any thread count —
//! enforced by `price_period_bitwise_deterministic_across_threads` here
//! and the cross-crate proptest oracle in `tests/proptest_invariants.rs`.
//! The table also removes the per-pop plateau-lookahead rescans, an
//! `O(n² · |ladder|)` worst case on plateau-heavy grids.

use crate::base::BasePricing;
use crate::lfunc::{ApproxKind, DeltaRule, LFunction, Maximizer};
use crate::problem::{
    DemandProbe, Observation, PeriodInput, PriceSchedule, PricingStrategy, StateError, StateWords,
};
use crate::smoothing::smooth_prices;
use maps_market::{ChangeDetector, PriceLadder, UcbStats};
use maps_matching::IncrementalMatching;
use rayon::prelude::*;
use std::collections::BinaryHeap;

/// Tunables for [`MapsStrategy`].
#[derive(Debug, Clone)]
pub struct MapsConfig {
    /// Base-pricing sampling accuracy `ε` (Algorithm 1).
    pub epsilon: f64,
    /// Base-pricing failure probability `δ`.
    pub delta: f64,
    /// How the heap key `Δ^g` is computed (see [`DeltaRule`]).
    pub delta_rule: DeltaRule,
    /// Whether Algorithm 3 adds the UCB confidence radius (disable for
    /// the no-optimism ablation).
    pub use_ucb: bool,
    /// Tumbling-window length for the Sec.-4.2.2 change detector;
    /// `None` disables detection (the synthetic workloads of Table 3 are
    /// stationary, where 2σ windows only produce false resets).
    pub change_window: Option<u64>,
    /// Optional spatial smoothing factor `β ∈ [0,1]` applied to the final
    /// schedule (paper Sec. 4.2.3, practical note ii). `None` disables.
    pub smoothing: Option<f64>,
    /// Which expected-revenue approximation Algorithm 3 maximizes
    /// (Eq. (1) by default; Appendix C.6's variant for the ablation).
    pub approx: ApproxKind,
    /// Plateau lookahead. On a *discrete* ladder, `max_p L̂(n, p)` is a
    /// step function of the supply mass with flat plateaus between rung
    /// survival levels, so the paper's "stop when Δ^g = 0" rule (valid
    /// for the continuous concave curve of Lemma 9) can stall a grid at
    /// a high intersection rung long before supply saturates demand.
    /// With lookahead enabled, a zero one-step gain is replaced by the
    /// best *amortized* gain over all reachable supply levels (the
    /// standard concave-hull correction), restoring convergence to the
    /// Myerson regime under abundant supply. Disable to reproduce the
    /// pseudocode literally (ablation `A1`).
    pub plateau_lookahead: bool,
    /// Precompute each grid's maximizer table `max_p L̂(n, p)` for
    /// `n = 1..=|R^tg|` and fan the per-grid builds out over rayon
    /// (bit-identical to the sequential on-demand path at any thread
    /// count). Disable to run the retained sequential reference, the
    /// oracle for the determinism tests.
    pub parallel: bool,
}

impl Default for MapsConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.2,
            delta: 0.01,
            delta_rule: DeltaRule::LDifference,
            use_ucb: true,
            change_window: None,
            smoothing: None,
            approx: ApproxKind::MinCurves,
            plateau_lookahead: true,
            parallel: true,
        }
    }
}

/// One heap entry `((g, n_new, p_new), Δ^g)` of Algorithm 2.
#[derive(Debug, Clone, Copy)]
struct Entry {
    delta: f64,
    cell: u32,
    price_idx: u32,
    price: f64,
    l_hat: f64,
    revenue_hat: f64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.delta == other.delta && self.cell == other.cell
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on Δ; ties broken by lower cell id for determinism.
        self.delta
            .total_cmp(&other.delta)
            .then_with(|| other.cell.cmp(&self.cell))
    }
}

/// Per-grid working state for one pricing round.
struct CellState {
    /// Demand/supply curves for this grid's tasks.
    lf: LFunction,
    /// Task indices of this grid, sorted by decreasing distance.
    tasks_desc: Vec<u32>,
    /// Scan position into `tasks_desc`: entries before it are matched or
    /// proven un-augmentable (dead). Once a free task has no augmenting
    /// path it never regains one (augmentations only grow reachability
    /// on the matched side), so dead tasks are skipped forever.
    cursor: usize,
    /// Admitted supply `n^tg`.
    n: usize,
    /// `max_p L̂(n, p)` and the shorthand revenue at the current supply.
    cur_l: f64,
    cur_rev: f64,
    /// Maximizer price at the current supply (starts at the base price).
    cur_price: f64,
    cur_price_idx: u32,
    /// Whether the final price was already fixed by a Δ=0 pop.
    finalized: bool,
    /// Precomputed `table[n-1] = maximize_kind(n)` for `n = 1..=|R^tg|`
    /// ([`MapsConfig::parallel`]); `None` on the sequential reference
    /// path, which computes the same maximizers on demand.
    table: Option<Vec<Option<Maximizer>>>,
}

/// The MAPS pricing strategy.
#[derive(Debug, Clone)]
pub struct MapsStrategy {
    ladder: PriceLadder,
    cfg: MapsConfig,
    num_cells: usize,
    base_price: f64,
    stats: Vec<UcbStats>,
    change: Option<Vec<ChangeDetector>>,
}

impl MapsStrategy {
    /// Creates MAPS for a region with `num_cells` grids and the given
    /// candidate ladder. Until [`PricingStrategy::calibrate`] runs, the
    /// base price defaults to the ladder's middle rung.
    pub fn new(num_cells: usize, ladder: PriceLadder, cfg: MapsConfig) -> Self {
        assert!(num_cells > 0, "need at least one grid");
        if let Some(beta) = cfg.smoothing {
            assert!((0.0..=1.0).contains(&beta), "smoothing factor in [0,1]");
        }
        let stats = vec![UcbStats::new(ladder.len()); num_cells];
        let change = cfg
            .change_window
            .map(|m| vec![ChangeDetector::new(ladder.len(), m); num_cells]);
        let base_price = ladder.price(ladder.len() / 2);
        Self {
            ladder,
            cfg,
            num_cells,
            base_price,
            stats,
            change,
        }
    }

    /// Paper-default MAPS over the default ladder.
    pub fn paper_default(num_cells: usize) -> Self {
        Self::new(
            num_cells,
            PriceLadder::paper_default(),
            MapsConfig::default(),
        )
    }

    /// The learned/base price `p_b` currently in use for empty grids.
    pub fn base_price(&self) -> f64 {
        self.base_price
    }

    /// Overrides the base price (tests / resuming from a checkpoint).
    pub fn set_base_price(&mut self, p: f64) {
        self.base_price = self.ladder.clamp(p);
    }

    /// Read access to a grid's UCB statistics.
    pub fn stats(&self, cell: usize) -> &UcbStats {
        &self.stats[cell]
    }

    /// Mutable access to a grid's UCB statistics (used by tests and by
    /// checkpoint restoration; normal operation goes through `observe`).
    pub fn stats_mut(&mut self, cell: usize) -> &mut UcbStats {
        &mut self.stats[cell]
    }

    /// The candidate ladder.
    pub fn ladder(&self) -> &PriceLadder {
        &self.ladder
    }

    /// Builds one grid's working state: sorts its task indices by
    /// decreasing distance, derives the demand/supply curves and (when
    /// `table_depth > 0`) the Algorithm-3 maximizer table for supply
    /// levels `1..=min(|R^tg|, table_depth)`. Pure in `(cell, list)`
    /// given frozen statistics, which is what makes the rayon fan-out
    /// in [`PricingStrategy::price_period`] bit-identical to the
    /// sequential path.
    ///
    /// The depth cap keeps worker-scarce periods cheap: a grid can
    /// never admit more than `|W|` workers, so the heap only ever reads
    /// levels `≤ |W| + 1` directly; the rarer deep plateau-lookahead
    /// reads fall back to the identical on-demand computation in
    /// [`Self::maximizer_at`].
    fn build_cell_state(
        &self,
        cell: usize,
        mut list: Vec<u32>,
        tasks: &[crate::problem::TaskInput],
        table_depth: usize,
    ) -> Option<CellState> {
        if list.is_empty() {
            return None;
        }
        list.sort_unstable_by(|&a, &b| {
            tasks[b as usize]
                .distance
                .total_cmp(&tasks[a as usize].distance)
                .then(a.cmp(&b))
        });
        let dists: Vec<f64> = list.iter().map(|&i| tasks[i as usize].distance).collect();
        let lf = LFunction::new(dists);
        let table = (table_depth > 0).then(|| {
            let stats = &self.stats[cell];
            (1..=lf.num_tasks().min(table_depth))
                .map(|n| {
                    lf.maximize_kind(self.cfg.approx, n, stats, &self.ladder, self.cfg.use_ucb)
                })
                .collect()
        });
        Some(CellState {
            lf,
            tasks_desc: list,
            cursor: 0,
            n: 0,
            cur_l: 0.0,
            cur_rev: 0.0,
            cur_price: self.base_price,
            cur_price_idx: self.ladder.nearest_index(self.base_price) as u32,
            finalized: false,
            table,
        })
    }

    /// The Algorithm-3 maximizer of `cell` at supply level `n`
    /// (`1 ..= |R^tg|`): a table lookup where the precomputed table
    /// covers `n`, otherwise the identical pure on-demand computation
    /// (the sequential reference path, and lookahead levels beyond the
    /// parallel table's depth cap).
    fn maximizer_at(&self, cell: u32, state: &CellState, n: usize) -> Option<Maximizer> {
        if let Some(table) = &state.table {
            if n <= table.len() {
                return table[n - 1];
            }
        }
        state.lf.maximize_kind(
            self.cfg.approx,
            n,
            &self.stats[cell as usize],
            &self.ladder,
            self.cfg.use_ucb,
        )
    }

    /// Advances `state.cursor` past dead tasks and returns the next task
    /// with an augmenting path, without applying it.
    fn next_augmentable(
        matching: &mut IncrementalMatching<'_>,
        state: &mut CellState,
    ) -> Option<u32> {
        while state.cursor < state.tasks_desc.len() {
            let t = state.tasks_desc[state.cursor];
            if matching.can_augment(t as usize) {
                return Some(t);
            }
            // Dead (or already matched — only possible for admitted heads).
            state.cursor += 1;
        }
        None
    }

    /// Lines 16–21: proposes the next candidate for `cell` (or a Δ=0
    /// finalizer when no further supply can be admitted).
    fn push_next(
        &self,
        cell: u32,
        state: &mut CellState,
        matching: &mut IncrementalMatching<'_>,
        heap: &mut BinaryHeap<Entry>,
    ) {
        let finalizer = Entry {
            delta: 0.0,
            cell,
            price_idx: state.cur_price_idx,
            price: state.cur_price,
            l_hat: state.cur_l,
            revenue_hat: state.cur_rev,
        };
        if state.n >= state.lf.num_tasks() || Self::next_augmentable(matching, state).is_none() {
            heap.push(finalizer);
            return;
        }
        let value_of = |m: &Maximizer| match self.cfg.delta_rule {
            DeltaRule::LDifference => m.l_hat,
            DeltaRule::ScaledShorthand => m.revenue_hat,
        };
        let cur_value = match self.cfg.delta_rule {
            DeltaRule::LDifference => state.cur_l,
            DeltaRule::ScaledShorthand => state.cur_rev,
        };
        match self.maximizer_at(cell, state, state.n + 1) {
            Some(m) => {
                let mut delta = (value_of(&m) - cur_value).max(0.0);
                if delta <= 1e-12 && self.cfg.plateau_lookahead {
                    // Concave-hull correction: one more worker gains
                    // nothing, but a deeper supply level might (the step
                    // function plateaus between ladder rungs). Credit this
                    // admission with the best amortized future gain.
                    for m_level in (state.n + 2)..=state.lf.num_tasks() {
                        if let Some(mx) = self.maximizer_at(cell, state, m_level) {
                            let amortized =
                                (value_of(&mx) - cur_value) / (m_level - state.n) as f64;
                            delta = delta.max(amortized);
                        }
                    }
                }
                heap.push(Entry {
                    delta,
                    cell,
                    price_idx: m.price_idx as u32,
                    price: m.price,
                    l_hat: m.l_hat,
                    revenue_hat: m.revenue_hat,
                });
            }
            None => heap.push(finalizer),
        }
    }
}

impl PricingStrategy for MapsStrategy {
    fn name(&self) -> &'static str {
        "MAPS"
    }

    fn calibrate(&mut self, probe: &mut dyn DemandProbe) {
        let bp = BasePricing::new(self.ladder.clone(), self.cfg.epsilon, self.cfg.delta);
        let result = bp.learn(self.num_cells, probe);
        self.base_price = self.ladder.clamp(result.base_price);
        for (stats, freq) in self.stats.iter_mut().zip(&result.stats) {
            stats.seed_from(freq);
        }
    }

    fn price_period(&mut self, input: &PeriodInput<'_>) -> PriceSchedule {
        let g = input.grid.num_cells();
        assert_eq!(g, self.num_cells, "grid size changed mid-simulation");
        let mut prices = vec![self.base_price; g];

        // Group task indices per grid, sorted by decreasing distance so
        // supply admission follows the supply curve's top-n semantics.
        let mut cell_tasks: Vec<Vec<u32>> = vec![Vec::new(); g];
        for (i, t) in input.tasks.iter().enumerate() {
            cell_tasks[t.cell.index()].push(i as u32);
        }
        // Per-grid curve (and maximizer-table) builds. Grids are
        // independent and the computation is pure per grid, so the rayon
        // fan-out with index-ordered collect is bit-identical to the
        // sequential on-demand path.
        let mut states: Vec<Option<CellState>> = if self.cfg.parallel {
            // A grid can never admit more workers than exist, so the
            // heap reads levels ≤ |W| + 1; deeper lookahead levels fall
            // back to on-demand computation inside `maximizer_at`.
            let table_depth = input.workers.len().saturating_add(1);
            (0..g)
                .into_par_iter()
                .map(|cell| {
                    self.build_cell_state(cell, cell_tasks[cell].clone(), input.tasks, table_depth)
                })
                .collect()
        } else {
            cell_tasks
                .iter_mut()
                .enumerate()
                .map(|(cell, list)| {
                    self.build_cell_state(cell, std::mem::take(list), input.tasks, 0)
                })
                .collect()
        };

        // Greedy supply distribution over the shared pre-matching M′.
        let mut matching = IncrementalMatching::new(input.graph);
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(g + 1);
        for cell in 0..g as u32 {
            if states[cell as usize].is_some() {
                let mut state = states[cell as usize].take().unwrap();
                self.push_next(cell, &mut state, &mut matching, &mut heap);
                states[cell as usize] = Some(state);
            }
        }

        while let Some(entry) = heap.pop() {
            let cell = entry.cell as usize;
            let mut state = states[cell].take().expect("entry for a task-bearing cell");
            if state.finalized {
                states[cell] = Some(state);
                continue;
            }
            if entry.delta <= 0.0 {
                // Lines 11–14: final price, clamped into the window.
                prices[cell] = self.ladder.clamp(entry.price);
                state.finalized = true;
                states[cell] = Some(state);
                continue;
            }
            // Lines 9–10: admit one worker via an augmenting path —
            // re-verified because the path may have been consumed since
            // this entry was inserted.
            match Self::next_augmentable(&mut matching, &mut state) {
                Some(task) => {
                    let ok = matching.try_augment(task as usize);
                    debug_assert!(ok, "can_augment just succeeded");
                    state.cursor += 1;
                    state.n += 1;
                    state.cur_l = entry.l_hat;
                    state.cur_rev = entry.revenue_hat;
                    state.cur_price = entry.price;
                    state.cur_price_idx = entry.price_idx;
                    self.push_next(entry.cell, &mut state, &mut matching, &mut heap);
                }
                None => {
                    // Stale promise: finalize at the current supply level.
                    heap.push(Entry {
                        delta: 0.0,
                        cell: entry.cell,
                        price_idx: state.cur_price_idx,
                        price: state.cur_price,
                        l_hat: state.cur_l,
                        revenue_hat: state.cur_rev,
                    });
                }
            }
            states[cell] = Some(state);
        }

        if let Some(beta) = self.cfg.smoothing {
            smooth_prices(input.grid, &mut prices, beta);
        }
        PriceSchedule { prices }
    }

    fn observe(&mut self, feedback: &[Observation]) {
        for obs in feedback {
            let idx = self.ladder.nearest_index(obs.price);
            let cell = obs.cell.index();
            self.stats[cell].observe(idx, obs.accepted);
            if let Some(change) = &mut self.change {
                if change[cell].observe(idx, obs.accepted) {
                    // Sec. 4.2.2: statistically-significant deviation →
                    // discard the stale estimate for this price.
                    self.stats[cell].reset_price(idx);
                }
            }
        }
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.base_price.to_bits());
        out.push(self.stats.len() as u64);
        for stats in &self.stats {
            stats.save_words(out);
        }
        match &self.change {
            None => out.push(0),
            Some(detectors) => {
                out.push(1);
                out.push(detectors.len() as u64);
                for det in detectors {
                    det.save_words(out);
                }
            }
        }
    }

    fn load_state(&mut self, state: &mut StateWords<'_>) -> Result<(), StateError> {
        self.base_price = state.take_f64()?;
        if state.take()? as usize != self.stats.len() {
            return Err(StateError::Mismatch("MAPS cell count"));
        }
        for stats in self.stats.iter_mut() {
            crate::baselines::load_ucb(stats, state)?;
        }
        let has_change = state.take()?;
        match (&mut self.change, has_change) {
            (None, 0) => Ok(()),
            (Some(detectors), 1) => {
                if state.take()? as usize != detectors.len() {
                    return Err(StateError::Mismatch("MAPS change-detector count"));
                }
                for det in detectors.iter_mut() {
                    let used = det.load_words(state.rest()).map_err(|msg| {
                        if msg.ends_with("truncated") {
                            StateError::Truncated
                        } else {
                            StateError::Mismatch(msg)
                        }
                    })?;
                    state.advance(used);
                }
                Ok(())
            }
            _ => Err(StateError::Mismatch("MAPS change-detector presence")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_period_graph;
    use crate::problem::{TaskInput, WorkerInput};
    use maps_spatial::{GridSpec, Point, Rect};

    /// The running example: 4×4 grid over an 8×8 region; r1, r2 in grid 9
    /// (cell 8), r3 in grid 11 (cell 10); three workers with radius 2.5;
    /// Table-1 acceptance ratios seeded into the statistics.
    fn running_example_strategy() -> (GridSpec, Vec<TaskInput>, Vec<WorkerInput>, MapsStrategy) {
        let grid = GridSpec::square(Rect::square(8.0), 4);
        let tasks = vec![
            TaskInput::new(&grid, Point::new(1.0, 4.5), 1.3), // r1
            TaskInput::new(&grid, Point::new(1.5, 5.0), 0.7), // r2
            TaskInput::new(&grid, Point::new(5.0, 5.0), 1.0), // r3
        ];
        let workers = vec![
            WorkerInput::new(&grid, Point::new(3.0, 5.0), 2.5), // w1
            WorkerInput::new(&grid, Point::new(7.0, 5.0), 2.5), // w2
            WorkerInput::new(&grid, Point::new(5.0, 3.0), 2.5), // w3
        ];
        let ladder = PriceLadder::explicit(vec![1.0, 2.0, 3.0]);
        let mut maps = MapsStrategy::new(grid.num_cells(), ladder, MapsConfig::default());
        // Example 5: "we assume we have obtained the statistics about the
        // acceptance ratios as in Table 1".
        let table1 = [0.9, 0.8, 0.5];
        for cell in 0..grid.num_cells() {
            for (idx, s) in table1.iter().enumerate() {
                let n = 1_000_000u64;
                maps.stats_mut(cell)
                    .observe_batch(idx, n, (s * n as f64) as u64);
            }
        }
        maps.set_base_price(2.0);
        (grid, tasks, workers, maps)
    }

    #[test]
    fn example5_final_prices() {
        let (grid, tasks, workers, mut maps) = running_example_strategy();
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        // Paper: "The price for grid 9 is 3 and the price for grid 11 is 2."
        assert_eq!(schedule.prices[8], 3.0, "grid 9");
        assert_eq!(schedule.prices[10], 2.0, "grid 11");
        // Empty grids keep the base price.
        assert_eq!(schedule.prices[0], 2.0);
        assert_eq!(schedule.prices[15], 2.0);
    }

    #[test]
    fn example5_trace_with_shorthand_delta() {
        // The ScaledShorthand rule must agree on the running example
        // (both rules coincide at demand-limited maximizers).
        let (grid, tasks, workers, mut maps) = running_example_strategy();
        maps.cfg.delta_rule = DeltaRule::ScaledShorthand;
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        assert_eq!(schedule.prices[8], 3.0);
        assert_eq!(schedule.prices[10], 2.0);
    }

    #[test]
    fn no_workers_prices_at_base() {
        let (grid, tasks, _, mut maps) = running_example_strategy();
        let graph = build_period_graph(&grid, &tasks, &[]);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &[],
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        // No supply anywhere → every grid finalizes at the base price.
        for &p in &schedule.prices {
            assert_eq!(p, 2.0);
        }
    }

    #[test]
    fn no_tasks_prices_at_base() {
        let (grid, _, workers, mut maps) = running_example_strategy();
        let graph = build_period_graph(&grid, &[], &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &[],
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        for &p in &schedule.prices {
            assert_eq!(p, 2.0);
        }
    }

    #[test]
    fn prices_always_within_window() {
        let (grid, tasks, workers, mut maps) = running_example_strategy();
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        for &p in &schedule.prices {
            assert!((1.0..=3.0).contains(&p));
        }
    }

    #[test]
    fn observe_updates_stats_and_nearest_rung() {
        let (_, _, _, mut maps) = running_example_strategy();
        let before = maps.stats(8).n_at(2);
        maps.observe(&[Observation {
            cell: 8usize.into(),
            price: 2.9, // nearest rung is 3.0 (index 2)
            accepted: false,
        }]);
        assert_eq!(maps.stats(8).n_at(2), before + 1);
    }

    #[test]
    fn change_detection_resets_price_stats() {
        let grid = GridSpec::square(Rect::square(8.0), 4);
        let ladder = PriceLadder::explicit(vec![1.0, 2.0, 3.0]);
        let mut maps = MapsStrategy::new(
            grid.num_cells(),
            ladder,
            MapsConfig {
                change_window: Some(50),
                ..MapsConfig::default()
            },
        );
        // Feed a stable 100%-accept window, then a 0%-accept window: the
        // detector must flag and reset that rung's statistics.
        let obs_accept: Vec<Observation> = (0..50)
            .map(|_| Observation {
                cell: 0usize.into(),
                price: 2.0,
                accepted: true,
            })
            .collect();
        maps.observe(&obs_accept);
        assert_eq!(maps.stats(0).n_at(1), 50);
        let obs_reject: Vec<Observation> = (0..50)
            .map(|_| Observation {
                cell: 0usize.into(),
                price: 2.0,
                accepted: false,
            })
            .collect();
        maps.observe(&obs_reject);
        assert_eq!(maps.stats(0).n_at(1), 0, "stats reset after change flag");
    }

    #[test]
    fn supply_constrained_grid_prefers_higher_price() {
        // One grid, two tasks, one worker: MAPS should price above the
        // sufficient-supply optimum (2.0 under Table 1) because supply
        // covers only the longer task — the Fig. 4 case-3 behaviour.
        let grid = GridSpec::square(Rect::square(8.0), 1);
        let tasks = vec![
            TaskInput::new(&grid, Point::new(1.0, 1.0), 1.0),
            TaskInput::new(&grid, Point::new(1.2, 1.0), 1.0),
        ];
        let workers = vec![WorkerInput::new(&grid, Point::new(1.0, 1.2), 2.0)];
        let ladder = PriceLadder::explicit(vec![1.0, 2.0, 3.0]);
        let mut maps = MapsStrategy::new(1, ladder, MapsConfig::default());
        // S(1)=0.99, S(2)=0.6, S(3)=0.35: with both tasks servable the
        // best rung is 2 (1.2·C vs 1.05·C); with one worker the supply
        // ratio is 0.5 and rung 3 wins: min(1.05, 1.5) = 1.05 beats
        // min(1.2, 1.0) = 1.0 and min(0.99, 0.5) = 0.5.
        let s = [0.99, 0.6, 0.35];
        for (idx, s) in s.iter().enumerate() {
            let n = 1_000_000u64;
            maps.stats_mut(0)
                .observe_batch(idx, n, (s * n as f64) as u64);
        }
        maps.set_base_price(2.0);
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        assert_eq!(schedule.prices[0], 3.0);
    }

    #[test]
    fn smoothing_pulls_neighbor_prices_together() {
        let (grid, tasks, workers, mut maps) = running_example_strategy();
        maps.cfg.smoothing = Some(0.5);
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let schedule = maps.price_period(&input);
        // Grid 9 was 3.0 surrounded by base 2.0: smoothing must pull it
        // strictly below 3.0 but keep it above the base price.
        assert!(schedule.prices[8] < 3.0);
        assert!(schedule.prices[8] > 2.0);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (grid, tasks, workers, mut maps) = running_example_strategy();
        let graph = build_period_graph(&grid, &tasks, &workers);
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let a = maps.price_period(&input);
        let b = maps.price_period(&input);
        assert_eq!(a, b);
    }

    /// A many-grid pseudorandom period: `side²` grids over the 100×100
    /// region with clustered tasks/workers and tie-heavy distances, the
    /// shape where the parallel table path and the sequential heap path
    /// could plausibly diverge.
    fn random_period(
        side: u32,
        n_tasks: usize,
        n_workers: usize,
        seed: u64,
    ) -> (GridSpec, Vec<TaskInput>, Vec<WorkerInput>) {
        let grid = GridSpec::square(Rect::square(100.0), side);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Distances from a coarse 0.5-step set: plateaus + cross-grid Δ
        // ties are the hard case for heap-order-sensitive divergence.
        let tasks: Vec<TaskInput> = (0..n_tasks)
            .map(|_| {
                let x = (next() % 10_000) as f64 / 100.0;
                let y = (next() % 10_000) as f64 / 100.0;
                let d = 0.5 * (1 + next() % 8) as f64;
                TaskInput::new(&grid, Point::new(x, y), d)
            })
            .collect();
        let workers: Vec<WorkerInput> = (0..n_workers)
            .map(|_| {
                let x = (next() % 10_000) as f64 / 100.0;
                let y = (next() % 10_000) as f64 / 100.0;
                WorkerInput::new(&grid, Point::new(x, y), 15.0)
            })
            .collect();
        (grid, tasks, workers)
    }

    fn seeded_maps(num_cells: usize, parallel: bool, seed: u64) -> MapsStrategy {
        let mut maps = MapsStrategy::new(
            num_cells,
            PriceLadder::paper_default(),
            MapsConfig {
                parallel,
                ..MapsConfig::default()
            },
        );
        let mut s = seed | 1;
        for cell in 0..num_cells {
            for idx in 0..maps.ladder().len() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Coarse acceptance ratios (multiples of 1/8) maximize ties.
                maps.stats_mut(cell).observe_batch(idx, 8, s % 9);
            }
        }
        maps
    }

    /// PR-2 acceptance: the parallel table-driven `price_period` is
    /// bit-identical to the retained sequential on-demand path.
    #[test]
    fn parallel_tables_match_sequential_oracle() {
        for seed in [3u64, 17, 99] {
            let (grid, tasks, workers, _) = running_example_strategy();
            let graph = build_period_graph(&grid, &tasks, &workers);
            let input = PeriodInput {
                grid: &grid,
                tasks: &tasks,
                workers: &workers,
                graph: &graph,
            };
            let (_, _, _, mut maps) = running_example_strategy();
            maps.cfg.parallel = false;
            let sequential = maps.price_period(&input);
            let (_, _, _, mut maps) = running_example_strategy();
            maps.cfg.parallel = true;
            let parallel = maps.price_period(&input);
            assert_eq!(sequential, parallel);

            let (grid, tasks, workers) = random_period(8, 400, 250, seed);
            let graph = build_period_graph(&grid, &tasks, &workers);
            let input = PeriodInput {
                grid: &grid,
                tasks: &tasks,
                workers: &workers,
                graph: &graph,
            };
            let sequential = seeded_maps(grid.num_cells(), false, seed).price_period(&input);
            let parallel = seeded_maps(grid.num_cells(), true, seed).price_period(&input);
            for (cell, (s, p)) in sequential.prices.iter().zip(&parallel.prices).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    p.to_bits(),
                    "seed {seed} cell {cell}: sequential {s} vs parallel {p}"
                );
            }
        }
    }

    /// PR-2 acceptance: the parallel `price_period` is bit-identical to
    /// itself (and to the sequential oracle) at 1/2/3/8 threads.
    #[test]
    fn price_period_bitwise_deterministic_across_threads() {
        let (grid, tasks, workers) = random_period(8, 500, 300, 0xA11CE);
        let graph = build_period_graph(&grid, &tasks, &workers);
        let prices = maps_testkit::assert_deterministic(|| {
            let input = PeriodInput {
                grid: &grid,
                tasks: &tasks,
                workers: &workers,
                graph: &graph,
            };
            seeded_maps(grid.num_cells(), true, 0xA11CE)
                .price_period(&input)
                .prices
        });
        let input = PeriodInput {
            grid: &grid,
            tasks: &tasks,
            workers: &workers,
            graph: &graph,
        };
        let oracle = seeded_maps(grid.num_cells(), false, 0xA11CE).price_period(&input);
        assert_eq!(
            maps_testkit::BitPattern::bits(&prices),
            maps_testkit::BitPattern::bits(&oracle.prices),
            "parallel family diverged from the sequential oracle"
        );
    }
}
