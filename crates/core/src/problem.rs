//! GDP problem types: tasks, workers, per-period inputs, price schedules
//! and the [`PricingStrategy`] interface every compared algorithm
//! implements (Sec. 5.1 "Compared algorithms").

use maps_matching::BipartiteGraph;
use maps_spatial::{CellId, GridSpec, Point};

/// A spatial task `r = <t, ori_r, des_r>` as seen by the pricing layer in
/// one time period (Definition 2). The private valuation `v_r` is *not*
/// part of this type — it is unknown to the platform by definition; only
/// the simulator's ground truth knows it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskInput {
    /// Origin `ori_r` (determines the grid cell and range feasibility).
    pub origin: Point,
    /// Travel distance `d_r` from origin to destination.
    pub distance: f64,
    /// Cell of the origin — precomputed because every strategy needs it.
    pub cell: CellId,
}

impl TaskInput {
    /// Builds a task, deriving the cell from `grid`.
    ///
    /// A non-finite origin has no grid cell (`Grid::cell_of` would
    /// silently file a NaN point under cell 0); feeding one is a caller
    /// bug, caught here in debug builds. Online admission paths must
    /// validate *before* constructing inputs (the service rejects such
    /// events instead of panicking).
    pub fn new(grid: &GridSpec, origin: Point, distance: f64) -> Self {
        assert!(
            distance.is_finite() && distance > 0.0,
            "travel distance must be positive, got {distance}"
        );
        debug_assert!(
            origin.x.is_finite() && origin.y.is_finite(),
            "task origin must be finite, got {origin:?}"
        );
        Self {
            origin,
            distance,
            cell: grid.cell_of(origin),
        }
    }
}

/// A crowd worker `w = <t, l_w, a_w>` (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerInput {
    /// Initial location `l_w`.
    pub location: Point,
    /// Range-constraint radius `a_w`.
    pub radius: f64,
    /// Cell of the location (SDR/SDE/CappedUCB count workers per grid).
    pub cell: CellId,
}

impl WorkerInput {
    /// Builds a worker, deriving the cell from `grid`.
    ///
    /// Like [`TaskInput::new`], a non-finite location is a caller bug
    /// (it would be filed under cell 0 and corrupt pricing invisibly):
    /// debug-asserted here, validated-and-rejected at service admission.
    pub fn new(grid: &GridSpec, location: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "worker radius must be non-negative, got {radius}"
        );
        debug_assert!(
            location.x.is_finite() && location.y.is_finite(),
            "worker location must be finite, got {location:?}"
        );
        Self {
            location,
            radius,
            cell: grid.cell_of(location),
        }
    }
}

/// Everything a strategy sees when pricing one time period `t`.
#[derive(Debug, Clone, Copy)]
pub struct PeriodInput<'a> {
    /// The grid partitioning (Definition 1).
    pub grid: &'a GridSpec,
    /// Issued tasks `R^t`.
    pub tasks: &'a [TaskInput],
    /// Available workers `W^t`.
    pub workers: &'a [WorkerInput],
    /// The bipartite graph under the range constraint
    /// (`tasks × workers`, edge iff `|ori_r − l_w| ≤ a_w`).
    pub graph: &'a BipartiteGraph,
}

/// One unit price per grid cell — the strategy's output `P^t`.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceSchedule {
    /// `prices[c]` is the unit price for cell `c`.
    pub prices: Vec<f64>,
}

impl PriceSchedule {
    /// A uniform schedule (what base pricing produces).
    pub fn uniform(num_cells: usize, price: f64) -> Self {
        Self {
            prices: vec![price; num_cells],
        }
    }

    /// Price for `cell`.
    #[inline]
    pub fn price(&self, cell: CellId) -> f64 {
        self.prices[cell.index()]
    }

    /// The task-level weights `d_r · p_r` for a set of tasks under this
    /// schedule (the bipartite edge weights of Definition 5).
    pub fn task_weights(&self, tasks: &[TaskInput]) -> Vec<f64> {
        tasks
            .iter()
            .map(|t| t.distance * self.price(t.cell))
            .collect()
    }
}

/// A requester's observed decision, fed back to learning strategies after
/// each period (the platform always observes accept/reject for every
/// posted price, whether or not the task was eventually matched).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Grid cell of the task's origin.
    pub cell: CellId,
    /// The unit price that was posted to the requester.
    pub price: f64,
    /// Whether the requester accepted (`v_r > price`).
    pub accepted: bool,
}

/// Oracle used during the offline calibration phase (Algorithm 1 lines
/// 5–6: "Use the price p for h(p) times and observe the acceptance
/// ratio"). The simulator implements this against ground-truth demand.
pub trait DemandProbe {
    /// Offers `price` to `n` requesters (who recently issued tasks) in
    /// `cell`; returns how many accepted.
    fn probe(&mut self, cell: CellId, price: f64, n: u64) -> u64;
}

/// Why restoring a strategy-state snapshot failed
/// ([`PricingStrategy::load_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// The word stream ended before the state was fully restored.
    Truncated,
    /// A structural field (ladder length, cell count, detector
    /// presence, …) disagrees with this instance's configuration: the
    /// snapshot was taken from a differently-configured strategy.
    Mismatch(&'static str),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Truncated => f.write_str("strategy state stream truncated"),
            StateError::Mismatch(what) => write!(f, "strategy state mismatch: {what}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Borrowing cursor over a strategy-state word stream (the flat `u64`
/// encoding written by [`PricingStrategy::save_state`]). Floats travel
/// as raw [`f64::to_bits`] patterns, so a save/load round trip is
/// bit-exact — the property the service's crash-recovery contract
/// (recovered outcome ≡ uninterrupted outcome) rests on.
#[derive(Debug)]
pub struct StateWords<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> StateWords<'a> {
    /// A cursor at the start of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Takes the next word.
    pub fn take(&mut self) -> Result<u64, StateError> {
        let word = self
            .words
            .get(self.pos)
            .copied()
            .ok_or(StateError::Truncated)?;
        self.pos += 1;
        Ok(word)
    }

    /// Takes the next word as a bit-exact `f64`.
    pub fn take_f64(&mut self) -> Result<f64, StateError> {
        self.take().map(f64::from_bits)
    }

    /// The not-yet-consumed tail of the stream.
    pub fn rest(&self) -> &'a [u64] {
        &self.words[self.pos..]
    }

    /// Advances past `n` words already consumed through [`rest`].
    ///
    /// [`rest`]: StateWords::rest
    pub fn advance(&mut self, n: usize) {
        self.pos += n;
        debug_assert!(self.pos <= self.words.len());
    }

    /// Words remaining.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }
}

/// The interface shared by MAPS and all baselines.
///
/// `Send` is a supertrait so a boxed strategy — and therefore a whole
/// engine owning one (the batch `Simulation`, the sharded service) —
/// can be moved onto a worker thread (the ingestion front-end runs the
/// service on a dedicated sequencer thread). Strategies are plain data
/// plus RNG state, so this costs implementations nothing.
pub trait PricingStrategy: Send {
    /// Display name used in experiment tables ("MAPS", "BaseP", …).
    fn name(&self) -> &'static str;

    /// One-time offline calibration before the simulation starts
    /// (Algorithm 1 for the strategies that need a base price and seeded
    /// acceptance statistics). Default: nothing to calibrate.
    fn calibrate(&mut self, probe: &mut dyn DemandProbe) {
        let _ = probe;
    }

    /// Prices one time period.
    fn price_period(&mut self, input: &PeriodInput<'_>) -> PriceSchedule;

    /// Consumes post-period accept/reject feedback. Default: stateless.
    fn observe(&mut self, feedback: &[Observation]) {
        let _ = feedback;
    }

    /// Appends the strategy's *mutable learning state* (calibrated base
    /// price, UCB counters, change-detector windows — everything
    /// `calibrate`/`observe` mutate; construction parameters are not
    /// state) to a flat `u64` word stream, floats as raw bit patterns.
    /// The service's epoch checkpoints persist this alongside the market
    /// state so a recovered strategy resumes learning bit-identically.
    /// Default: stateless, nothing to save.
    fn save_state(&self, out: &mut Vec<u64>) {
        let _ = out;
    }

    /// Restores a [`save_state`](PricingStrategy::save_state) snapshot
    /// into this instance, which must be configured identically to the
    /// one that saved it (same ladder, cell count, …). Default:
    /// stateless, nothing to restore.
    fn load_state(&mut self, state: &mut StateWords<'_>) -> Result<(), StateError> {
        let _ = state;
        Ok(())
    }
}

/// Enumeration of the five compared strategies, for CLI/experiment config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// MAPS (Algorithms 2–3) — the paper's contribution.
    Maps,
    /// Base pricing (Algorithm 1) applied as a flat schedule.
    BaseP,
    /// Supply/demand ratio heuristic.
    Sdr,
    /// Supply/demand exponential heuristic.
    Sde,
    /// Babaioff et al. CappedUCB, per grid independently.
    CappedUcb,
}

impl StrategyKind {
    /// All five strategies in the paper's plotting order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Maps,
        StrategyKind::BaseP,
        StrategyKind::Sdr,
        StrategyKind::Sde,
        StrategyKind::CappedUcb,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Maps => "MAPS",
            StrategyKind::BaseP => "BaseP",
            StrategyKind::Sdr => "SDR",
            StrategyKind::Sde => "SDE",
            StrategyKind::CappedUcb => "CappedUCB",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "maps" => Ok(StrategyKind::Maps),
            "basep" | "base" => Ok(StrategyKind::BaseP),
            "sdr" => Ok(StrategyKind::Sdr),
            "sde" => Ok(StrategyKind::Sde),
            "cappeducb" | "capped-ucb" | "capped" => Ok(StrategyKind::CappedUcb),
            other => Err(format!("unknown strategy '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_spatial::Rect;

    fn grid() -> GridSpec {
        GridSpec::square(Rect::square(8.0), 4)
    }

    #[test]
    fn task_input_derives_cell() {
        let g = grid();
        let t = TaskInput::new(&g, Point::new(1.0, 5.0), 0.7);
        assert_eq!(t.cell.paper_number(), 9);
        assert_eq!(t.distance, 0.7);
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn task_input_rejects_zero_distance() {
        let _ = TaskInput::new(&grid(), Point::ORIGIN, 0.0);
    }

    #[test]
    fn worker_input_derives_cell() {
        let g = grid();
        let w = WorkerInput::new(&g, Point::new(5.0, 3.0), 2.5);
        assert_eq!(w.cell.paper_number(), 7);
    }

    #[test]
    fn schedule_prices_and_weights() {
        let g = grid();
        let mut s = PriceSchedule::uniform(g.num_cells(), 2.0);
        s.prices[8] = 3.0; // grid 9
        let tasks = [
            TaskInput::new(&g, Point::new(1.0, 5.0), 0.7), // grid 9
            TaskInput::new(&g, Point::new(5.0, 5.0), 1.0), // grid 11
        ];
        assert_eq!(s.price(tasks[0].cell), 3.0);
        assert_eq!(s.price(tasks[1].cell), 2.0);
        let w = s.task_weights(&tasks);
        assert!((w[0] - 2.1).abs() < 1e-12);
        assert!((w[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn strategy_kind_roundtrip() {
        for k in StrategyKind::ALL {
            let parsed: StrategyKind = k.name().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("bogus".parse::<StrategyKind>().is_err());
        assert_eq!(StrategyKind::Maps.to_string(), "MAPS");
    }
}
