//! The paper's running example (Examples 1–5, Figs. 1, 2, 5) as a
//! reusable fixture.
//!
//! Three tasks and three workers on an 8×8 region partitioned 4×4:
//!
//! * `r1` (d = 1.3) and `r2` (d = 0.7) originate in **grid 9**, reachable
//!   only by `w1`;
//! * `r3` (d = 1.0) originates in **grid 11** and is "assured to be
//!   served" — reachable by `w1`, `w2` and `w3`;
//! * Table 1 gives the acceptance ratios `S(1) = 0.9, S(2) = 0.8,
//!   S(3) = 0.5`;
//! * the optimal prices are `{3, 3, 2}` with expected total revenue
//!   `4.075` (printed as 4.1 in the paper's Example 3).
//!
//! Note on coordinates: the paper's Fig. 1a label placement is ambiguous
//! in the archived text; the coordinates below are chosen so that every
//! statement in Examples 1–5 holds simultaneously (grid memberships,
//! the bipartite edge set, and the matching claims).

use crate::builder::build_period_graph;
use crate::problem::{TaskInput, WorkerInput};
use maps_matching::BipartiteGraph;
use maps_spatial::{GridSpec, Point, Rect};

/// The running-example fixture.
#[derive(Debug, Clone)]
pub struct RunningExample {
    /// 4×4 grid over the 8×8 region (Example 2).
    pub grid: GridSpec,
    /// Tasks `r1, r2, r3` in paper order.
    pub tasks: Vec<TaskInput>,
    /// Workers `w1, w2, w3` in paper order.
    pub workers: Vec<WorkerInput>,
    /// The bipartite graph of Fig. 1b.
    pub graph: BipartiteGraph,
}

impl RunningExample {
    /// Builds the fixture.
    pub fn new() -> Self {
        let grid = GridSpec::square(Rect::square(8.0), 4);
        let tasks = vec![
            TaskInput::new(&grid, Point::new(1.0, 4.5), 1.3), // r1, grid 9
            TaskInput::new(&grid, Point::new(1.5, 5.0), 0.7), // r2, grid 9
            TaskInput::new(&grid, Point::new(5.0, 5.0), 1.0), // r3, grid 11
        ];
        let workers = vec![
            WorkerInput::new(&grid, Point::new(3.0, 5.0), 2.5), // w1
            WorkerInput::new(&grid, Point::new(7.0, 5.0), 2.5), // w2
            WorkerInput::new(&grid, Point::new(5.0, 3.0), 2.5), // w3, grid 7
        ];
        let graph = build_period_graph(&grid, &tasks, &workers);
        Self {
            grid,
            tasks,
            workers,
            graph,
        }
    }

    /// Table 1: the acceptance ratio for the example's price points.
    ///
    /// # Panics
    /// Panics for prices other than 1, 2 or 3.
    pub fn table1(price: f64) -> f64 {
        match price as u32 {
            1 => 0.9,
            2 => 0.8,
            3 => 0.5,
            _ => panic!("Table 1 defines prices 1, 2, 3 only (got {price})"),
        }
    }

    /// The travel distances `(1.3, 0.7, 1.0)`.
    pub fn distances(&self) -> Vec<f64> {
        self.tasks.iter().map(|t| t.distance).collect()
    }

    /// Task weights `d_r · p_r` for per-task prices.
    pub fn weights(&self, prices: [f64; 3]) -> Vec<f64> {
        self.tasks
            .iter()
            .zip(prices)
            .map(|(t, p)| t.distance * p)
            .collect()
    }

    /// Acceptance probabilities per task for per-task prices (Table 1).
    pub fn accept_probs(prices: [f64; 3]) -> Vec<f64> {
        prices.iter().map(|&p| Self::table1(p)).collect()
    }

    /// The paper's optimal per-task prices (grid 9 → 3, grid 11 → 2).
    pub const OPTIMAL_PRICES: [f64; 3] = [3.0, 3.0, 2.0];

    /// The exact expected total revenue at the optimal prices
    /// (the paper prints 4.1; the unrounded value is 4.075).
    pub const OPTIMAL_EXPECTED_REVENUE: f64 = 4.075;
}

impl Default for RunningExample {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_matching::expected_total_revenue_exact;

    #[test]
    fn grid_memberships_match_paper() {
        let ex = RunningExample::new();
        assert_eq!(ex.tasks[0].cell.paper_number(), 9);
        assert_eq!(ex.tasks[1].cell.paper_number(), 9);
        assert_eq!(ex.tasks[2].cell.paper_number(), 11);
        assert_eq!(ex.workers[2].cell.paper_number(), 7);
    }

    #[test]
    fn edge_set_matches_fig1b() {
        let ex = RunningExample::new();
        assert_eq!(ex.graph.neighbors(0), &[0]); // r1 – w1 only
        assert_eq!(ex.graph.neighbors(1), &[0]); // r2 – w1 only
        assert_eq!(ex.graph.neighbors(2), &[0, 1, 2]); // r3 assured
    }

    #[test]
    fn example3_expected_revenue() {
        let ex = RunningExample::new();
        let e = expected_total_revenue_exact(
            &ex.graph,
            &ex.weights(RunningExample::OPTIMAL_PRICES),
            &RunningExample::accept_probs(RunningExample::OPTIMAL_PRICES),
        );
        assert!((e - RunningExample::OPTIMAL_EXPECTED_REVENUE).abs() < 1e-9);
    }

    #[test]
    fn optimal_prices_beat_all_grid_constrained_alternatives() {
        // Exhaustive check over {1,2,3}² (one price per non-empty grid).
        let ex = RunningExample::new();
        let mut best = (f64::NEG_INFINITY, [0.0; 3]);
        for p9 in [1.0, 2.0, 3.0] {
            for p11 in [1.0, 2.0, 3.0] {
                let prices = [p9, p9, p11];
                let e = expected_total_revenue_exact(
                    &ex.graph,
                    &ex.weights(prices),
                    &RunningExample::accept_probs(prices),
                );
                if e > best.0 {
                    best = (e, prices);
                }
            }
        }
        assert_eq!(best.1, RunningExample::OPTIMAL_PRICES);
        assert!((best.0 - RunningExample::OPTIMAL_EXPECTED_REVENUE).abs() < 1e-9);
    }

    #[test]
    fn example1_claims() {
        use maps_matching::max_cardinality_matching;
        let ex = RunningExample::new();
        // "at most two tasks can be served"
        assert_eq!(max_cardinality_matching(&ex.graph).cardinality(), 2);
        // the uniform Myerson price over Table 1 would be 2
        // (argmax p·S(p): 0.9, 1.6, 1.5), but it is NOT optimal here.
        let uniform2 = [2.0, 2.0, 2.0];
        let e2 = expected_total_revenue_exact(
            &ex.graph,
            &ex.weights(uniform2),
            &RunningExample::accept_probs(uniform2),
        );
        assert!(e2 < RunningExample::OPTIMAL_EXPECTED_REVENUE);
    }

    #[test]
    #[should_panic(expected = "Table 1 defines")]
    fn table1_rejects_unknown_price() {
        let _ = RunningExample::table1(4.0);
    }
}
