//! Spatial price smoothing — the practical extension sketched in
//! Sec. 4.2.3 of the paper: *"Spatial smoothing can also be integrated to
//! reduce the gap of unit prices among neighbouring grids."*
//!
//! One Jacobi relaxation step over the 4-neighbourhood:
//! `p'_c = (1−β)·p_c + β·mean(neighbours of c)`. Being a convex
//! combination, the result stays inside the original price range, so the
//! `[p_min, p_max]` window is preserved automatically.

use maps_spatial::{CellId, GridSpec};

/// Smooths `prices` in place with factor `beta ∈ [0, 1]`.
///
/// `beta = 0` is the identity; `beta = 1` replaces each price with its
/// neighbourhood mean. Cells keep their own price when they have no
/// neighbours (1×1 grids).
///
/// # Panics
/// Panics if `prices.len() != grid.num_cells()` or `beta ∉ [0,1]`.
pub fn smooth_prices(grid: &GridSpec, prices: &mut [f64], beta: f64) {
    assert_eq!(prices.len(), grid.num_cells(), "one price per cell");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    if beta == 0.0 {
        return;
    }
    let old = prices.to_vec();
    for c in 0..old.len() {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for n in grid.neighbors4(CellId(c as u32)) {
            sum += old[n.index()];
            cnt += 1;
        }
        if cnt > 0 {
            prices[c] = (1.0 - beta) * old[c] + beta * (sum / cnt as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_spatial::Rect;

    fn grid3() -> GridSpec {
        GridSpec::square(Rect::square(3.0), 3)
    }

    #[test]
    fn beta_zero_is_identity() {
        let g = grid3();
        let mut p: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let before = p.clone();
        smooth_prices(&g, &mut p, 0.0);
        assert_eq!(p, before);
    }

    #[test]
    fn uniform_prices_are_fixed_point() {
        let g = grid3();
        let mut p = vec![2.5; 9];
        smooth_prices(&g, &mut p, 0.7);
        for &x in &p {
            assert!((x - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn spike_is_attenuated_and_spread() {
        let g = grid3();
        let mut p = vec![1.0; 9];
        p[4] = 5.0; // centre spike
        smooth_prices(&g, &mut p, 0.5);
        // Centre pulled towards its neighbours' mean (1.0).
        assert!((p[4] - 3.0).abs() < 1e-12);
        // Edge-adjacent cells pulled up: (1-β)·1 + β·(mean of 3 nbrs
        // including the spike) = 0.5 + 0.5·(7/3).
        assert!((p[1] - (0.5 + 0.5 * 7.0 / 3.0)).abs() < 1e-12);
        // Corners (not adjacent to the spike) stay at 1.
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn result_stays_within_original_range() {
        let g = grid3();
        let mut p: Vec<f64> = (0..9).map(|i| 1.0 + (i as f64) * 0.5).collect();
        let (lo, hi) = (1.0, 5.0);
        smooth_prices(&g, &mut p, 1.0);
        for &x in &p {
            assert!((lo..=hi).contains(&x), "price {x} escaped [{lo},{hi}]");
        }
    }

    #[test]
    #[should_panic(expected = "beta must be in [0,1]")]
    fn rejects_bad_beta() {
        let g = grid3();
        let mut p = vec![1.0; 9];
        smooth_prices(&g, &mut p, 1.5);
    }
}
