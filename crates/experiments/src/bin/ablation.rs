//! Ablation study over MAPS design choices (DESIGN.md experiment A1):
//!
//! * `DeltaRule::LDifference` (default) vs the pseudocode's
//!   `ScaledShorthand` heap keys;
//! * UCB optimism on vs off (plain sample means);
//! * change detection off (default on stationary demand) vs on;
//! * spatial smoothing β ∈ {0, 0.3};
//! * Eq. (1) vs Appendix C.6's `L̃` approximation;
//! * plateau lookahead on (default) vs the literal Δ=0 stop
//!   (DESIGN.md §4.10);
//! * and BaseP as the reference floor.
//!
//! Run on the Table-3 default world (`--quick` shrinks it).

use maps_core::{ApproxKind, DeltaRule, MapsConfig, MapsStrategy, PricingStrategy, StrategyKind};
use maps_experiments::panels::Scale;
use maps_simulator::alloc::TrackingAllocator;
use maps_simulator::{Simulation, SyntheticConfig};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn variants() -> Vec<(&'static str, MapsConfig)> {
    let base = MapsConfig::default();
    vec![
        ("MAPS (default: L-diff, UCB)", base.clone()),
        (
            "MAPS delta=shorthand",
            MapsConfig {
                delta_rule: DeltaRule::ScaledShorthand,
                ..base.clone()
            },
        ),
        (
            "MAPS no-UCB (plain means)",
            MapsConfig {
                use_ucb: false,
                ..base.clone()
            },
        ),
        (
            "MAPS change-detect w=200",
            MapsConfig {
                change_window: Some(200),
                ..base.clone()
            },
        ),
        (
            "MAPS smoothing beta=0.3",
            MapsConfig {
                smoothing: Some(0.3),
                ..base.clone()
            },
        ),
        (
            "MAPS approx=C.6 tilde",
            MapsConfig {
                approx: ApproxKind::TruncatedExpectation,
                ..base.clone()
            },
        ),
        (
            "MAPS no plateau lookahead",
            MapsConfig {
                plateau_lookahead: false,
                ..base
            },
        ),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { vec![0, 1] } else { vec![0, 1, 2] };
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let cfg = match scale {
        Scale::Full => SyntheticConfig::paper_default(),
        Scale::Quick => SyntheticConfig {
            num_workers: 250,
            num_tasks: 1000,
            periods: 50,
            ..SyntheticConfig::paper_default()
        },
    };

    println!(
        "== MAPS ablation on the Table-3 default world ({scale:?}, {} seeds) ==",
        seeds.len()
    );
    println!(
        "{:<30}{:>14}{:>12}{:>12}",
        "variant", "revenue", "time(s)", "mem(MiB)"
    );

    for (name, maps_cfg) in variants() {
        let mut revenue = 0.0;
        let mut secs = 0.0;
        let mut mem: f64 = 0.0;
        for &seed in &seeds {
            let truth = cfg.build(seed);
            let cells = truth.grid.num_cells();
            let strategy = MapsStrategy::new(
                cells,
                maps_market::PriceLadder::paper_default(),
                maps_cfg.clone(),
            );
            TrackingAllocator::reset_peak();
            let out =
                Simulation::with_strategy(truth, Box::new(strategy) as Box<dyn PricingStrategy>)
                    .run();
            revenue += out.total_revenue;
            secs += out.pricing_secs;
            mem = mem.max(TrackingAllocator::peak_mib());
        }
        let n = seeds.len() as f64;
        println!(
            "{:<30}{:>14.1}{:>12.4}{:>12.2}",
            name,
            revenue / n,
            secs / n,
            mem
        );
    }

    // Reference floor: BaseP on the same worlds.
    let mut base_rev = 0.0;
    for &seed in &seeds {
        let truth = cfg.build(seed);
        base_rev += Simulation::new(truth, StrategyKind::BaseP)
            .run()
            .total_revenue;
    }
    println!(
        "{:<30}{:>14.1}",
        "BaseP (reference)",
        base_rev / seeds.len() as f64
    );
}
