//! Regenerates the paper's Fig10 panels (see DESIGN.md experiment index).

use maps_experiments::cli::{run_figure, CliArgs};
use maps_simulator::alloc::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let args = CliArgs::parse("fig10");
    run_figure("fig10", &args);
}
