//! Regenerates the paper's Fig8 panels (see DESIGN.md experiment index).

use maps_experiments::cli::{run_figure, CliArgs};
use maps_simulator::alloc::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let args = CliArgs::parse("fig8");
    run_figure("fig8", &args);
}
