//! Runs every panel of Figs. 6-8 and Fig. 10 in sequence (the full
//! evaluation of the paper). `--quick` gives a CI-sized pass.

use maps_experiments::cli::{run_figure, CliArgs};
use maps_simulator::alloc::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let args = CliArgs::parse("run_all");
    run_figure("all", &args);
}
