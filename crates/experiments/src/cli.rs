//! Tiny shared CLI for the figure binaries (no external arg parser in
//! the offline dependency set).

use crate::panels::{all_panels, panel_by_name, PanelSpec, Scale};
use crate::report::{print_metric_tables, write_jsonl};
use crate::runner::{run_panel, RunOptions};
use std::path::PathBuf;

/// Parsed command-line options for a figure binary.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// Restrict to one panel (e.g. `--panel w`); `None` = all panels of
    /// the figure.
    pub panel: Option<String>,
    /// `--quick`: ~20× smaller datasets.
    pub quick: bool,
    /// `--parallel`: rayon over cells (disables memory tracking).
    pub parallel: bool,
    /// `--seeds N`: average over N seeds (default 1).
    pub seeds: u64,
    /// `--out DIR`: JSONL output directory (default `results/`).
    pub out_dir: PathBuf,
    /// `--no-memory`: skip peak-heap tracking.
    pub no_memory: bool,
    /// `--max-edges K`: per-task edge cap of the period graph builder
    /// (default 64; use a huge value for the exact uncapped graph).
    pub max_edges: usize,
    /// `--no-incremental`: drive simulations through the retained
    /// rescan-and-rebuild oracle instead of the incremental period
    /// engine (`--incremental`, the default). Revenue/count columns are
    /// bit-identical either way (timing and peak-memory columns reflect
    /// each engine's own cost); the toggle exists for A/B timing.
    pub incremental: bool,
}

impl CliArgs {
    /// Parses `std::env::args`, exiting with usage on error.
    pub fn parse(bin: &str) -> Self {
        let defaults = RunOptions::default();
        let mut args = CliArgs {
            panel: None,
            quick: false,
            parallel: false,
            seeds: 1,
            out_dir: PathBuf::from("results"),
            no_memory: false,
            max_edges: defaults.max_edges_per_task,
            incremental: defaults.incremental,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--panel" => args.panel = it.next(),
                "--quick" => args.quick = true,
                "--parallel" => args.parallel = true,
                "--no-memory" => args.no_memory = true,
                "--incremental" => args.incremental = true,
                "--no-incremental" => args.incremental = false,
                "--max-edges" => {
                    args.max_edges = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&k| k > 0)
                        .unwrap_or_else(|| usage(bin))
                }
                "--seeds" => {
                    args.seeds = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage(bin))
                }
                "--out" => args.out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage(bin))),
                "--help" | "-h" => usage(bin),
                other => {
                    eprintln!("unknown argument: {other}");
                    usage(bin)
                }
            }
        }
        args
    }

    /// The corresponding [`RunOptions`].
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            scale: if self.quick {
                Scale::Quick
            } else {
                Scale::Full
            },
            num_seeds: self.seeds,
            parallel: self.parallel,
            track_memory: !self.no_memory && !self.parallel,
            max_edges_per_task: self.max_edges,
            incremental: self.incremental,
        }
    }
}

fn usage(bin: &str) -> ! {
    eprintln!(
        "usage: {bin} [--panel KEY] [--quick] [--parallel] [--seeds N] \
         [--out DIR] [--no-memory] [--max-edges K] [--incremental|--no-incremental]\n\
         panels: w r mu-t mean-s | mu-v sigma-v t g | aw scale beijing1 beijing2 | alpha\n\
         --max-edges K       per-task edge cap of the period graph (default 64)\n\
         --no-incremental    use the retained rescan-and-rebuild period engine\n\
                             (bit-identical revenue/count columns; for A/B\n\
                             timing of the incremental cache)"
    );
    std::process::exit(2)
}

/// Shared main body: run the selected panels of one figure.
pub fn run_figure(figure: &str, args: &CliArgs) {
    let panels: Vec<PanelSpec> = match &args.panel {
        Some(name) => match panel_by_name(name) {
            Some(p) if p.figure == figure || figure == "all" => vec![p],
            Some(p) => {
                eprintln!("panel '{name}' belongs to {}, not {figure}", p.figure);
                std::process::exit(2)
            }
            None => {
                eprintln!("unknown panel '{name}'");
                std::process::exit(2)
            }
        },
        None => all_panels()
            .into_iter()
            .filter(|p| figure == "all" || p.figure == figure)
            .collect(),
    };
    let options = args.run_options();
    for spec in panels {
        eprintln!(
            "running {}/{} ({}, scale {:?}, seeds {})…",
            spec.figure, spec.panel, spec.paper_ref, options.scale, options.num_seeds
        );
        let start = std::time::Instant::now();
        let rows = run_panel(&spec, options);
        eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
        print_metric_tables(&rows);
        let path = args
            .out_dir
            .join(format!("{}_{}.jsonl", spec.figure, spec.panel));
        if let Err(e) = write_jsonl(&rows, &path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}
