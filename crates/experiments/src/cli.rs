//! Tiny shared CLI for the figure binaries (no external arg parser in
//! the offline dependency set).

use crate::panels::{all_panels, panel_by_name, PanelSpec, Scale};
use crate::report::{print_metric_tables, print_telemetry, write_jsonl};
use crate::runner::{run_panel, run_panel_journaled, JournalOptions, RunOptions};
use std::path::PathBuf;

/// Parsed command-line options for a figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Restrict to one panel (e.g. `--panel w`); `None` = all panels of
    /// the figure.
    pub panel: Option<String>,
    /// `--quick`: ~20× smaller datasets.
    pub quick: bool,
    /// `--parallel`: rayon over cells (disables memory tracking).
    pub parallel: bool,
    /// `--seeds N`: average over N ≥ 1 seeds (default 1). `--seeds 0`
    /// is rejected at parse time — it used to be accepted here and then
    /// silently clamped to 1 deep inside the runner.
    pub seeds: u64,
    /// `--out DIR`: JSONL output directory (default `results/`).
    pub out_dir: PathBuf,
    /// `--no-memory`: skip peak-heap tracking.
    pub no_memory: bool,
    /// `--max-edges K`: per-task edge cap of the period graph builder
    /// (default 64; use a huge value for the exact uncapped graph).
    pub max_edges: usize,
    /// `--no-incremental`: drive simulations through the retained
    /// rescan-and-rebuild oracle instead of the incremental period
    /// engine (`--incremental`, the default). Revenue/count columns are
    /// bit-identical either way (timing and peak-memory columns reflect
    /// each engine's own cost); the toggle exists for A/B timing.
    pub incremental: bool,
    /// `--shards N`: route every simulation through the grid-sharded
    /// online service (`maps-service`) with N ≥ 1 shards instead of the
    /// in-process batch loop. Revenue/count columns are bit-identical
    /// to the batch path at any N (the shard-count-invariance
    /// contract); `0` (the default) keeps the batch simulator.
    pub shards: usize,
    /// `--producers N`: stream service replays through the bounded
    /// multi-producer ingestion front-end with N ≥ 1 producer threads
    /// (requires `--shards`; rows stay bit-identical at any N — the
    /// interleaving-invariance contract); `0` (the default) keeps the
    /// synchronous serial push path.
    pub producers: usize,
    /// `--journal DIR`: attach a write-ahead event journal (plus epoch
    /// checkpoints) to every cell's service replay, one subdirectory of
    /// DIR per cell (requires `--shards`; rows stay bit-identical — the
    /// journal is write-path-only). `None` (the default) journals
    /// nothing.
    pub journal: Option<PathBuf>,
    /// `--recover`: resume cells whose journal already exists in the
    /// `--journal` directory from a previous — possibly crashed — run
    /// (latest checkpoint + journal-tail replay + remainder of the
    /// stream) instead of recomputing them. Requires `--journal`; rows
    /// stay bit-identical (recovery equals uninterrupted).
    pub recover: bool,
    /// `--telemetry`: print the deterministic event-time latency dump
    /// (task wait / queue depth / worker pool log2-histogram quantiles)
    /// after each panel's metric tables. The numbers are part of
    /// `Outcome::deterministic_bits`, so the dump is diffable across
    /// shard/thread/producer configurations.
    pub telemetry: bool,
}

/// Why [`CliArgs::try_parse`] refused an argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h`: print the usage text and exit — not a complaint,
    /// so no error line precedes it.
    HelpRequested,
    /// A real parse problem, with the message to print before the
    /// usage text.
    Invalid(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Invalid(message)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::HelpRequested => f.write_str("help requested"),
            CliError::Invalid(message) => f.write_str(message),
        }
    }
}

impl CliArgs {
    /// Parses `std::env::args`, exiting with the usage message on error.
    pub fn parse(bin: &str) -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(CliError::HelpRequested) => usage(bin),
            Err(CliError::Invalid(e)) => {
                eprintln!("{e}");
                usage(bin)
            }
        }
    }

    /// Parses an explicit argument list (testable core of
    /// [`CliArgs::parse`]). Flags that take a value error out when the
    /// value is missing or malformed instead of being silently ignored.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, CliError> {
        let defaults = RunOptions::default();
        let mut parsed = CliArgs {
            panel: None,
            quick: false,
            parallel: false,
            seeds: 1,
            out_dir: PathBuf::from("results"),
            no_memory: false,
            max_edges: defaults.max_edges_per_task,
            incremental: defaults.incremental,
            shards: defaults.shards,
            producers: defaults.producers,
            journal: None,
            recover: false,
            telemetry: false,
        };
        let mut it = args.into_iter();
        // A flag's value: present, non-flag-shaped, and parseable.
        fn value_of<T: std::str::FromStr>(flag: &str, next: Option<String>) -> Result<T, String> {
            let raw = next.ok_or_else(|| format!("{flag} requires a value"))?;
            if raw.starts_with("--") {
                return Err(format!("{flag} requires a value, got flag '{raw}'"));
            }
            raw.parse()
                .map_err(|_| format!("{flag}: invalid value '{raw}'"))
        }
        while let Some(a) = it.next() {
            match a.as_str() {
                "--panel" => parsed.panel = Some(value_of("--panel", it.next())?),
                "--quick" => parsed.quick = true,
                "--parallel" => parsed.parallel = true,
                "--no-memory" => parsed.no_memory = true,
                "--incremental" => parsed.incremental = true,
                "--no-incremental" => parsed.incremental = false,
                "--max-edges" => {
                    parsed.max_edges = value_of("--max-edges", it.next())?;
                    if parsed.max_edges == 0 {
                        return Err("--max-edges must be at least 1".to_string().into());
                    }
                }
                "--seeds" => {
                    parsed.seeds = value_of("--seeds", it.next())?;
                    if parsed.seeds == 0 {
                        return Err("--seeds must be at least 1 (0 would average over nothing)"
                            .to_string()
                            .into());
                    }
                }
                "--shards" => {
                    parsed.shards = value_of("--shards", it.next())?;
                    if parsed.shards == 0 {
                        return Err(
                            "--shards must be at least 1 (omit the flag for the batch loop)"
                                .to_string()
                                .into(),
                        );
                    }
                }
                "--producers" => {
                    parsed.producers = value_of("--producers", it.next())?;
                    if parsed.producers == 0 {
                        return Err(
                            "--producers must be at least 1 (omit the flag for serial push)"
                                .to_string()
                                .into(),
                        );
                    }
                }
                "--journal" => {
                    parsed.journal =
                        Some(PathBuf::from(value_of::<String>("--journal", it.next())?))
                }
                "--recover" => parsed.recover = true,
                "--telemetry" => parsed.telemetry = true,
                "--out" => parsed.out_dir = PathBuf::from(value_of::<String>("--out", it.next())?),
                "--help" | "-h" => return Err(CliError::HelpRequested),
                other => return Err(format!("unknown argument: {other}").into()),
            }
        }
        if parsed.producers > 0 && parsed.shards == 0 {
            return Err(
                "--producers requires --shards N (the ingestion front-end feeds the \
                 sharded service)"
                    .to_string()
                    .into(),
            );
        }
        if parsed.journal.is_some() && parsed.shards == 0 {
            return Err(
                "--journal requires --shards N (the write-ahead journal is a service-path \
                 feature)"
                    .to_string()
                    .into(),
            );
        }
        if parsed.journal.is_some() && parsed.producers > 0 {
            return Err(
                "--journal journals the serial service push path; drop --producers"
                    .to_string()
                    .into(),
            );
        }
        if parsed.recover && parsed.journal.is_none() {
            return Err(
                "--recover requires --journal DIR (there is no journal to recover from)"
                    .to_string()
                    .into(),
            );
        }
        Ok(parsed)
    }

    /// The corresponding [`JournalOptions`] when `--journal` was given.
    pub fn journal_options(&self) -> Option<JournalOptions> {
        self.journal.as_ref().map(|dir| JournalOptions {
            dir: dir.clone(),
            recover: self.recover,
            checkpoint_every: 4,
        })
    }

    /// The corresponding [`RunOptions`].
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            scale: if self.quick {
                Scale::Quick
            } else {
                Scale::Full
            },
            num_seeds: self.seeds,
            parallel: self.parallel,
            track_memory: !self.no_memory && !self.parallel,
            max_edges_per_task: self.max_edges,
            incremental: self.incremental,
            shards: self.shards,
            producers: self.producers,
        }
    }
}

fn usage(bin: &str) -> ! {
    eprintln!(
        "usage: {bin} [--panel KEY] [--quick] [--parallel] [--seeds N] \
         [--out DIR] [--no-memory] [--max-edges K] [--shards N] \
         [--producers N] [--journal DIR [--recover]] [--telemetry] \
         [--incremental|--no-incremental]\n\
         panels: w r mu-t mean-s | mu-v sigma-v t g | aw scale beijing1 beijing2 | alpha\n\
         --seeds N           average over N >= 1 seeds (default 1)\n\
         --max-edges K       per-task edge cap of the period graph (default 64)\n\
         --shards N          drive runs through the sharded online service\n\
                             (N >= 1 shards; rows bit-identical to the batch\n\
                             loop at any N — omit for the in-process loop)\n\
         --producers N       stream service replays through the bounded\n\
                             multi-producer ingestion front-end (N >= 1\n\
                             producer threads, requires --shards; rows\n\
                             bit-identical at any N — omit for serial push)\n\
         --journal DIR       attach a write-ahead event journal + epoch\n\
                             checkpoints to every cell's service replay, one\n\
                             subdirectory of DIR per cell (requires --shards;\n\
                             rows bit-identical — the journal is write-path-only)\n\
         --recover           resume cells whose journal already exists in the\n\
                             --journal DIR from a previous (possibly crashed)\n\
                             run instead of recomputing them; rows bit-identical\n\
                             (recovery equals uninterrupted)\n\
         --telemetry         print the deterministic event-time latency dump\n\
                             (task wait / queue depth / worker pool quantiles)\n\
                             after each panel — diffable across shard/thread/\n\
                             producer configurations\n\
         --no-incremental    use the retained rescan-and-rebuild period engine\n\
                             (bit-identical revenue/count columns; for A/B\n\
                             timing of the incremental cache)"
    );
    std::process::exit(2)
}

/// Shared main body: run the selected panels of one figure.
pub fn run_figure(figure: &str, args: &CliArgs) {
    let panels: Vec<PanelSpec> = match &args.panel {
        Some(name) => match panel_by_name(name) {
            Some(p) if p.figure == figure || figure == "all" => vec![p],
            Some(p) => {
                eprintln!("panel '{name}' belongs to {}, not {figure}", p.figure);
                std::process::exit(2)
            }
            None => {
                eprintln!("unknown panel '{name}'");
                std::process::exit(2)
            }
        },
        None => all_panels()
            .into_iter()
            .filter(|p| figure == "all" || p.figure == figure)
            .collect(),
    };
    let options = args.run_options();
    for spec in panels {
        eprintln!(
            "running {}/{} ({}, scale {:?}, seeds {})…",
            spec.figure, spec.panel, spec.paper_ref, options.scale, options.num_seeds
        );
        // lint-allow(det-wallclock): progress reporting for the operator, never enters result rows
        let start = std::time::Instant::now();
        let rows = match args.journal_options() {
            Some(journal) => run_panel_journaled(&spec, options, &journal),
            None => run_panel(&spec, options),
        };
        eprintln!("  done in {:.1}s", start.elapsed().as_secs_f64());
        print_metric_tables(&rows);
        if args.telemetry {
            print_telemetry(&rows);
        }
        let path = args
            .out_dir
            .join(format!("{}_{}.jsonl", spec.figure, spec.panel));
        if let Err(e) = write_jsonl(&rows, &path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, String> {
        CliArgs::try_parse(args.iter().map(|s| s.to_string())).map_err(|e| match e {
            CliError::HelpRequested => "HELP".to_string(),
            CliError::Invalid(message) => message,
        })
    }

    #[test]
    fn defaults_parse_empty() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.seeds, 1);
        assert_eq!(args.shards, 0, "batch loop by default");
        assert!(args.incremental);
        assert!(args.panel.is_none());
    }

    #[test]
    fn full_flag_set_round_trips() {
        let args = parse(&[
            "--panel",
            "w",
            "--quick",
            "--parallel",
            "--seeds",
            "3",
            "--out",
            "tmp",
            "--no-memory",
            "--max-edges",
            "16",
            "--shards",
            "4",
            "--producers",
            "2",
            "--no-incremental",
            "--telemetry",
        ])
        .unwrap();
        assert_eq!(args.panel.as_deref(), Some("w"));
        assert!(args.quick && args.parallel && args.no_memory);
        assert_eq!(args.seeds, 3);
        assert_eq!(args.max_edges, 16);
        assert_eq!(args.shards, 4);
        assert_eq!(args.producers, 2);
        assert!(!args.incremental);
        assert!(args.telemetry);
        assert!(!parse(&[]).unwrap().telemetry, "dump is opt-in");
        let options = args.run_options();
        assert_eq!(options.num_seeds, 3);
        assert_eq!(options.shards, 4);
        assert_eq!(options.producers, 2);
        assert!(!options.track_memory, "parallel disables memory tracking");
    }

    /// The satellite regression: `--seeds 0` used to parse fine and get
    /// silently clamped to 1 deep inside `run_panel`.
    #[test]
    fn zero_seeds_rejected_at_parse_time() {
        let err = parse(&["--seeds", "0"]).unwrap_err();
        assert!(err.contains("--seeds"), "{err}");
    }

    #[test]
    fn zero_shards_and_zero_max_edges_rejected() {
        assert!(parse(&["--shards", "0"]).unwrap_err().contains("--shards"));
        assert!(parse(&["--max-edges", "0"])
            .unwrap_err()
            .contains("--max-edges"));
    }

    /// `--producers` is the ingestion front-end of the sharded service:
    /// 0 producers is meaningless, and without `--shards` there is no
    /// service to feed — both are parse errors, not silent fallbacks.
    #[test]
    fn producers_flag_is_validated() {
        assert!(parse(&["--producers", "0", "--shards", "2"])
            .unwrap_err()
            .contains("--producers"));
        assert!(parse(&["--producers", "2"])
            .unwrap_err()
            .contains("requires --shards"));
        let args = parse(&["--producers", "2", "--shards", "3"]).unwrap();
        assert_eq!((args.producers, args.shards), (2, 3));
        assert_eq!(parse(&[]).unwrap().producers, 0, "serial push by default");
    }

    /// `--journal` is the durability layer of the sharded service:
    /// without `--shards` there is no service replay to journal, the
    /// multi-producer front-end path is not journaled, and `--recover`
    /// without a journal directory has nothing to recover from — all
    /// parse errors, not silent fallbacks.
    #[test]
    fn journal_flags_are_validated() {
        assert!(parse(&["--journal", "wal"])
            .unwrap_err()
            .contains("requires --shards"));
        assert!(
            parse(&["--journal", "wal", "--shards", "2", "--producers", "2"])
                .unwrap_err()
                .contains("--producers")
        );
        assert!(parse(&["--recover"])
            .unwrap_err()
            .contains("requires --journal"));
        let args = parse(&["--journal", "wal", "--shards", "2", "--recover"]).unwrap();
        assert_eq!(args.journal.as_deref(), Some(std::path::Path::new("wal")));
        assert!(args.recover);
        let journal = args.journal_options().expect("journal options");
        assert_eq!(journal.dir, PathBuf::from("wal"));
        assert!(journal.recover);
        let plain = parse(&[]).unwrap();
        assert!(plain.journal.is_none() && !plain.recover);
        assert!(plain.journal_options().is_none());
    }

    /// The satellite regression: value-taking flags at the end of the
    /// line (or followed by another flag) used to be silently ignored —
    /// `--panel` most prominently.
    #[test]
    fn missing_values_are_errors_not_ignored() {
        for flags in [
            &["--panel"][..],
            &["--seeds"],
            &["--max-edges"],
            &["--shards"],
            &["--out"],
            &["--producers"],
            &["--journal"],
            &["--panel", "--quick"],
            &["--seeds", "--parallel"],
        ] {
            let err = parse(flags).unwrap_err();
            assert!(err.contains("requires a value"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn malformed_numbers_are_errors() {
        assert!(parse(&["--seeds", "three"])
            .unwrap_err()
            .contains("invalid"));
        assert!(parse(&["--max-edges", "-1"])
            .unwrap_err()
            .contains("invalid"));
    }

    #[test]
    fn unknown_arguments_are_errors() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown"));
    }

    /// `--help` is a usage request, not a parse complaint: it must not
    /// surface an error message of its own.
    #[test]
    fn help_is_distinguished_from_errors() {
        for flags in [&["--help"][..], &["-h"], &["--quick", "--help"]] {
            assert_eq!(
                CliArgs::try_parse(flags.iter().map(|s| s.to_string())),
                Err(CliError::HelpRequested),
                "{flags:?}"
            );
        }
    }
}
