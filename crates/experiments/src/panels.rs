//! Panel catalogue: one [`PanelSpec`] per swept x-axis of the paper's
//! evaluation (Sec. 5.2). Default values are Table 3's bold entries; the
//! exact sweep values match the paper's x-axes.

use maps_simulator::{BeijingConfig, DemandKind, GroundTruth, SyntheticConfig};
use std::sync::Arc;

/// Experiment scale: `Full` reproduces the paper's sizes; `Quick` shrinks
/// every dataset ~20× for smoke runs and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized datasets.
    Full,
    /// ~20× smaller datasets, same shapes.
    Quick,
}

impl Scale {
    fn shrink(self, n: usize) -> usize {
        match self {
            Scale::Full => n,
            Scale::Quick => (n / 20).max(50),
        }
    }

    fn shrink_t(self, t: usize) -> usize {
        match self {
            Scale::Full => t,
            Scale::Quick => (t / 8).max(25),
        }
    }

    fn beijing_scale(self) -> f64 {
        match self {
            Scale::Full => 1.0,
            Scale::Quick => 0.02,
        }
    }
}

/// One figure panel: a swept parameter and a world builder.
pub struct PanelSpec {
    /// Figure id, e.g. `"fig6"`.
    pub figure: &'static str,
    /// Panel key used on the command line, e.g. `"w"`.
    pub panel: &'static str,
    /// Human-readable x-axis name, e.g. `"|W|"`.
    pub x_name: &'static str,
    /// Paper reference for the three metric sub-panels.
    pub paper_ref: &'static str,
    /// The sweep values.
    pub xs: Vec<f64>,
    /// Builds the ground-truth world for a sweep value and seed.
    #[allow(clippy::type_complexity)]
    pub build: Arc<dyn Fn(f64, Scale, u64) -> GroundTruth + Send + Sync>,
}

impl std::fmt::Debug for PanelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PanelSpec")
            .field("figure", &self.figure)
            .field("panel", &self.panel)
            .field("x_name", &self.x_name)
            .field("xs", &self.xs)
            .finish()
    }
}

fn synthetic_panel(
    figure: &'static str,
    panel: &'static str,
    x_name: &'static str,
    paper_ref: &'static str,
    xs: Vec<f64>,
    apply: impl Fn(&mut SyntheticConfig, f64, Scale) + Send + Sync + 'static,
) -> PanelSpec {
    PanelSpec {
        figure,
        panel,
        x_name,
        paper_ref,
        xs,
        build: Arc::new(move |x, scale, seed| {
            let mut cfg = SyntheticConfig::paper_default();
            cfg.num_workers = scale.shrink(cfg.num_workers);
            cfg.num_tasks = scale.shrink(cfg.num_tasks);
            cfg.periods = scale.shrink_t(cfg.periods);
            apply(&mut cfg, x, scale);
            cfg.build(seed)
        }),
    }
}

/// Fig. 6 column 1 (a,e,i): varying `|W|`.
pub fn fig6_w() -> PanelSpec {
    synthetic_panel(
        "fig6",
        "w",
        "|W|",
        "Fig. 6 (a,e,i)",
        vec![1250.0, 2500.0, 5000.0, 7500.0, 10000.0],
        |cfg, x, scale| cfg.num_workers = scale.shrink(x as usize),
    )
}

/// Fig. 6 column 2 (b,f,j): varying `|R|`.
pub fn fig6_r() -> PanelSpec {
    synthetic_panel(
        "fig6",
        "r",
        "|R|",
        "Fig. 6 (b,f,j)",
        vec![5000.0, 10000.0, 20000.0, 30000.0, 40000.0],
        |cfg, x, scale| cfg.num_tasks = scale.shrink(x as usize),
    )
}

/// Fig. 6 column 3 (c,g,k): varying the temporal mean μ.
pub fn fig6_mu_t() -> PanelSpec {
    synthetic_panel(
        "fig6",
        "mu-t",
        "temporal mu",
        "Fig. 6 (c,g,k)",
        vec![0.1, 0.3, 0.5, 0.7, 0.9],
        |cfg, x, _| cfg.temporal_mu = x,
    )
}

/// Fig. 6 column 4 (d,h,l): varying the spatial mean of task origins.
pub fn fig6_mean_s() -> PanelSpec {
    synthetic_panel(
        "fig6",
        "mean-s",
        "spatial mean",
        "Fig. 6 (d,h,l)",
        vec![0.1, 0.3, 0.5, 0.7, 0.9],
        |cfg, x, _| cfg.task_spatial_mean = x,
    )
}

/// Fig. 7 column 1 (a,e,i): varying the demand mean μ.
pub fn fig7_mu_v() -> PanelSpec {
    synthetic_panel(
        "fig7",
        "mu-v",
        "demand mu",
        "Fig. 7 (a,e,i)",
        vec![1.0, 1.5, 2.0, 2.5, 3.0],
        |cfg, x, _| cfg.demand_mu = x,
    )
}

/// Fig. 7 column 2 (b,f,j): varying the demand σ.
pub fn fig7_sigma_v() -> PanelSpec {
    synthetic_panel(
        "fig7",
        "sigma-v",
        "demand sigma",
        "Fig. 7 (b,f,j)",
        vec![0.5, 1.0, 1.5, 2.0, 2.5],
        |cfg, x, _| cfg.demand_sigma = x,
    )
}

/// Fig. 7 column 3 (c,g,k): varying the number of periods `T`.
pub fn fig7_t() -> PanelSpec {
    PanelSpec {
        figure: "fig7",
        panel: "t",
        x_name: "T",
        paper_ref: "Fig. 7 (c,g,k)",
        xs: vec![200.0, 400.0, 600.0, 800.0, 1000.0],
        build: Arc::new(|x, scale, seed| {
            let mut cfg = SyntheticConfig::paper_default();
            cfg.num_workers = scale.shrink(cfg.num_workers);
            cfg.num_tasks = scale.shrink(cfg.num_tasks);
            cfg.periods = match scale {
                Scale::Full => x as usize,
                Scale::Quick => (x as usize / 8).max(25),
            };
            cfg.build(seed)
        }),
    }
}

/// Fig. 7 column 4 (d,h,l): varying the number of grids `G` (side²).
pub fn fig7_g() -> PanelSpec {
    synthetic_panel(
        "fig7",
        "g",
        "G",
        "Fig. 7 (d,h,l)",
        vec![25.0, 100.0, 225.0, 400.0, 625.0],
        |cfg, x, _| cfg.grid_side = x.sqrt().round() as u32,
    )
}

/// Fig. 8 column 1 (a,e,i): varying the worker radius `a_w`.
pub fn fig8_aw() -> PanelSpec {
    synthetic_panel(
        "fig8",
        "aw",
        "a_w",
        "Fig. 8 (a,e,i)",
        vec![5.0, 10.0, 15.0, 20.0, 25.0],
        |cfg, x, _| cfg.worker_radius = x,
    )
}

/// Fig. 8 column 2 (b,f,j): scalability, `|W| = |R|` up to 500k.
pub fn fig8_scale() -> PanelSpec {
    PanelSpec {
        figure: "fig8",
        panel: "scale",
        x_name: "|W|=|R|",
        paper_ref: "Fig. 8 (b,f,j)",
        xs: vec![100_000.0, 200_000.0, 300_000.0, 400_000.0, 500_000.0],
        build: Arc::new(|x, scale, seed| {
            let n = match scale {
                Scale::Full => x as usize,
                Scale::Quick => (x as usize) / 100,
            };
            let mut cfg = SyntheticConfig::paper_default();
            cfg.num_workers = n;
            cfg.num_tasks = n;
            cfg.build(seed)
        }),
    }
}

/// Fig. 8 columns 3–4: Beijing-like datasets #1/#2, varying `δ_w`.
pub fn fig8_beijing(window_rush: bool) -> PanelSpec {
    PanelSpec {
        figure: "fig8",
        panel: if window_rush { "beijing1" } else { "beijing2" },
        x_name: "delta_w",
        paper_ref: if window_rush {
            "Fig. 8 (c,g,k)"
        } else {
            "Fig. 8 (d,h,l)"
        },
        xs: vec![5.0, 10.0, 15.0, 20.0, 25.0],
        build: Arc::new(move |x, scale, seed| {
            let cfg = if window_rush {
                BeijingConfig::rush_hour(x as u32)
            } else {
                BeijingConfig::night(x as u32)
            };
            cfg.with_scale(scale.beijing_scale()).build(seed)
        }),
    }
}

/// Fig. 10 (Appendix D): exponential demand, varying the rate α.
pub fn fig10_alpha() -> PanelSpec {
    synthetic_panel(
        "fig10",
        "alpha",
        "exp alpha",
        "Fig. 10 (a,b,c)",
        vec![0.5, 0.75, 1.0, 1.25, 1.5],
        |cfg, x, _| cfg.demand_kind = DemandKind::Exponential { alpha: x },
    )
}

/// All panels in paper order.
pub fn all_panels() -> Vec<PanelSpec> {
    vec![
        fig6_w(),
        fig6_r(),
        fig6_mu_t(),
        fig6_mean_s(),
        fig7_mu_v(),
        fig7_sigma_v(),
        fig7_t(),
        fig7_g(),
        fig8_aw(),
        fig8_scale(),
        fig8_beijing(true),
        fig8_beijing(false),
        fig10_alpha(),
    ]
}

/// Looks a panel up by its command-line key.
pub fn panel_by_name(name: &str) -> Option<PanelSpec> {
    all_panels().into_iter().find(|p| p.panel == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete() {
        let panels = all_panels();
        assert_eq!(panels.len(), 13);
        let keys: Vec<_> = panels.iter().map(|p| p.panel).collect();
        for k in [
            "w", "r", "mu-t", "mean-s", "mu-v", "sigma-v", "t", "g", "aw", "scale", "beijing1",
            "beijing2", "alpha",
        ] {
            assert!(keys.contains(&k), "missing panel {k}");
        }
        for p in &panels {
            assert_eq!(p.xs.len(), 5, "{}: paper sweeps 5 values", p.panel);
        }
    }

    #[test]
    fn lookup_works() {
        assert!(panel_by_name("aw").is_some());
        assert!(panel_by_name("nope").is_none());
    }

    #[test]
    fn quick_worlds_build_and_validate() {
        for p in all_panels() {
            let world = (p.build)(p.xs[0], Scale::Quick, 1);
            world
                .validate()
                .unwrap_or_else(|e| panic!("{}/{}: {e}", p.figure, p.panel));
            assert!(world.total_tasks() > 0, "{}", p.panel);
        }
    }

    #[test]
    fn fig6_w_sweep_changes_worker_count() {
        let p = fig6_w();
        let small = (p.build)(1250.0, Scale::Quick, 1);
        let large = (p.build)(10000.0, Scale::Quick, 1);
        assert!(large.total_workers() > small.total_workers());
    }

    #[test]
    fn fig7_g_sweep_changes_grid() {
        let p = fig7_g();
        let fine = (p.build)(625.0, Scale::Quick, 1);
        assert_eq!(fine.grid.num_cells(), 625);
        let coarse = (p.build)(25.0, Scale::Quick, 1);
        assert_eq!(coarse.grid.num_cells(), 25);
    }
}
