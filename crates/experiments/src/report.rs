//! Result rows, paper-style tables and JSON-lines output.

use maps_telemetry::{LatencyTelemetry, Log2Histogram};
use serde::{Deserialize, Serialize, Value};
use std::io::Write;
use std::path::Path;

/// Deterministic event-time latency summary of one experiment cell:
/// count and log2-bucket p50/p99/p999 upper bounds for each of the
/// three histograms an [`maps_simulator::Outcome`] carries. These are
/// derived from `Outcome::latency` (merged over seeds), so — unlike
/// the wall-clock columns — two runs of the same cell always export
/// the same numbers at any shard/thread/producer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// `(count, p50, p99, p999)` of the admission→priced task wait.
    pub task_wait: (u64, u64, u64, u64),
    /// `(count, p50, p99, p999)` of the per-tick pricing queue depth.
    pub queue_depth: (u64, u64, u64, u64),
    /// `(count, p50, p99, p999)` of the live worker pool per tick.
    pub worker_pool: (u64, u64, u64, u64),
}

fn quantiles(h: &Log2Histogram) -> (u64, u64, u64, u64) {
    (h.count(), h.p50(), h.p99(), h.p999())
}

impl From<&LatencyTelemetry> for LatencySummary {
    fn from(t: &LatencyTelemetry) -> Self {
        LatencySummary {
            task_wait: quantiles(&t.task_wait),
            queue_depth: quantiles(&t.queue_depth),
            worker_pool: quantiles(&t.worker_pool),
        }
    }
}

fn summary_object(q: (u64, u64, u64, u64)) -> Value {
    serde::object([
        ("count", q.0.to_value()),
        ("p50", q.1.to_value()),
        ("p99", q.2.to_value()),
        ("p999", q.3.to_value()),
    ])
}

fn summary_field(value: &Value, name: &str) -> Result<(u64, u64, u64, u64), serde::DeError> {
    let inner: Value = serde::field(value, name)?;
    Ok((
        serde::field(&inner, "count")?,
        serde::field(&inner, "p50")?,
        serde::field(&inner, "p99")?,
        serde::field(&inner, "p999")?,
    ))
}

impl Serialize for LatencySummary {
    fn to_value(&self) -> Value {
        serde::object([
            ("task_wait", summary_object(self.task_wait)),
            ("queue_depth", summary_object(self.queue_depth)),
            ("worker_pool", summary_object(self.worker_pool)),
        ])
    }
}

impl Deserialize for LatencySummary {
    fn from_value(value: &Value) -> Result<Self, serde::DeError> {
        Ok(LatencySummary {
            task_wait: summary_field(value, "task_wait")?,
            queue_depth: summary_field(value, "queue_depth")?,
            worker_pool: summary_field(value, "worker_pool")?,
        })
    }
}

/// One aggregated experiment cell (a point in one of the paper's plots).
///
/// `Serialize`/`Deserialize` are implemented by hand below: the
/// offline vendored `serde` has no derive macro.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Figure id (`fig6` … `fig10`).
    pub figure: String,
    /// Panel key (`w`, `r`, …).
    pub panel: String,
    /// Paper sub-figure reference.
    pub paper_ref: String,
    /// x-axis name.
    pub x_name: String,
    /// Sweep value.
    pub x: f64,
    /// Strategy display name.
    pub strategy: String,
    /// Total revenue (Revenue panels).
    pub revenue: f64,
    /// Strategy pricing time over all periods (Time panels).
    pub pricing_secs: f64,
    /// Market-clearing time (same for all strategies; reported apart).
    pub clearing_secs: f64,
    /// One-off calibration time.
    pub calibration_secs: f64,
    /// Peak heap in MiB (Memory panels), if tracked.
    pub memory_mib: Option<f64>,
    /// Average issued tasks.
    pub issued: f64,
    /// Average accepted tasks.
    pub accepted: f64,
    /// Average matched tasks.
    pub matched: f64,
    /// Event-time latency summary (merged over the cell's seeds).
    pub telemetry: Option<LatencySummary>,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        serde::object([
            ("figure", self.figure.to_value()),
            ("panel", self.panel.to_value()),
            ("paper_ref", self.paper_ref.to_value()),
            ("x_name", self.x_name.to_value()),
            ("x", self.x.to_value()),
            ("strategy", self.strategy.to_value()),
            ("revenue", self.revenue.to_value()),
            ("pricing_secs", self.pricing_secs.to_value()),
            ("clearing_secs", self.clearing_secs.to_value()),
            ("calibration_secs", self.calibration_secs.to_value()),
            ("memory_mib", self.memory_mib.to_value()),
            ("issued", self.issued.to_value()),
            ("accepted", self.accepted.to_value()),
            ("matched", self.matched.to_value()),
            ("telemetry", self.telemetry.to_value()),
        ])
    }
}

impl Deserialize for Row {
    fn from_value(value: &Value) -> Result<Self, serde::DeError> {
        Ok(Row {
            figure: serde::field(value, "figure")?,
            panel: serde::field(value, "panel")?,
            paper_ref: serde::field(value, "paper_ref")?,
            x_name: serde::field(value, "x_name")?,
            x: serde::field(value, "x")?,
            strategy: serde::field(value, "strategy")?,
            revenue: serde::field(value, "revenue")?,
            pricing_secs: serde::field(value, "pricing_secs")?,
            clearing_secs: serde::field(value, "clearing_secs")?,
            calibration_secs: serde::field(value, "calibration_secs")?,
            memory_mib: serde::field(value, "memory_mib")?,
            issued: serde::field(value, "issued")?,
            accepted: serde::field(value, "accepted")?,
            matched: serde::field(value, "matched")?,
            telemetry: serde::field(value, "telemetry")?,
        })
    }
}

/// The strategy ordering used by the paper's legends.
pub const STRATEGY_ORDER: [&str; 5] = ["MAPS", "BaseP", "SDR", "SDE", "CappedUCB"];

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100_000.0 {
        format!("{:.3e}", v)
    } else if v.abs() >= 100.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.4}", v)
    }
}

/// Renders one metric (revenue / time / memory) of a panel as a table of
/// strategies × sweep values, mirroring a paper sub-figure.
pub fn metric_table(rows: &[Row], metric: &str) -> String {
    let mut xs: Vec<f64> = rows.iter().map(|r| r.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let x_name = rows.first().map(|r| r.x_name.clone()).unwrap_or_default();
    let mut out = String::new();
    out.push_str(&format!("{:<10}", format!("{metric}\\{x_name}")));
    for &x in &xs {
        out.push_str(&format!("{:>14}", fmt_value(x)));
    }
    out.push('\n');
    for strategy in STRATEGY_ORDER {
        out.push_str(&format!("{strategy:<10}"));
        for &x in &xs {
            let cell = rows
                .iter()
                .find(|r| r.strategy == strategy && r.x == x)
                .map(|r| match metric {
                    "revenue" => fmt_value(r.revenue),
                    "time" => fmt_value(r.pricing_secs),
                    "memory" => r
                        .memory_mib
                        .map(fmt_value)
                        .unwrap_or_else(|| "-".to_string()),
                    other => panic!("unknown metric {other}"),
                })
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!("{cell:>14}"));
        }
        out.push('\n');
    }
    out
}

/// Prints the three paper metrics (revenue, time, memory) for a panel.
pub fn print_metric_tables(rows: &[Row]) {
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let head = &rows[0];
    println!(
        "== {} / {} — {} (x = {}) ==",
        head.figure, head.panel, head.paper_ref, head.x_name
    );
    for metric in ["revenue", "time", "memory"] {
        println!("{}", metric_table(rows, metric));
    }
}

/// Prints the `--telemetry` dump for a panel: one line per row with the
/// event-time latency quantiles. Everything here is deterministic (the
/// histograms ride in `Outcome::deterministic_bits`), so this output is
/// diffable across shard/thread/producer configurations.
pub fn print_telemetry(rows: &[Row]) {
    println!("-- event-time latency telemetry (deterministic) --");
    println!(
        "{:<10} {:>10} {:>28} {:>28} {:>28}",
        "strategy",
        "x",
        "task_wait p50/p99/p999",
        "queue_depth p50/p99/p999",
        "worker_pool p50/p99/p999"
    );
    for row in rows {
        let Some(t) = &row.telemetry else {
            println!(
                "{:<10} {:>10} (no telemetry recorded)",
                row.strategy,
                fmt_value(row.x)
            );
            continue;
        };
        let fmt = |q: (u64, u64, u64, u64)| format!("{}/{}/{} (n={})", q.1, q.2, q.3, q.0);
        println!(
            "{:<10} {:>10} {:>28} {:>28} {:>28}",
            row.strategy,
            fmt_value(row.x),
            fmt(t.task_wait),
            fmt(t.queue_depth),
            fmt(t.worker_pool),
        );
    }
}

/// Appends rows as JSON lines to `path` (creates parent dirs).
pub fn write_jsonl(rows: &[Row], path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::io::BufWriter::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?,
    );
    for row in rows {
        serde_json::to_writer(&mut file, row)?;
        file.write_all(b"\n")?;
    }
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(strategy: &str, x: f64, revenue: f64) -> Row {
        Row {
            figure: "fig6".into(),
            panel: "w".into(),
            paper_ref: "Fig. 6 (a,e,i)".into(),
            x_name: "|W|".into(),
            x,
            strategy: strategy.into(),
            revenue,
            pricing_secs: 0.1,
            clearing_secs: 0.05,
            calibration_secs: 0.2,
            memory_mib: Some(5.0),
            issued: 100.0,
            accepted: 70.0,
            matched: 50.0,
            telemetry: Some(LatencySummary {
                task_wait: (100, 63, 127, 127),
                queue_depth: (10, 15, 15, 15),
                worker_pool: (10, 255, 255, 255),
            }),
        }
    }

    #[test]
    fn table_contains_all_strategies_and_values() {
        let rows = vec![row("MAPS", 1250.0, 123.0), row("BaseP", 1250.0, 456789.0)];
        let t = metric_table(&rows, "revenue");
        assert!(t.contains("MAPS"));
        assert!(t.contains("CappedUCB")); // missing rows render as '-'
        assert!(t.contains("123.0"));
        assert!(t.contains("4.568e5"));
        assert!(t.contains('-'));
    }

    #[test]
    fn memory_metric_handles_none() {
        let mut r = row("MAPS", 1.0, 1.0);
        r.memory_mib = None;
        let t = metric_table(&[r], "memory");
        assert!(t.lines().any(|l| l.starts_with("MAPS") && l.contains('-')));
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_panics() {
        let _ = metric_table(&[row("MAPS", 1.0, 1.0)], "latency");
    }

    #[test]
    fn jsonl_roundtrip() {
        let dir = std::env::temp_dir().join("maps_experiments_test");
        let path = dir.join("rows.jsonl");
        let _ = std::fs::remove_file(&path);
        let rows = vec![row("MAPS", 1250.0, 1.5), row("SDR", 2500.0, 2.5)];
        write_jsonl(&rows, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<Row> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, rows);
        let _ = std::fs::remove_file(&path);
    }
}
