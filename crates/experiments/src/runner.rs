//! Sweep execution: runs every (x, strategy) cell of a panel, optionally
//! in parallel, and aggregates seeds into [`Row`]s.
//!
//! ## Determinism contract (PR 2)
//!
//! Parallel mode fans out over the full `(cell × seed)` job grid — not
//! just cells — so `num_seeds`-fold averaging parallelizes too. Every
//! job is seeded by its own `(x, strategy, seed)` coordinates (never by
//! anything schedule-dependent), jobs are collected in job order, and
//! each cell's seeds are aggregated sequentially in seed order. Rows are
//! therefore **bit-identical** to the serial path (modulo the serial-only
//! memory/timing columns) at any rayon thread count — enforced by
//! `seed_parallel_rows_bitwise_deterministic` below.

use crate::panels::{PanelSpec, Scale};
use crate::report::Row;
use maps_core::StrategyKind;
use maps_simulator::alloc::TrackingAllocator;
use maps_simulator::{Outcome, SimOptions, Simulation};
use rayon::prelude::*;

/// Options controlling a panel run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Dataset scale.
    pub scale: Scale,
    /// Seeds to average over (the paper reports single runs; averaging
    /// over ≥1 seeds reduces Monte-Carlo noise in the tables).
    pub num_seeds: u64,
    /// Run cells in parallel with rayon. Wall-clock timings and peak-
    /// memory figures are only meaningful in serial mode; parallel mode
    /// is for fast revenue-shape iteration.
    pub parallel: bool,
    /// Measure peak heap via the tracking allocator (requires the binary
    /// to install [`TrackingAllocator`] as the global allocator, and
    /// implies serial execution).
    pub track_memory: bool,
    /// Per-task edge cap of the period graph builder, forwarded to
    /// [`SimOptions::max_edges_per_task`].
    pub max_edges_per_task: usize,
    /// Drive simulations through the incremental period engine,
    /// forwarded to [`SimOptions::incremental`]. Either value produces
    /// bit-identical revenue/count columns (the wall-clock and
    /// peak-memory columns reflect each engine's own cost); `false`
    /// selects the retained rescan-and-rebuild oracle for A/B timing.
    pub incremental: bool,
    /// With `shards ≥ 1`, replay every run through the grid-sharded
    /// online service (`maps-service`) with that many shards instead of
    /// the in-process batch loop; `0` (default) keeps the batch
    /// simulator. Schedule-independent row columns are bit-identical
    /// either way and at any shard count — the service's
    /// shard-count-invariance contract, enforced by
    /// `sharded_service_rows_match_batch_rows` below.
    pub shards: usize,
    /// With `producers ≥ 1`, stream every service replay through the
    /// bounded multi-producer ingestion front-end
    /// (`maps_service::replay_ingested`) with that many producer
    /// threads; `0` (default) uses the synchronous serial `push` path.
    /// Only meaningful together with the service path: when
    /// `producers ≥ 1` and `shards` is 0, a single-shard service is
    /// used. Row columns are bit-identical either way and at any
    /// producer count — the ingestion interleaving-invariance contract,
    /// enforced by `ingested_rows_match_batch_rows` below.
    pub producers: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        let sim = SimOptions::default();
        Self {
            scale: Scale::Full,
            num_seeds: 1,
            parallel: false,
            track_memory: true,
            max_edges_per_task: sim.max_edges_per_task,
            incremental: sim.incremental,
            shards: 0,
            producers: 0,
        }
    }
}

impl RunOptions {
    /// The per-simulation options this panel run induces.
    fn sim_options(&self) -> SimOptions {
        SimOptions {
            max_edges_per_task: self.max_edges_per_task,
            incremental: self.incremental,
            ..SimOptions::default()
        }
    }
}

/// Durability options for [`run_panel_journaled`]: every cell's service
/// replay writes a write-ahead journal (and epoch checkpoints) into its
/// own subdirectory of `dir`, and `recover` resumes cells whose journal
/// already exists from a previous — possibly crashed — run instead of
/// recomputing them from scratch.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// Root directory; each `(panel, x, strategy, seed)` cell journals
    /// into its own deterministic subdirectory.
    pub dir: std::path::PathBuf,
    /// Recover cells with an existing journal (latest checkpoint +
    /// journal-tail replay + remainder of the stream) instead of
    /// replaying them from scratch. By the recovery-equals-uninterrupted
    /// contract the rows are bit-identical either way.
    pub recover: bool,
    /// Checkpoint cadence in epochs, forwarded to
    /// [`maps_service::JournalConfig`].
    pub checkpoint_every: u32,
}

impl JournalOptions {
    /// The journal directory of one cell.
    fn cell_config(
        &self,
        spec: &PanelSpec,
        x: f64,
        kind: StrategyKind,
        seed: u64,
    ) -> maps_service::JournalConfig {
        let slug = format!(
            "{}_{}_x{}_{}_s{seed}",
            spec.figure,
            spec.panel,
            x.to_bits(),
            kind.name()
        );
        maps_service::JournalConfig::new(self.dir.join(slug), self.checkpoint_every)
    }
}

/// [`run_panel`] with a write-ahead journal attached to every cell's
/// service replay (requires `options.shards ≥ 1`; cells run serially —
/// durability timing would be meaningless with cells contending on
/// fsync). Rows are bit-identical to the unjournaled panel: the journal
/// is write-path-only, and a `recover`ed cell replays to the same
/// outcome as an uninterrupted one.
pub fn run_panel_journaled(
    spec: &PanelSpec,
    options: RunOptions,
    journal: &JournalOptions,
) -> Vec<Row> {
    assert!(
        options.shards >= 1,
        "journaling requires the sharded service path (shards >= 1)"
    );
    let seeds = options.num_seeds.max(1);
    let cells: Vec<(f64, StrategyKind)> = spec
        .xs
        .iter()
        .flat_map(|&x| StrategyKind::ALL.into_iter().map(move |k| (x, k)))
        .collect();
    cells
        .iter()
        .map(|&(x, kind)| {
            let outcomes: Vec<Outcome> = (0..seeds)
                .map(|seed| {
                    let truth = (spec.build)(x, options.scale, seed);
                    let config = journal.cell_config(spec, x, kind, seed);
                    if journal.recover && config.journal_path().exists() {
                        maps_service::replay_recovered(
                            &truth,
                            kind,
                            options.shards,
                            options.sim_options(),
                            &config,
                        )
                        .unwrap_or_else(|e| panic!("cell recovery failed: {e}"))
                    } else {
                        maps_service::replay_journaled(
                            &truth,
                            kind,
                            options.shards,
                            options.sim_options(),
                            &config,
                        )
                        .unwrap_or_else(|e| panic!("cell journaling failed: {e}"))
                    }
                })
                .collect();
            aggregate(spec, x, kind, &outcomes)
        })
        .collect()
}

/// Runs one simulation cell, with optional peak-memory accounting.
fn run_cell(
    spec: &PanelSpec,
    x: f64,
    kind: StrategyKind,
    options: RunOptions,
    seed: u64,
    track: bool,
) -> Outcome {
    let truth = (spec.build)(x, options.scale, seed);
    if track {
        TrackingAllocator::reset_peak();
    }
    let mut outcome = if options.producers >= 1 {
        maps_service::replay_ingested(
            &truth,
            kind,
            options.shards.max(1),
            options.producers,
            options.sim_options(),
        )
    } else if options.shards >= 1 {
        maps_service::replay_with_options(&truth, kind, options.shards, options.sim_options())
    } else {
        Simulation::new(truth, kind)
            .with_options(options.sim_options())
            .run()
    };
    if track {
        outcome.peak_memory_mib = Some(TrackingAllocator::peak_mib());
    }
    outcome
}

/// Averages several outcomes into one row.
fn aggregate(spec: &PanelSpec, x: f64, kind: StrategyKind, outcomes: &[Outcome]) -> Row {
    let n = outcomes.len() as f64;
    let mean = |f: &dyn Fn(&Outcome) -> f64| outcomes.iter().map(f).sum::<f64>() / n;
    Row {
        figure: spec.figure.to_string(),
        panel: spec.panel.to_string(),
        paper_ref: spec.paper_ref.to_string(),
        x_name: spec.x_name.to_string(),
        x,
        strategy: kind.name().to_string(),
        revenue: mean(&|o| o.total_revenue),
        pricing_secs: mean(&|o| o.pricing_secs),
        clearing_secs: mean(&|o| o.clearing_secs),
        calibration_secs: mean(&|o| o.calibration_secs),
        memory_mib: outcomes
            .iter()
            .filter_map(|o| o.peak_memory_mib)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            }),
        issued: mean(&|o| o.issued_tasks as f64),
        accepted: mean(&|o| o.accepted_tasks as f64),
        matched: mean(&|o| o.matched_tasks as f64),
        telemetry: {
            // Merged over seeds; histogram merge is order-independent,
            // so the summary is as deterministic as each outcome.
            let mut merged = maps_telemetry::LatencyTelemetry::new();
            for o in outcomes {
                merged.merge(&o.latency);
            }
            Some(crate::report::LatencySummary::from(&merged))
        },
    }
}

/// Runs a whole panel: every sweep value × the five strategies.
pub fn run_panel(spec: &PanelSpec, options: RunOptions) -> Vec<Row> {
    let cells: Vec<(f64, StrategyKind)> = spec
        .xs
        .iter()
        .flat_map(|&x| StrategyKind::ALL.into_iter().map(move |k| (x, k)))
        .collect();
    let seeds = options.num_seeds.max(1);
    if options.parallel {
        // Seed-parallel fan-out over the (cell × seed) job grid. Each
        // job is a pure function of its coordinates, `collect` preserves
        // job order, and the per-cell aggregation below walks seeds in
        // seed order — so the rows are bit-identical at any thread count.
        let jobs: Vec<(usize, u64)> = (0..cells.len())
            .flat_map(|c| (0..seeds).map(move |s| (c, s)))
            .collect();
        let outcomes: Vec<Outcome> = jobs
            .par_iter()
            .map(|&(c, seed)| {
                let (x, kind) = cells[c];
                run_cell(spec, x, kind, options, seed, false)
            })
            .collect();
        cells
            .iter()
            .enumerate()
            .map(|(c, &(x, kind))| {
                let block = &outcomes[c * seeds as usize..(c + 1) * seeds as usize];
                aggregate(spec, x, kind, block)
            })
            .collect()
    } else {
        let track = options.track_memory;
        cells
            .iter()
            .map(|&(x, kind)| {
                let outcomes: Vec<Outcome> = (0..seeds)
                    .map(|seed| run_cell(spec, x, kind, options, seed, track))
                    .collect();
                aggregate(spec, x, kind, &outcomes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panels::fig6_w;
    use maps_simulator::SyntheticConfig;
    use maps_testkit::BitPattern;
    use std::sync::Arc;

    /// A deliberately tiny two-x panel so the thread-sweep regression
    /// tests stay fast even at `num_seeds = 8`.
    fn tiny_panel() -> PanelSpec {
        PanelSpec {
            figure: "test",
            panel: "tiny",
            x_name: "|W|",
            paper_ref: "determinism regression",
            xs: vec![20.0, 35.0],
            build: Arc::new(|x, _scale, seed| {
                SyntheticConfig::paper_default()
                    .with_num_workers(x as usize)
                    .with_num_tasks(90)
                    .with_periods(5)
                    .with_grid_side(3)
                    .build(seed)
            }),
        }
    }

    /// Canonical bit-level encoding of a row set (floats via `to_bits`).
    fn rows_canon(rows: &[Row]) -> Vec<u64> {
        let mut out = Vec::new();
        for r in rows {
            r.figure.bit_pattern(&mut out);
            r.panel.bit_pattern(&mut out);
            r.x.bit_pattern(&mut out);
            r.strategy.bit_pattern(&mut out);
            r.revenue.bit_pattern(&mut out);
            r.memory_mib.bit_pattern(&mut out);
            r.issued.bit_pattern(&mut out);
            r.accepted.bit_pattern(&mut out);
            r.matched.bit_pattern(&mut out);
            // pricing/clearing/calibration secs are wall-clock readings,
            // legitimately thread- and load-dependent: excluded.
        }
        out
    }

    /// PR-2 acceptance: seed-parallel rows are bit-identical across
    /// 1/2/3/8-thread pools for `num_seeds ∈ {1, 3, 8}`, and match the
    /// serial path.
    #[test]
    fn seed_parallel_rows_bitwise_deterministic() {
        let spec = tiny_panel();
        for num_seeds in [1u64, 3, 8] {
            let options = RunOptions {
                scale: Scale::Quick,
                num_seeds,
                parallel: true,
                track_memory: false,
                ..RunOptions::default()
            };
            let parallel =
                maps_testkit::assert_deterministic(|| rows_canon(&run_panel(&spec, options)));
            let serial = run_panel(
                &spec,
                RunOptions {
                    parallel: false,
                    ..options
                },
            );
            assert_eq!(
                parallel,
                rows_canon(&serial),
                "num_seeds {num_seeds}: parallel rows diverged from the serial path"
            );
        }
    }

    /// Routing a panel through the sharded online service must leave
    /// every schedule-independent row column bitwise unchanged, at any
    /// shard count — the service's shard-count-invariance contract
    /// observed at the experiment-harness level.
    #[test]
    fn sharded_service_rows_match_batch_rows() {
        let spec = tiny_panel();
        let base = RunOptions {
            scale: Scale::Quick,
            num_seeds: 2,
            parallel: true,
            track_memory: false,
            ..RunOptions::default()
        };
        let batch = rows_canon(&run_panel(&spec, base));
        for shards in [1usize, 4] {
            let service_rows = run_panel(&spec, RunOptions { shards, ..base });
            assert_eq!(
                rows_canon(&service_rows),
                batch,
                "{shards}-shard service rows diverged from the batch loop"
            );
        }
    }

    /// Streaming a panel through the multi-producer ingestion front-end
    /// must leave every schedule-independent row column bitwise
    /// unchanged, at any producer count — the ingestion
    /// interleaving-invariance contract observed at the
    /// experiment-harness level.
    #[test]
    fn ingested_rows_match_batch_rows() {
        let spec = tiny_panel();
        let base = RunOptions {
            scale: Scale::Quick,
            num_seeds: 2,
            parallel: true,
            track_memory: false,
            ..RunOptions::default()
        };
        let batch = rows_canon(&run_panel(&spec, base));
        for (producers, shards) in [(1usize, 2usize), (3, 0), (4, 4)] {
            let ingested_rows = run_panel(
                &spec,
                RunOptions {
                    producers,
                    shards,
                    ..base
                },
            );
            assert_eq!(
                rows_canon(&ingested_rows),
                batch,
                "{producers}-producer/{shards}-shard ingested rows diverged from the batch loop"
            );
        }
    }

    /// Journaling a panel's service replays must leave every
    /// schedule-independent row column bitwise unchanged (the journal is
    /// write-path-only), and `--recover` over the completed journals
    /// must reproduce the same rows again — recovery equals
    /// uninterrupted, observed at the experiment-harness level.
    #[test]
    fn journaled_rows_match_batch_rows_and_recovery_reproduces_them() {
        let spec = tiny_panel();
        let base = RunOptions {
            scale: Scale::Quick,
            num_seeds: 2,
            parallel: false,
            track_memory: false,
            shards: 2,
            ..RunOptions::default()
        };
        let batch = rows_canon(&run_panel(
            &spec,
            RunOptions {
                shards: 0,
                parallel: true,
                ..base
            },
        ));
        let journal = JournalOptions {
            dir: std::env::temp_dir()
                .join(format!("maps_experiments_journal_{}", std::process::id())),
            recover: false,
            checkpoint_every: 2,
        };
        let journaled = run_panel_journaled(&spec, base, &journal);
        assert_eq!(
            rows_canon(&journaled),
            batch,
            "journaled rows diverged from the batch loop"
        );
        let recovered = run_panel_journaled(
            &spec,
            base,
            &JournalOptions {
                recover: true,
                ..journal.clone()
            },
        );
        assert_eq!(
            rows_canon(&recovered),
            batch,
            "recovered rows diverged from the batch loop"
        );
        let _ = std::fs::remove_dir_all(&journal.dir);
    }

    /// The `incremental` toggle must not change any row: the event-queue
    /// engine and the rescan oracle are bit-identical per simulation, so
    /// they are bit-identical per panel.
    #[test]
    fn incremental_toggle_rows_are_bit_identical() {
        let spec = tiny_panel();
        let base = RunOptions {
            scale: Scale::Quick,
            num_seeds: 2,
            parallel: true,
            track_memory: false,
            ..RunOptions::default()
        };
        let incremental = run_panel(
            &spec,
            RunOptions {
                incremental: true,
                ..base
            },
        );
        let scan = run_panel(
            &spec,
            RunOptions {
                incremental: false,
                ..base
            },
        );
        assert_eq!(rows_canon(&incremental), rows_canon(&scan));
    }

    #[test]
    fn quick_panel_produces_all_rows() {
        let spec = fig6_w();
        let rows = run_panel(
            &spec,
            RunOptions {
                scale: Scale::Quick,
                num_seeds: 1,
                parallel: true,
                track_memory: false,
                ..RunOptions::default()
            },
        );
        assert_eq!(rows.len(), 5 * 5);
        for row in &rows {
            assert!(row.revenue >= 0.0);
            assert!(row.issued > 0.0);
            assert_eq!(row.figure, "fig6");
        }
        // Every strategy appears for every x.
        for &x in &spec.xs {
            let strategies: Vec<_> = rows
                .iter()
                .filter(|r| r.x == x)
                .map(|r| r.strategy.clone())
                .collect();
            assert_eq!(strategies.len(), 5, "x={x}");
        }
    }

    #[test]
    fn seeds_are_averaged() {
        let spec = fig6_w();
        let one = run_panel(
            &spec,
            RunOptions {
                scale: Scale::Quick,
                num_seeds: 1,
                parallel: true,
                track_memory: false,
                ..RunOptions::default()
            },
        );
        let three = run_panel(
            &spec,
            RunOptions {
                scale: Scale::Quick,
                num_seeds: 3,
                parallel: true,
                track_memory: false,
                ..RunOptions::default()
            },
        );
        // Same shape, (almost surely) different values.
        assert_eq!(one.len(), three.len());
        assert!(one
            .iter()
            .zip(&three)
            .any(|(a, b)| (a.revenue - b.revenue).abs() > 1e-9));
    }
}
