//! Sweep execution: runs every (x, strategy) cell of a panel, optionally
//! in parallel, and aggregates seeds into [`Row`]s.

use crate::panels::{PanelSpec, Scale};
use crate::report::Row;
use maps_core::StrategyKind;
use maps_simulator::alloc::TrackingAllocator;
use maps_simulator::{Outcome, Simulation};
use rayon::prelude::*;

/// Options controlling a panel run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Dataset scale.
    pub scale: Scale,
    /// Seeds to average over (the paper reports single runs; averaging
    /// over ≥1 seeds reduces Monte-Carlo noise in the tables).
    pub num_seeds: u64,
    /// Run cells in parallel with rayon. Wall-clock timings and peak-
    /// memory figures are only meaningful in serial mode; parallel mode
    /// is for fast revenue-shape iteration.
    pub parallel: bool,
    /// Measure peak heap via the tracking allocator (requires the binary
    /// to install [`TrackingAllocator`] as the global allocator, and
    /// implies serial execution).
    pub track_memory: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: Scale::Full,
            num_seeds: 1,
            parallel: false,
            track_memory: true,
        }
    }
}

/// Runs one simulation cell, with optional peak-memory accounting.
fn run_cell(
    spec: &PanelSpec,
    x: f64,
    kind: StrategyKind,
    scale: Scale,
    seed: u64,
    track: bool,
) -> Outcome {
    let truth = (spec.build)(x, scale, seed);
    if track {
        TrackingAllocator::reset_peak();
    }
    let mut outcome = Simulation::new(truth, kind).run();
    if track {
        outcome.peak_memory_mib = Some(TrackingAllocator::peak_mib());
    }
    outcome
}

/// Averages several outcomes into one row.
fn aggregate(spec: &PanelSpec, x: f64, kind: StrategyKind, outcomes: &[Outcome]) -> Row {
    let n = outcomes.len() as f64;
    let mean = |f: &dyn Fn(&Outcome) -> f64| outcomes.iter().map(f).sum::<f64>() / n;
    Row {
        figure: spec.figure.to_string(),
        panel: spec.panel.to_string(),
        paper_ref: spec.paper_ref.to_string(),
        x_name: spec.x_name.to_string(),
        x,
        strategy: kind.name().to_string(),
        revenue: mean(&|o| o.total_revenue),
        pricing_secs: mean(&|o| o.pricing_secs),
        clearing_secs: mean(&|o| o.clearing_secs),
        calibration_secs: mean(&|o| o.calibration_secs),
        memory_mib: outcomes
            .iter()
            .filter_map(|o| o.peak_memory_mib)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            }),
        issued: mean(&|o| o.issued_tasks as f64),
        accepted: mean(&|o| o.accepted_tasks as f64),
        matched: mean(&|o| o.matched_tasks as f64),
    }
}

/// Runs a whole panel: every sweep value × the five strategies.
pub fn run_panel(spec: &PanelSpec, options: RunOptions) -> Vec<Row> {
    let cells: Vec<(f64, StrategyKind)> = spec
        .xs
        .iter()
        .flat_map(|&x| StrategyKind::ALL.into_iter().map(move |k| (x, k)))
        .collect();
    let track = options.track_memory && !options.parallel;
    let run_one = |&(x, kind): &(f64, StrategyKind)| -> Row {
        let outcomes: Vec<Outcome> = (0..options.num_seeds.max(1))
            .map(|seed| run_cell(spec, x, kind, options.scale, seed, track))
            .collect();
        aggregate(spec, x, kind, &outcomes)
    };
    if options.parallel {
        cells.par_iter().map(run_one).collect()
    } else {
        cells.iter().map(run_one).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panels::fig6_w;

    #[test]
    fn quick_panel_produces_all_rows() {
        let spec = fig6_w();
        let rows = run_panel(
            &spec,
            RunOptions {
                scale: Scale::Quick,
                num_seeds: 1,
                parallel: true,
                track_memory: false,
            },
        );
        assert_eq!(rows.len(), 5 * 5);
        for row in &rows {
            assert!(row.revenue >= 0.0);
            assert!(row.issued > 0.0);
            assert_eq!(row.figure, "fig6");
        }
        // Every strategy appears for every x.
        for &x in &spec.xs {
            let strategies: Vec<_> = rows
                .iter()
                .filter(|r| r.x == x)
                .map(|r| r.strategy.clone())
                .collect();
            assert_eq!(strategies.len(), 5, "x={x}");
        }
    }

    #[test]
    fn seeds_are_averaged() {
        let spec = fig6_w();
        let one = run_panel(
            &spec,
            RunOptions {
                scale: Scale::Quick,
                num_seeds: 1,
                parallel: true,
                track_memory: false,
            },
        );
        let three = run_panel(
            &spec,
            RunOptions {
                scale: Scale::Quick,
                num_seeds: 3,
                parallel: true,
                track_memory: false,
            },
        );
        // Same shape, (almost surely) different values.
        assert_eq!(one.len(), three.len());
        assert!(one
            .iter()
            .zip(&three)
            .any(|(a, b)| (a.revenue - b.revenue).abs() > 1e-9));
    }
}
