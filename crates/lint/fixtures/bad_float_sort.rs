//! Known-bad fixture: float ordering through `partial_cmp(..).unwrap()`
//! and a float `sort_by` in a deterministic module. Besides the NaN
//! panic path, `partial_cmp` orders `-0.0 == 0.0`, so two encodings of
//! zero can swap across runs of a parallel sort — real code routes
//! through `f64::total_cmp` (or a total-order key).

fn rank(weights: &mut Vec<f64>) {
    weights.sort_by(|a, b| a.partial_cmp(b).unwrap()); // ~BAD~
}

fn best(weights: &[f64]) -> Option<f64> {
    let mut best = weights.first().copied()?;
    for w in &weights[1..] {
        if w.partial_cmp(&best).unwrap() == std::cmp::Ordering::Greater { // ~BAD~
            best = *w;
        }
    }
    Some(best)
}
