//! Known-bad fixture: iterating a `HashMap` inside a deterministic
//! module. Iteration order depends on the hasher's per-process seed,
//! so any fold over it leaks nondeterminism into the outcome bits.
//! The fix in real code is `BTreeMap` or collect-then-sort.
use std::collections::HashMap;

fn worker_totals(assignments: &[(u64, f64)]) -> f64 {
    let mut per_worker: HashMap<u64, f64> = HashMap::new();
    for (worker, price) in assignments {
        *per_worker.entry(*worker).or_insert(0.0) += price;
    }
    let mut acc = 0.0;
    for (_, total) in per_worker.iter() { // ~BAD~
        acc = acc * 0.5 + total;
    }
    acc
}
