//! Known-bad fixture: a bare `Ordering::Relaxed` in a lock-free
//! protocol file with no `// ordering:` justification. Every Relaxed
//! in the SPSC ring must say *why* the weaker ordering is sound, or
//! the next refactor silently breaks the happens-before chain.
use std::sync::atomic::{AtomicUsize, Ordering};

struct Cursor {
    pos: AtomicUsize,
}

impl Cursor {
    fn bump(&self) -> usize {
        self.pos.fetch_add(1, Ordering::Relaxed) // ~BAD~
    }
}
