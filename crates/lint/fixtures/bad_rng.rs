//! Known-bad fixture: ambient randomness outside `maps-testkit`.
//! `thread_rng`/`from_entropy` seed from the OS, so two runs of the
//! same scenario produce different outcome bits. Real code threads an
//! explicitly-seeded `ChaCha8Rng` from the scenario config.
use rand::Rng;

fn jitter(base: f64) -> f64 {
    let mut rng = rand::thread_rng(); // ~BAD~
    base + rng.gen_range(0.0..1.0)
}
