//! Known-bad fixture: a stale waiver. The `lint-allow` below is
//! well-formed — known rule, stated reason — but the wall-clock read it
//! once excused has been refactored away, so the waiver now suppresses
//! nothing. Left in place it would silently pre-authorize the next
//! `Instant::now()` someone writes on that line, so the unused license
//! itself must be flagged.

/// A logical timestamp derived from the event stream, which is what
/// the deleted wall-clock read was replaced with.
pub fn stamp(logical_ticks: u64) -> u64 {
    // lint-allow(det-wallclock): stamp is timing telemetry, excluded from deterministic_bits ~BAD~
    logical_ticks * 2
}
