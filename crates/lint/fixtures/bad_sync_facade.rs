//! Known-bad fixture: direct `std::sync` primitives in a model-checked
//! protocol file. The ring's atomics, mutexes and condvars must come
//! through the crate's sync facade (`crate::sync`) — a `std::sync` path
//! here is synchronization the `maps-model` checker silently cannot
//! see, which quietly shrinks the checked surface back to prose.
use std::sync::atomic::{AtomicU64, Ordering}; // ~BAD~
use std::sync::Arc; // Arc is not a tracked primitive: allowed.
use std::sync::{Condvar, Mutex}; // ~BAD~

struct Ring {
    tail: AtomicU64,
    park: Mutex<()>,
    cv: Condvar,
    _shared: Arc<()>,
}

impl Ring {
    fn publish(&self) {
        self.tail.store(1, Ordering::Release);
        std::sync::atomic::fence(Ordering::SeqCst); // ~BAD~
    }
}
