//! Known-bad fixture: a Release store of a cursor field whose loads
//! are all Relaxed. The Release half of the protocol publishes the
//! slot write, but without a paired Acquire load the consumer may see
//! the cursor advance before the slot contents — the classic torn-read
//! SPSC bug.
use std::sync::atomic::{AtomicUsize, Ordering};

struct Ring {
    tail: AtomicUsize,
}

impl Ring {
    fn publish(&self, pos: usize) {
        // ordering: Release publishes the slot write below the cursor.
        self.tail.store(pos, Ordering::Release); // ~BAD~
    }

    fn poll(&self) -> usize {
        // ordering: relaxed is wrong here, which is the point.
        self.tail.load(Ordering::Relaxed)
    }
}
