//! Known-bad fixture: an `unsafe` block with no immediately-preceding
//! `// SAFETY:` comment. The invariant being relied on (caller holds
//! the only live index into the arena) exists only in the author's
//! head, which is where it gets lost.

fn read_slot(slots: &[u64], idx: usize) -> u64 {
    unsafe { *slots.get_unchecked(idx) } // ~BAD~
}
