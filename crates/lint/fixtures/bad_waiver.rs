//! Known-bad fixture: waiver abuse. A waiver with no reason is a
//! violation (the reason *is* the review artifact), and a waiver
//! naming a rule that does not exist is a typo that would otherwise
//! silently waive nothing forever.
use std::time::Instant;

fn stamp() -> Instant {
    // lint-allow(det-wallclock) ~BAD~
    Instant::now()
}

fn stamp2() -> Instant {
    // lint-allow(det-wallclok): typo in the rule name ~BAD~
    Instant::now()
}
