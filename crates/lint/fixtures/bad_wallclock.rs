//! Known-bad fixture: reading the wall clock in a deterministic
//! module. Replay of the same journal on another machine (or the same
//! machine, later) would observe different time and diverge.
use std::time::Instant;

fn surge_window_open(started: Instant) -> bool {
    let now = Instant::now(); // ~BAD~
    now.duration_since(started).as_millis() < 500
}
