//! A small comment/string-aware Rust lexer.
//!
//! The container has no registry access, so `syn` is not an option —
//! and the lint rules do not need a parse tree, only a token stream
//! that **never confuses source code with the inside of a string
//! literal or a comment**. That is exactly the part naive `grep`-style
//! linting gets wrong: `"thread_rng"` inside a test-name string, a
//! `// HashMap used to live here` comment, or `'{'` as a char literal
//! must not look like code. The lexer therefore implements the lexical
//! subset of the Rust grammar faithfully — raw strings with arbitrary
//! `#` fences, byte/raw-byte strings, char vs. lifetime disambiguation,
//! nested block comments, raw identifiers — and leaves everything
//! above the token level (items, types, expressions) to the rules'
//! token-pattern matching.
//!
//! Two token-stream annotations ride on top:
//!
//! * **Test regions** ([`test_lines`]): the brace-matched bodies of
//!   `#[cfg(test)]` / `#[test]` items. Determinism rules skip them
//!   (a test may time itself with `Instant::now`), while the safety
//!   rules (`unsafe-safety`) apply everywhere. Brace matching over
//!   *tokens* is reliable precisely because strings and comments were
//!   already lexed away.
//! * **Waivers** ([`waivers`]): `lint-allow` comments — rule name in
//!   parentheses, then `: reason` —
//!   comments, the escape hatch every rule honors (and audits — a
//!   waiver without a reason is itself a violation).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident` identifiers,
    /// whose text keeps the `r#` prefix so they can never be confused
    /// with the keyword they escape).
    Ident,
    /// A lifetime such as `'a` (text includes the leading `'`).
    Lifetime,
    /// Integer or float literal, suffix included.
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`. Text is the full literal including quotes/fences.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` comment (doc comments included). Text includes the
    /// slashes but not the trailing newline.
    LineComment,
    /// `/* … */` comment, nesting handled. Text includes delimiters.
    BlockComment,
    /// A single punctuation byte (`.`, `:`, `{`, …). Multi-byte
    /// operators arrive as consecutive one-byte tokens; rules match
    /// the sequences they care about (e.g. `:` `:` for a path).
    Punct,
}

/// One lexeme with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// The exact source text of the lexeme.
    pub text: String,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based line of the last byte (differs from `line` only for
    /// multi-line strings and block comments).
    pub end_line: u32,
}

impl Token {
    fn new(kind: TokenKind, text: &str, line: u32, end_line: u32) -> Self {
        Self {
            kind,
            text: text.to_string(),
            line,
            end_line,
        }
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes Rust source. Unterminated constructs (a string or block
/// comment running to EOF) are closed at EOF rather than reported —
/// the workspace compiles, so they cannot occur on real input, and the
/// lint must never panic on a fixture.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn emit(&mut self, kind: TokenKind, start: usize, start_line: u32) {
        self.tokens.push(Token::new(
            kind,
            &self.src[start..self.pos],
            start_line,
            self.line,
        ));
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            let start = self.pos;
            let start_line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, start_line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment(start, start_line);
                }
                b'r' if self.raw_string_ahead(1) => {
                    self.bump(); // r
                    self.raw_string_body(start, start_line);
                }
                b'b' => self.byte_prefixed(start, start_line),
                b'"' => self.string(start, start_line),
                b'\'' => self.quote(start, start_line),
                _ if is_ident_start(b) => {
                    // `r#ident` raw identifiers (raw strings were
                    // dispatched above).
                    if b == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                        self.bump();
                        self.bump();
                    }
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, start_line);
                }
                _ if b.is_ascii_digit() => self.number(start, start_line),
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, start_line);
                }
            }
        }
        self.tokens
    }

    /// Nested `/* … */`; unterminated closes at EOF.
    fn block_comment(&mut self, start: usize, start_line: u32) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.emit(TokenKind::BlockComment, start, start_line);
    }

    /// Is `#*"` (a raw-string fence) next, starting `ahead` bytes in?
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = ahead;
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    /// Consumes `#*" … "#*` after the `r`/`br` prefix was consumed.
    fn raw_string_body(&mut self, start: usize, start_line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening "
        'body: while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                // A closing quote must be followed by exactly the
                // opening fence's hash count.
                let mut i = 1;
                while i <= hashes {
                    if self.peek(i) != b'#' {
                        self.bump(); // a " inside the raw body
                        continue 'body;
                    }
                    i += 1;
                }
                self.bump(); // "
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        self.emit(TokenKind::Str, start, start_line);
    }

    /// `b`-prefixed literals (`b'x'`, `b"…"`, `br#"…"#`) — or just an
    /// identifier starting with `b`.
    fn byte_prefixed(&mut self, start: usize, start_line: u32) {
        match self.peek(1) {
            b'\'' => {
                self.bump(); // b
                self.bump(); // '
                self.char_body();
                self.emit(TokenKind::Char, start, start_line);
            }
            b'"' => {
                self.bump(); // b
                self.string(start, start_line);
            }
            b'r' if self.raw_string_ahead(2) => {
                self.bump(); // b
                self.bump(); // r
                self.raw_string_body(start, start_line);
            }
            _ => {
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
                self.emit(TokenKind::Ident, start, start_line);
            }
        }
    }

    /// `" … "` with escapes; unterminated closes at EOF.
    fn string(&mut self, start: usize, start_line: u32) {
        self.bump(); // opening "
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump(); // the escaped byte ("\"" and "\\")
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.emit(TokenKind::Str, start, start_line);
    }

    /// After a consumed opening `'` of a char/byte literal: consume the
    /// body and the closing `'`.
    fn char_body(&mut self) {
        if self.peek(0) == b'\\' {
            self.bump();
            if self.pos < self.bytes.len() {
                self.bump(); // escape head: n, ', x, u, …
            }
            // `\x7f` / `\u{…}` tails run to the closing quote.
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
        } else {
            // One char, possibly multi-byte UTF-8.
            let width = utf8_width(self.peek(0));
            for _ in 0..width {
                if self.pos < self.bytes.len() {
                    self.bump();
                }
            }
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    /// A `'`: either a char literal (`'x'`, `'{'`, `'\n'`) or a
    /// lifetime (`'a`, `'static`). Disambiguation: an escape or a
    /// non-identifier char is always a char literal; an identifier
    /// char is a char literal iff the very next char closes the quote.
    fn quote(&mut self, start: usize, start_line: u32) {
        let next = self.peek(1);
        if next == b'\\' || !is_ident_start(next) {
            self.bump(); // '
            self.char_body();
            self.emit(TokenKind::Char, start, start_line);
            return;
        }
        let width = utf8_width(next);
        if self.peek(1 + width) == b'\'' {
            // 'x' — a single ident-class char then the closing quote.
            self.bump(); // '
            self.char_body();
            self.emit(TokenKind::Char, start, start_line);
        } else {
            self.bump(); // '
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, start_line);
        }
    }

    /// Numeric literal: digits/underscores, radix prefixes, exponents,
    /// type suffixes, and a fractional part only when a digit follows
    /// the dot (`1..n` stays Number, Punct, Punct, Ident).
    fn number(&mut self, start: usize, start_line: u32) {
        while is_ident_continue(self.peek(0)) {
            let b = self.peek(0);
            self.bump();
            // Exponent sign: the only place +/- belongs to the literal.
            if (b == b'e' || b == b'E')
                && (self.peek(0) == b'+' || self.peek(0) == b'-')
                && self.peek(1).is_ascii_digit()
                && !self.src[start..self.pos].starts_with("0x")
            {
                self.bump();
            }
        }
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump(); // .
            while is_ident_continue(self.peek(0)) {
                let b = self.peek(0);
                self.bump();
                if (b == b'e' || b == b'E')
                    && (self.peek(0) == b'+' || self.peek(0) == b'-')
                    && self.peek(1).is_ascii_digit()
                {
                    self.bump();
                }
            }
        }
        self.emit(TokenKind::Number, start, start_line);
    }
}

/// Byte length of the UTF-8 char starting with `b`.
fn utf8_width(b: u8) -> usize {
    match b {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// Returns the set of source lines inside test code: the brace-matched
/// bodies of items annotated `#[test]` or `#[cfg(test)]` (including
/// `cfg(all(test, …))` and `cfg_attr(test, …)` spellings — any
/// attribute whose argument list mentions the bare `test` ident).
///
/// The result is a sorted list of disjoint `(first_line, last_line)`
/// ranges, inclusive.
pub fn test_lines(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut j = i + 1;
        if j < toks.len() && toks[j].text == "!" {
            j += 1; // inner attribute `#![…]`
        }
        if j >= toks.len() || toks[j].text != "[" {
            i += 1;
            continue;
        }
        // Scan the bracket-balanced attribute, looking for `test`.
        let mut depth = 0i32;
        let mut has_test = false;
        let mut k = j;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" if toks[k].kind == TokenKind::Ident => has_test = true,
                _ => {}
            }
            k += 1;
        }
        if !has_test {
            i = k + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut m = k + 1;
        while m < toks.len() && toks[m].text == "#" {
            let mut d = 0i32;
            m += 1;
            while m < toks.len() {
                match toks[m].text.as_str() {
                    "[" | "(" => d += 1,
                    "]" | ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            m += 1;
        }
        // The annotated item runs to its matching close brace (fn/mod
        // body) or to a `;` at depth 0 (e.g. `#[cfg(test)] use …;`).
        let mut d = 0i32;
        let mut end_line = attr_line;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "{" => d += 1,
                "}" => {
                    d -= 1;
                    if d == 0 {
                        end_line = toks[m].line;
                        break;
                    }
                }
                ";" if d == 0 => {
                    end_line = toks[m].line;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        regions.push((attr_line, end_line.max(attr_line)));
        i = m + 1;
    }
    regions
}

/// True when `line` falls inside any of the `regions` from
/// [`test_lines`].
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// A parsed `lint-allow` waiver comment: the rule name in parentheses,
/// a `:`, then the reason.
#[derive(Debug, Clone)]
pub struct WaiverComment {
    /// The rule being waived.
    pub rule: String,
    /// The stated reason (may be empty — which the pass then flags).
    pub reason: String,
    /// Line of the comment's last byte: a waiver covers violations on
    /// its own line (trailing comment) and the line directly below.
    pub line: u32,
}

/// Extracts every waiver comment from a token stream.
pub fn waivers(tokens: &[Token]) -> Vec<WaiverComment> {
    let mut out = Vec::new();
    for token in tokens.iter().filter(|t| t.is_comment()) {
        let Some(start) = token.text.find("lint-allow(") else {
            continue;
        };
        let rest = &token.text[start + "lint-allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .unwrap_or("")
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_string();
        out.push(WaiverComment {
            rule,
            reason,
            line: token.end_line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    /// Raw strings: arbitrary hash fences, embedded quotes and
    /// comment-lookalikes stay inside the one Str token.
    #[test]
    fn raw_strings_swallow_quotes_and_comment_lookalikes() {
        let src = r####"let s = r#"// not a comment, "quoted", 'c'"#;"####;
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "s".into()),
                (TokenKind::Punct, "=".into()),
                (
                    TokenKind::Str,
                    r####"r#"// not a comment, "quoted", 'c'"#"####.into()
                ),
                (TokenKind::Punct, ";".into()),
            ]
        );
        // Double-fenced: a `"#` inside does not close `r##"…"##`.
        let toks = kinds(r#####"r##"inner "# still open"## "#####);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, r#####"r##"inner "# still open"##"#####);
        // Plain r"" (zero hashes).
        let toks = kinds(r#" r"\no escapes\" "#);
        assert_eq!(toks[0], (TokenKind::Str, r#"r"\no escapes\""#.into()));
    }

    /// Nested block comments close at the matching depth, exactly like
    /// rustc's lexical grammar.
    #[test]
    fn nested_block_comments_track_depth() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still comment */".into()
                ),
                (TokenKind::Ident, "b".into()),
            ]
        );
    }

    /// Char and byte literals holding `{`, `"`, `/` and escapes never
    /// leak into brace matching, strings, or comments.
    #[test]
    fn char_literals_with_delimiters_and_escapes() {
        let toks = kinds("let c = ['{', '}', '\\\"', '/', '\\'', '\\n', b'{', b'\\'']; // done");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            chars,
            vec![r"'{'", r"'}'", "'\\\"'", r"'/'", r"'\''", r"'\n'", r"b'{'", r"b'\''"]
        );
        // The trailing // after the char-heavy soup is still a comment.
        assert_eq!(toks.last().unwrap().0, TokenKind::LineComment);
        // And `'//'`-adjacent code: a char slash must not open a comment.
        let toks = kinds("x('/') // real");
        assert_eq!(toks[2], (TokenKind::Char, "'/'".into()));
        assert_eq!(toks.last().unwrap().0, TokenKind::LineComment);
    }

    /// Lifetimes vs char literals: `'a` is a lifetime, `'a'` a char,
    /// `'static` a lifetime, multi-byte `'é'` a char.
    #[test]
    fn lifetime_vs_char_disambiguation() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s: &'static str = \"\"; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["'a'"]);
        let toks = kinds("let c = 'é';");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'é'"));
    }

    /// Strings with escaped quotes and backslashes terminate at the
    /// real closing quote.
    #[test]
    fn string_escapes() {
        let toks = kinds(r#"let s = "a \" b \\"; let t = 1;"#);
        assert_eq!(toks[3], (TokenKind::Str, r#""a \" b \\""#.into()));
        assert_eq!(toks[6], (TokenKind::Ident, "t".into()));
    }

    /// Numbers: ranges keep the dots as punctuation; floats, exponents
    /// and suffixes stay one token.
    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3f64; let y = 0xFFu8; }");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "10".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3f64".into())));
        assert!(toks.contains(&(TokenKind::Number, "0xFFu8".into())));
        assert_eq!(
            toks.iter().filter(|(_, t)| t == ".").count(),
            2,
            "0..10 must lex as Number Punct Punct Number"
        );
    }

    /// Raw identifiers keep their `r#` so they cannot shadow keywords.
    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#unsafe = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "r#unsafe".into()));
    }

    /// `#[cfg(test)]`-gated modules and `#[test]` fns become test
    /// regions; surrounding code does not.
    #[test]
    fn cfg_test_regions() {
        let src = "\
fn live() {}            // line 1
#[cfg(test)]            // line 2
mod tests {             // line 3
    use super::*;       // line 4
    #[test]
    fn case() {}        // line 6
}                       // line 7
fn also_live() {}       // line 8
";
        let tokens = lex(src);
        let regions = test_lines(&tokens);
        assert!(in_regions(&regions, 2));
        assert!(in_regions(&regions, 4));
        assert!(in_regions(&regions, 7));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 8));
        // A cfg(all(test, …)) spelling counts too, and `;`-terminated
        // items end their own region.
        let src = "#[cfg(all(test, unix))]\nuse foo::bar;\nfn live() {}\n";
        let tokens = lex(src);
        let regions = test_lines(&tokens);
        assert!(in_regions(&regions, 2));
        assert!(!in_regions(&regions, 3));
    }

    /// Multi-line strings and block comments report correct start/end
    /// lines (line numbers are what violations anchor to).
    #[test]
    fn line_tracking_across_multiline_tokens() {
        let src = "let a = \"one\ntwo\";\n/* b\nc */\nlet d = 1;";
        let tokens = lex(src);
        let s = tokens.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!((s.line, s.end_line), (1, 2));
        let c = tokens
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .unwrap();
        assert_eq!((c.line, c.end_line), (3, 4));
        let d = tokens.iter().find(|t| t.text == "d").unwrap();
        assert_eq!(d.line, 5);
    }

    /// Waiver comments parse into (rule, reason, line); a reason-less
    /// waiver parses with an empty reason for the pass to flag.
    #[test]
    fn waiver_parsing() {
        let src = "\
// lint-allow(det-wallclock): timing excluded from bits
let t = 1;
// lint-allow(det-rng)
let u = 2; // lint-allow(unsafe-safety): trailing form
";
        let ws = waivers(&lex(src));
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].rule, "det-wallclock");
        assert_eq!(ws[0].reason, "timing excluded from bits");
        assert_eq!(ws[0].line, 1);
        assert_eq!(ws[1].rule, "det-rng");
        assert_eq!(ws[1].reason, "");
        assert_eq!(ws[2].rule, "unsafe-safety");
        assert_eq!(ws[2].line, 4);
    }
}
