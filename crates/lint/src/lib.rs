//! `maps-lint`: the workspace static-analysis pass that enforces the
//! determinism & concurrency contracts at review time.
//!
//! Every invariant this reproduction lives by — bit-identical parallel
//! replay, the total `(epoch, producer, seq)` order, the
//! telemetry-in-the-bits rule — is otherwise enforced only
//! *dynamically*, by oracle sweeps that catch a violation after it is
//! written (and cannot name which line wrote it). This pass turns the
//! ROADMAP's prose rules into machine-checked source constraints that
//! run before the build:
//!
//! | rule | constraint |
//! |------|-----------|
//! | `det-collections` | no `HashMap`/`HashSet` iteration in modules that feed `Outcome::deterministic_bits` |
//! | `det-wallclock` | `Instant::now`/`SystemTime` only in the bench/timing allow-list |
//! | `det-rng` | no ambient randomness (`thread_rng`, entropy seeds) outside `maps-testkit` |
//! | `atomic-ordering` | every `Ordering::Relaxed`/`fence` in the lock-free protocol files carries a `// ordering:` justification; Release stores pair with Acquire loads |
//! | `sync-facade` | the lock-free protocol files import atomics/`Mutex`/`Condvar` through the crate's sync facade, never `std::sync` directly — so the shipping code is what `maps-model` checks |
//! | `unsafe-safety` | every `unsafe` block/fn/impl has an immediately-preceding `// SAFETY:` comment |
//! | `float-total-order` | no bare `partial_cmp(…).unwrap()` / float `sort_by` in deterministic modules |
//!
//! Violations are waivable inline — a `lint-allow` comment naming the
//! rule in parentheses followed by `: reason`, placed on the offending
//! line or the line above — and the waiver is itself
//! audited: a waiver without a reason, or naming an unknown rule, is a
//! violation (`waiver`), and a well-formed waiver whose covered lines
//! no longer trip its rule is one too (`stale-waiver` — an unused
//! license silently pre-authorizes the next regression on that line).
//! The pass has **no registry dependencies**: it carries its
//! own comment/string-aware Rust lexer ([`lexer`]) because `syn` is not
//! vendored, and token-level analysis is exactly the granularity the
//! rules need.
//!
//! Run it as a binary (`cargo run -p maps-lint --release`), as a
//! library ([`scan_workspace`] — `bench_report` times a full scan as
//! the `lint_runtime` row), or in self-test mode
//! (`--self-test`: every known-bad fixture under `fixtures/` must
//! fail, guarding the pass against rotting into a no-op). The JSON
//! report (`maps-lint/v1`, [`LintReport::to_value`]) mirrors
//! `bench_report`'s schema conventions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod rules;

pub use rules::{analyze, FileAnalysis, Violation, Waived, RULES};

use serde::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One surviving violation, anchored to a workspace-relative file.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// The finding.
    pub violation: Violation,
}

/// One waived violation, anchored to a workspace-relative file.
#[derive(Debug, Clone)]
pub struct FileWaived {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// The waived finding with its reason.
    pub waived: Waived,
}

/// Aggregated result of a workspace scan.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All surviving violations, in (file, rule, line) order.
    pub violations: Vec<FileViolation>,
    /// All waived violations (the audit trail).
    pub waived: Vec<FileWaived>,
}

impl LintReport {
    /// True when the scan found nothing (the CI pass condition).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the `maps-lint/v1` JSON schema (same `Value` conventions
    /// as `maps-bench-report/v1`): a `rules` object with per-rule
    /// violation/waiver counts, plus the flat `violations` / `waived`
    /// arrays.
    pub fn to_value(&self) -> Value {
        let mut per_rule: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for name in RULES.iter().chain(["waiver", "stale-waiver"].iter()) {
            per_rule.insert((*name).to_string(), (0, 0));
        }
        for v in &self.violations {
            per_rule.entry(v.violation.rule.to_string()).or_default().0 += 1;
        }
        for w in &self.waived {
            per_rule.entry(w.waived.rule.to_string()).or_default().1 += 1;
        }
        let rules: BTreeMap<String, Value> = per_rule
            .into_iter()
            .map(|(name, (violations, waived))| {
                (
                    name,
                    serde::object([
                        ("violations", Value::Number(violations as f64)),
                        ("waived", Value::Number(waived as f64)),
                    ]),
                )
            })
            .collect();
        let violations: Vec<Value> = self
            .violations
            .iter()
            .map(|v| {
                serde::object([
                    ("rule", Value::String(v.violation.rule.to_string())),
                    ("file", Value::String(v.file.clone())),
                    ("line", Value::Number(v.violation.line as f64)),
                    ("message", Value::String(v.violation.message.clone())),
                ])
            })
            .collect();
        let waived: Vec<Value> = self
            .waived
            .iter()
            .map(|w| {
                serde::object([
                    ("rule", Value::String(w.waived.rule.to_string())),
                    ("file", Value::String(w.file.clone())),
                    ("line", Value::Number(w.waived.line as f64)),
                    ("reason", Value::String(w.waived.reason.clone())),
                ])
            })
            .collect();
        serde::object([
            ("schema", Value::String("maps-lint/v1".to_string())),
            ("files_scanned", Value::Number(self.files_scanned as f64)),
            ("rules", Value::Object(rules)),
            ("violations", Value::Array(violations)),
            ("waived", Value::Array(waived)),
        ])
    }
}

/// Directories never scanned: build output, vendored stand-ins (not
/// this repo's code), VCS internals, and the lint's own known-bad
/// fixtures (which must stay bad).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Collects every workspace `.rs` file under `root`, sorted by
/// relative path so reports are deterministic.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans every workspace `.rs` file under `root` and aggregates the
/// findings. Unreadable files are reported as violations rather than
/// skipped — a scan that silently misses files is a scan that lies.
pub fn scan_workspace(root: &Path) -> std::io::Result<LintReport> {
    let files = workspace_files(root)?;
    let mut report = LintReport::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(path) else {
            report.violations.push(FileViolation {
                file: rel.clone(),
                violation: Violation {
                    rule: "waiver",
                    line: 0,
                    message: "file could not be read as UTF-8".to_string(),
                },
            });
            continue;
        };
        report.files_scanned += 1;
        let analysis = analyze(&rel, &src);
        report.violations.extend(
            analysis
                .violations
                .into_iter()
                .map(|violation| FileViolation {
                    file: rel.clone(),
                    violation,
                }),
        );
        report
            .waived
            .extend(analysis.waived.into_iter().map(|waived| FileWaived {
                file: rel.clone(),
                waived,
            }));
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.violation.line).cmp(&(&b.file, b.violation.line)));
    report
        .waived
        .sort_by(|a, b| (&a.file, a.waived.line).cmp(&(&b.file, b.waived.line)));
    Ok(report)
}

/// A known-bad fixture: a source snippet, the synthetic workspace path
/// it impersonates (rule scoping is path-driven), and the rule it must
/// trip. The self-test fails unless **every** fixture produces at
/// least one violation of its expected rule — this is what keeps the
/// pass from rotting into a no-op while still exiting 0 on the real
/// workspace.
#[derive(Debug, Clone, Copy)]
pub struct Fixture {
    /// Fixture name (the file under `fixtures/`).
    pub name: &'static str,
    /// The path the snippet pretends to live at.
    pub path: &'static str,
    /// The rule that must fire.
    pub expect_rule: &'static str,
    /// The snippet source.
    pub source: &'static str,
}

/// The known-bad fixture suite, one per rule plus the waiver audits.
pub const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "bad_hash_iter.rs",
        path: "crates/service/src/bad_hash_iter.rs",
        expect_rule: "det-collections",
        source: include_str!("../fixtures/bad_hash_iter.rs"),
    },
    Fixture {
        name: "bad_wallclock.rs",
        path: "crates/core/src/bad_wallclock.rs",
        expect_rule: "det-wallclock",
        source: include_str!("../fixtures/bad_wallclock.rs"),
    },
    Fixture {
        name: "bad_rng.rs",
        path: "crates/simulator/src/bad_rng.rs",
        expect_rule: "det-rng",
        source: include_str!("../fixtures/bad_rng.rs"),
    },
    Fixture {
        name: "bad_relaxed.rs",
        path: "crates/service/src/ingest.rs",
        expect_rule: "atomic-ordering",
        source: include_str!("../fixtures/bad_relaxed.rs"),
    },
    Fixture {
        name: "bad_unpaired_release.rs",
        path: "crates/service/src/ingest.rs",
        expect_rule: "atomic-ordering",
        source: include_str!("../fixtures/bad_unpaired_release.rs"),
    },
    Fixture {
        name: "bad_unsafe.rs",
        path: "crates/spatial/src/bad_unsafe.rs",
        expect_rule: "unsafe-safety",
        source: include_str!("../fixtures/bad_unsafe.rs"),
    },
    Fixture {
        name: "bad_float_sort.rs",
        path: "crates/matching/src/bad_float_sort.rs",
        expect_rule: "float-total-order",
        source: include_str!("../fixtures/bad_float_sort.rs"),
    },
    Fixture {
        name: "bad_waiver.rs",
        path: "crates/telemetry/src/bad_waiver.rs",
        expect_rule: "waiver",
        source: include_str!("../fixtures/bad_waiver.rs"),
    },
    Fixture {
        name: "bad_sync_facade.rs",
        path: "crates/service/src/ingest.rs",
        expect_rule: "sync-facade",
        source: include_str!("../fixtures/bad_sync_facade.rs"),
    },
    Fixture {
        name: "bad_stale_waiver.rs",
        path: "crates/core/src/bad_stale_waiver.rs",
        expect_rule: "stale-waiver",
        source: include_str!("../fixtures/bad_stale_waiver.rs"),
    },
];

/// Runs the known-bad fixture suite. Returns the list of fixtures that
/// FAILED to produce their expected violation (empty = self-test
/// passes).
pub fn self_test() -> Vec<&'static str> {
    FIXTURES
        .iter()
        .filter(|f| {
            let analysis = analyze(f.path, f.source);
            !analysis.violations.iter().any(|v| v.rule == f.expect_rule)
        })
        .map(|f| f.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every known-bad fixture must trip its rule — the self-test the
    /// CI step runs, wired as a unit test too so `cargo test` alone
    /// catches a no-op'd rule.
    #[test]
    fn every_fixture_fires_its_rule() {
        let failures = self_test();
        assert!(
            failures.is_empty(),
            "fixtures did not produce their expected violations: {failures:?}"
        );
    }

    /// Fixture findings are precise: the expected rule fires at the
    /// marked line, not just somewhere in the file.
    #[test]
    fn fixture_violations_anchor_to_marked_lines() {
        for fixture in FIXTURES {
            let analysis = analyze(fixture.path, fixture.source);
            // Every fixture marks its bad lines with `BAD` in a
            // trailing comment; collect them from the raw source.
            let bad_lines: Vec<u32> = fixture
                .source
                .lines()
                .enumerate()
                .filter(|(_, l)| l.contains("~BAD~"))
                .map(|(i, _)| i as u32 + 1)
                .collect();
            assert!(
                !bad_lines.is_empty(),
                "{}: fixture has no ~BAD~ markers",
                fixture.name
            );
            for line in bad_lines {
                assert!(
                    analysis
                        .violations
                        .iter()
                        .any(|v| v.line == line && v.rule == fixture.expect_rule),
                    "{}: expected a {} violation at line {line}, got {:?}",
                    fixture.name,
                    fixture.expect_rule,
                    analysis.violations
                );
            }
        }
    }

    /// A reasoned waiver suppresses the violation and lands in the
    /// waived audit trail; the same code without a reason stays a
    /// violation *plus* a waiver audit.
    #[test]
    fn reasoned_waivers_suppress_and_audit() {
        let src = "\
// lint-allow(det-wallclock): deadline math, excluded from bits
fn f() { let t = Instant::now(); }
";
        let analysis = analyze("crates/core/src/x.rs", src);
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
        assert_eq!(analysis.waived.len(), 1);
        assert_eq!(analysis.waived[0].rule, "det-wallclock");

        let src = "\
// lint-allow(det-wallclock)
fn f() { let t = Instant::now(); }
";
        let analysis = analyze("crates/core/src/x.rs", src);
        let rules: Vec<&str> = analysis.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"waiver"), "reasonless waiver not audited");
        assert!(
            rules.contains(&"det-wallclock"),
            "reasonless waiver must not suppress"
        );
    }

    /// A waiver for rule A does not suppress rule B, and unknown rule
    /// names are flagged.
    #[test]
    fn waivers_are_rule_scoped_and_names_checked() {
        let src = "\
// lint-allow(det-rng): wrong rule for this line
fn f() { let t = Instant::now(); }
// lint-allow(not-a-rule): whatever
fn g() {}
";
        let analysis = analyze("crates/core/src/x.rs", src);
        let rules: Vec<&str> = analysis.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"det-wallclock"));
        assert!(rules.contains(&"waiver"));
    }

    /// `sync-facade` is scoped to the atomic protocol files: a direct
    /// `std::sync` primitive is a violation there, fine elsewhere, and
    /// non-primitive items (`Arc`) are always allowed.
    #[test]
    fn sync_facade_scoping() {
        let src = "\
use std::sync::Arc;
use std::sync::{Mutex, Condvar};
fn f() { std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst); }
";
        let analysis = analyze("crates/service/src/ingest.rs", src);
        let lines: Vec<u32> = analysis
            .violations
            .iter()
            .filter(|v| v.rule == "sync-facade")
            .map(|v| v.line)
            .collect();
        // (`Mutex` and `Condvar` both fire on line 2, but findings
        // collapse to one per rule+line.)
        assert_eq!(lines, vec![2, 3], "{:?}", analysis.violations);

        let elsewhere = analyze("crates/service/src/engine.rs", src);
        assert!(
            !elsewhere.violations.iter().any(|v| v.rule == "sync-facade"),
            "sync-facade must only apply to the protocol files"
        );

        let gated = "\
#[cfg(test)]
mod tests {
    use std::sync::Mutex;
}
";
        assert!(
            analyze("crates/service/src/ingest.rs", gated)
                .violations
                .is_empty(),
            "test regions drive the ring; they are not part of its protocol"
        );
    }

    /// A well-formed waiver that no longer suppresses anything is
    /// reported as `stale-waiver`; the same waiver with a live
    /// violation under it stays a plain waived entry.
    #[test]
    fn stale_waivers_are_flagged_and_live_ones_are_not() {
        let stale = "\
// lint-allow(det-wallclock): excused code was refactored away
fn f(x: u64) -> u64 { x }
";
        let analysis = analyze("crates/core/src/x.rs", stale);
        assert!(
            analysis
                .violations
                .iter()
                .any(|v| v.rule == "stale-waiver" && v.line == 1),
            "{:?}",
            analysis.violations
        );

        let live = "\
// lint-allow(det-wallclock): deadline math, excluded from bits
fn f() { let t = Instant::now(); }
";
        let analysis = analyze("crates/core/src/x.rs", live);
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
        assert_eq!(analysis.waived.len(), 1);

        // Malformed waivers are `waiver` violations, not double-counted
        // as stale.
        let reasonless = "\
// lint-allow(det-wallclock)
fn f(x: u64) -> u64 { x }
";
        let analysis = analyze("crates/core/src/x.rs", reasonless);
        let rules: Vec<&str> = analysis.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["waiver"], "{:?}", analysis.violations);
    }

    /// Rules respect their path scoping: the same source is clean in
    /// an allow-listed tool crate and dirty in a deterministic module;
    /// test regions are exempt from the determinism rules.
    #[test]
    fn path_and_test_scoping() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(analyze("crates/bench/src/x.rs", src).violations.is_empty());
        assert!(!analyze("crates/core/src/x.rs", src).violations.is_empty());
        assert!(analyze("tests/integration.rs", src).violations.is_empty());

        let gated = "\
#[cfg(test)]
mod tests {
    fn f() { let t = Instant::now(); }
}
";
        assert!(
            analyze("crates/core/src/x.rs", gated).violations.is_empty(),
            "cfg(test) regions must be exempt from det-wallclock"
        );
    }

    /// Strings and comments never produce violations — the reason this
    /// pass owns a real lexer instead of grepping.
    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r##"
// Instant::now() in a comment, thread_rng too.
fn f() {
    let s = "Instant::now() thread_rng unsafe partial_cmp";
    let r = r#"SystemTime"# ;
    let c = '{';
}
"##;
        let analysis = analyze("crates/core/src/x.rs", src);
        assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
    }

    /// The JSON report carries the v1 schema tag and per-rule counts.
    #[test]
    fn report_schema() {
        let report = LintReport {
            files_scanned: 3,
            violations: vec![FileViolation {
                file: "crates/core/src/x.rs".into(),
                violation: Violation {
                    rule: "det-wallclock",
                    line: 7,
                    message: "m".into(),
                },
            }],
            waived: vec![],
        };
        let value = report.to_value();
        assert_eq!(
            value.get("schema"),
            Some(&Value::String("maps-lint/v1".into()))
        );
        assert_eq!(value.get("files_scanned"), Some(&Value::Number(3.0)));
        let rules = value.get("rules").unwrap();
        assert_eq!(
            rules.get("det-wallclock").unwrap().get("violations"),
            Some(&Value::Number(1.0))
        );
        // Renders to JSON without error.
        let text = serde_json::to_string(&value).unwrap();
        assert!(text.contains("maps-lint/v1"));
    }

    /// The real workspace must scan clean — the library-level version
    /// of the CI gate (every pre-existing violation is fixed or carries
    /// a reasoned waiver).
    #[test]
    fn workspace_scans_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = scan_workspace(&root).expect("workspace scan");
        assert!(report.files_scanned > 50, "walker lost the workspace");
        let rendered: Vec<String> = report
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{}:{} [{}] {}",
                    v.file, v.violation.line, v.violation.rule, v.violation.message
                )
            })
            .collect();
        assert!(
            report.is_clean(),
            "workspace has lint violations:\n{}",
            rendered.join("\n")
        );
    }
}
