//! `maps-lint` CLI: scan the workspace (or `--self-test` the rules).
//!
//! Exit codes: `0` clean, `1` violations found (or self-test failure),
//! `2` usage / I/O error. CI runs both modes before the build:
//!
//! ```text
//! cargo run --release -p maps-lint              # workspace must be clean
//! cargo run --release -p maps-lint -- --self-test   # known-bad must stay bad
//! cargo run --release -p maps-lint -- --json lint.json
//! ```

use maps_lint::{scan_workspace, self_test, FIXTURES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: maps-lint [--root DIR] [--json OUT] [--self-test]\n\
         \n\
         Scans every workspace .rs file for determinism & concurrency\n\
         contract violations. --self-test instead runs the known-bad\n\
         fixture suite (each fixture must fail). --json writes the\n\
         maps-lint/v1 report to OUT."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut run_self_test = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--self-test" => run_self_test = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if run_self_test {
        let failures = self_test();
        if failures.is_empty() {
            println!(
                "maps-lint self-test: all {} known-bad fixtures produced their expected violations",
                FIXTURES.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "maps-lint self-test FAILED: {} fixture(s) did not trip their rule:",
            failures.len()
        );
        for name in failures {
            eprintln!("  {name}");
        }
        return ExitCode::from(1);
    }

    // Default root: the workspace containing this crate, so
    // `cargo run -p maps-lint` does the right thing from any cwd.
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    let report = match scan_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("maps-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json_out {
        let value = report.to_value();
        let rendered = match serde_json::to_string(&value) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("maps-lint: failed to render JSON report: {err:?}");
                return ExitCode::from(2);
            }
        };
        if let Err(err) = std::fs::write(&path, rendered) {
            eprintln!("maps-lint: failed to write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    for v in &report.violations {
        eprintln!(
            "{}:{}: [{}] {}",
            v.file, v.violation.line, v.violation.rule, v.violation.message
        );
    }
    println!(
        "maps-lint: {} files scanned, {} violation(s), {} waived",
        report.files_scanned,
        report.violations.len(),
        report.waived.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
