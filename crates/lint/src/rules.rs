//! The seven repo-specific rules and the waiver machinery.
//!
//! Each rule encodes one clause of the ROADMAP's standing invariants as
//! a token-pattern check (see the crate docs for the rule table). Rules
//! are scoped by path class:
//!
//! * **Deterministic modules** — the crates whose state feeds
//!   `Outcome::deterministic_bits` (core, matching, market, spatial,
//!   telemetry, service, simulator). `det-collections` and
//!   `float-total-order` apply here.
//! * **Wall-clock allow-list** — bench/testkit/lint, the tools that
//!   *measure* the system rather than being part of it. `det-wallclock`
//!   applies everywhere else.
//! * **Atomic protocol files** — the files implementing lock-free
//!   protocols (`service/src/ingest.rs`, `simulator/src/alloc.rs`).
//!   `atomic-ordering` applies there.
//! * Test code (`#[cfg(test)]`/`#[test]` regions, `tests/`, `examples/`,
//!   `benches/`) is exempt from the determinism rules — a test may time
//!   itself — but **not** from `unsafe-safety`, which applies to every
//!   line of the workspace.

use crate::lexer::{self, Token, TokenKind};

/// Every rule the pass knows. A waiver naming anything else is itself
/// a violation (`waiver` pseudo-rule) — so a typo cannot silently
/// disable enforcement.
pub const RULES: &[&str] = &[
    "det-collections",
    "det-wallclock",
    "det-rng",
    "atomic-ordering",
    "sync-facade",
    "unsafe-safety",
    "float-total-order",
];

/// One finding, anchored to a file line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule name (one of [`RULES`], or `waiver` for waiver-audit
    /// findings).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// A violation that was suppressed by a reasoned waiver (still
/// reported, for the JSON audit trail).
#[derive(Debug, Clone)]
pub struct Waived {
    /// The waived rule.
    pub rule: &'static str,
    /// Line of the waived violation.
    pub line: u32,
    /// The waiver's stated reason.
    pub reason: String,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Surviving (unwaived) violations.
    pub violations: Vec<Violation>,
    /// Violations suppressed by reasoned waivers.
    pub waived: Vec<Waived>,
}

const DETERMINISTIC_PATHS: &[&str] = &[
    "crates/core/src/",
    "crates/matching/src/",
    "crates/market/src/",
    "crates/spatial/src/",
    "crates/telemetry/src/",
    "crates/service/src/",
    "crates/simulator/src/",
];

const WALLCLOCK_ALLOWED: &[&str] = &["crates/bench/", "crates/testkit/", "crates/lint/"];

const RNG_ALLOWED: &[&str] = &["crates/testkit/"];

const ATOMIC_PROTOCOL_FILES: &[&str] = &[
    "crates/service/src/ingest.rs",
    "crates/simulator/src/alloc.rs",
];

/// Map/set methods whose visit order is the hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
        || path.contains("/benches/")
}

fn is_deterministic_path(path: &str) -> bool {
    DETERMINISTIC_PATHS.iter().any(|p| path.starts_with(p))
}

fn wallclock_allowed(path: &str) -> bool {
    WALLCLOCK_ALLOWED.iter().any(|p| path.starts_with(p))
}

fn rng_allowed(path: &str) -> bool {
    RNG_ALLOWED.iter().any(|p| path.starts_with(p))
}

fn is_atomic_protocol_file(path: &str) -> bool {
    ATOMIC_PROTOCOL_FILES.contains(&path)
}

/// Analyzes one file's source under every applicable rule and applies
/// waivers. `path` is workspace-relative with `/` separators — the
/// rules' scoping is entirely path-driven, which is what lets fixture
/// snippets impersonate any module.
pub fn analyze(path: &str, src: &str) -> FileAnalysis {
    let tokens = lexer::lex(src);
    let test_regions = lexer::test_lines(&tokens);
    let comments: Vec<&Token> = tokens.iter().filter(|t| t.is_comment()).collect();
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let in_test = |line: u32| is_test_path(path) || lexer::in_regions(&test_regions, line);

    let mut raw: Vec<Violation> = Vec::new();
    rule_unsafe_safety(&code, &comments, &mut raw);
    if is_atomic_protocol_file(path) {
        rule_atomic_ordering(&code, &comments, &in_test, &mut raw);
        rule_sync_facade(&code, &in_test, &mut raw);
    }
    if !wallclock_allowed(path) {
        rule_det_wallclock(&code, &in_test, &mut raw);
    }
    if !rng_allowed(path) {
        rule_det_rng(&code, &mut raw);
    }
    if is_deterministic_path(path) {
        rule_det_collections(&code, &in_test, &mut raw);
        rule_float_total_order(&code, &in_test, &mut raw);
    }

    // One finding per (rule, line) — overlapping patterns (e.g. a
    // float sort whose comparator also chains .unwrap()) collapse.
    raw.sort_by(|a, b| (a.rule, a.line).cmp(&(b.rule, b.line)));
    raw.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);

    apply_waivers(&tokens, raw)
}

/// Splits raw findings into surviving vs. waived, and audits the
/// waiver comments themselves: a reason is required, the rule name must
/// exist, and — the `stale-waiver` audit — a well-formed waiver whose
/// covered lines no longer trip its rule is itself a violation. A stale
/// waiver is a license nobody is using: the code it excused was fixed
/// or moved, and leaving it behind silently pre-authorizes the next
/// regression on that line.
fn apply_waivers(tokens: &[Token], raw: Vec<Violation>) -> FileAnalysis {
    let waiver_comments = lexer::waivers(tokens);
    let mut out = FileAnalysis::default();

    for w in &waiver_comments {
        if !RULES.contains(&w.rule.as_str()) {
            out.violations.push(Violation {
                rule: "waiver",
                line: w.line,
                message: format!(
                    "waiver names unknown rule `{}` (known: {})",
                    w.rule,
                    RULES.join(", ")
                ),
            });
        } else if w.reason.is_empty() {
            out.violations.push(Violation {
                rule: "waiver",
                line: w.line,
                message: format!(
                    "waiver for `{}` has no reason — `// lint-allow({}): <why>` is required",
                    w.rule, w.rule
                ),
            });
        }
    }

    let mut used = vec![false; waiver_comments.len()];
    for v in raw {
        // A waiver covers its own line (trailing comment) and the line
        // directly below it.
        let waiver = waiver_comments.iter().position(|w| {
            w.rule == v.rule && !w.reason.is_empty() && (w.line == v.line || w.line + 1 == v.line)
        });
        match waiver {
            Some(i) => {
                used[i] = true;
                out.waived.push(Waived {
                    rule: v.rule,
                    line: v.line,
                    reason: waiver_comments[i].reason.clone(),
                });
            }
            None => out.violations.push(v),
        }
    }

    // Well-formed waivers that suppressed nothing are stale. Malformed
    // ones (unknown rule / missing reason) are already violations above
    // and could never have matched, so they are excluded here.
    for (w, used) in waiver_comments.iter().zip(&used) {
        if !used && RULES.contains(&w.rule.as_str()) && !w.reason.is_empty() {
            out.violations.push(Violation {
                rule: "stale-waiver",
                line: w.line,
                message: format!(
                    "waiver for `{}` no longer matches a violation on its covered lines \
                     (line {} or {}) — the excused code was fixed or moved; delete the waiver",
                    w.rule,
                    w.line,
                    w.line + 1
                ),
            });
        }
    }
    out
}

/// Is there a comment containing `needle` adjacent to `line` — trailing
/// on the line itself, or in the contiguous comment run ending on the
/// line directly above?
fn has_adjacent_comment(comments: &[&Token], line: u32, needle: &str) -> bool {
    // Trailing on the same line.
    if comments
        .iter()
        .any(|c| c.line == line && c.text.contains(needle))
    {
        return true;
    }
    // Comment run ending at line - 1: walk the chain of comments on
    // consecutive lines upward, accepting the needle anywhere in it.
    let mut target = line.saturating_sub(1);
    loop {
        let Some(c) = comments.iter().find(|c| c.end_line == target) else {
            return false;
        };
        if c.text.contains(needle) {
            return true;
        }
        if c.line == 0 {
            return false;
        }
        target = c.line - 1;
    }
}

/// `unsafe-safety`: every `unsafe` keyword (block, fn, impl, trait)
/// needs an immediately-preceding `// SAFETY:` comment. Applies to all
/// code, tests included — an undocumented unsafe block in a test is
/// still an undocumented proof obligation.
fn rule_unsafe_safety(code: &[&Token], comments: &[&Token], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !has_adjacent_comment(comments, t.line, "SAFETY:") {
            let what = code
                .get(i + 1)
                .map(|n| n.text.as_str())
                .unwrap_or("")
                .to_string();
            let site = match what.as_str() {
                "fn" => "`unsafe fn` (document the caller contract)",
                "impl" => "`unsafe impl` (document why the invariants hold)",
                "trait" => "`unsafe trait`",
                _ => "`unsafe` block",
            };
            out.push(Violation {
                rule: "unsafe-safety",
                line: t.line,
                message: format!("{site} without an immediately-preceding `// SAFETY:` comment"),
            });
        }
    }
}

/// `atomic-ordering`: in the lock-free protocol files, (a) every
/// `Ordering::Relaxed` access and every `fence(…)` carries an adjacent
/// `// ordering:` justification, and (b) a `Release` store of a field
/// must be paired with an `Acquire` (or `SeqCst`) load of the same
/// field somewhere in the file, and vice versa — an unpaired half of a
/// publication protocol synchronizes nothing.
fn rule_atomic_ordering(
    code: &[&Token],
    comments: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    use std::collections::BTreeMap;
    // (a) justification comments for Relaxed and fences.
    for i in 0..code.len() {
        if in_test(code[i].line) {
            continue;
        }
        let relaxed = path_match(code, i, &["Ordering", ":", ":", "Relaxed"]);
        let fence = code[i].text == "fence"
            && code[i].kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|t| t.text == "(");
        if relaxed && !has_adjacent_comment(comments, code[i + 3].line, "ordering:") {
            out.push(Violation {
                rule: "atomic-ordering",
                line: code[i + 3].line,
                message: "`Ordering::Relaxed` without an adjacent `// ordering:` justification"
                    .to_string(),
            });
        }
        if fence && !has_adjacent_comment(comments, code[i].line, "ordering:") {
            out.push(Violation {
                rule: "atomic-ordering",
                line: code[i].line,
                message: "`fence(…)` without an adjacent `// ordering:` justification".to_string(),
            });
        }
    }

    // (b) Release-store / Acquire-load pairing per atomic field.
    #[derive(Default)]
    struct Access {
        stores: Vec<(String, u32)>,
        loads: Vec<(String, u32)>,
    }
    let mut fields: BTreeMap<String, Access> = BTreeMap::new();
    for i in 0..code.len() {
        if in_test(code[i].line) {
            continue;
        }
        let op = code[i].text.as_str();
        if (op != "load" && op != "store")
            || code[i].kind != TokenKind::Ident
            || code.get(i + 1).map(|t| t.text.as_str()) != Some("(")
        {
            continue;
        }
        // Receiver: `field.load(…)`, `self.field.load(…)`, or the
        // CachePadded shape `self.field.0.load(…)`.
        if i < 2 || code[i - 1].text != "." {
            continue;
        }
        let mut r = i - 2;
        if code[r].text == "0" && r >= 2 && code[r - 1].text == "." {
            r -= 2;
        }
        if code[r].kind != TokenKind::Ident {
            continue;
        }
        let field = code[r].text.clone();
        // First `Ordering::X` inside the call's parentheses.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut ordering = None;
        while j < code.len() {
            match code[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "Ordering"
                    if path_match(code, j, &["Ordering", ":", ":"]) && ordering.is_none() =>
                {
                    ordering = code.get(j + 3).map(|t| t.text.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let Some(ordering) = ordering else { continue };
        let entry = fields.entry(field).or_default();
        let rec = (ordering, code[i].line);
        if op == "store" {
            entry.stores.push(rec);
        } else {
            entry.loads.push(rec);
        }
    }
    for (field, access) in &fields {
        let has = |side: &[(String, u32)], names: &[&str]| {
            side.iter().any(|(o, _)| names.contains(&o.as_str()))
        };
        if let Some((_, line)) = access
            .stores
            .iter()
            .find(|(o, _)| o == "Release")
            .filter(|_| !has(&access.loads, &["Acquire", "SeqCst"]))
        {
            out.push(Violation {
                rule: "atomic-ordering",
                line: *line,
                message: format!(
                    "`{field}` has a Release store but no Acquire load in this file — \
                     the publication has no observer to synchronize with"
                ),
            });
        }
        if let Some((_, line)) = access
            .loads
            .iter()
            .find(|(o, _)| o == "Acquire")
            .filter(|_| !has(&access.stores, &["Release", "SeqCst"]))
        {
            out.push(Violation {
                rule: "atomic-ordering",
                line: *line,
                message: format!(
                    "`{field}` has an Acquire load but no Release store in this file — \
                     the acquire pairs with nothing"
                ),
            });
        }
    }
}

/// `sync-facade`: the lock-free protocol files must take their
/// synchronization primitives from the crate's sync facade
/// (`crate::sync` in `maps-service`), never from `std::sync` directly —
/// the facade is what lets the *shipping* ring code compile against the
/// `maps-model` tracked types and be exhaustively model-checked. A
/// direct `std::sync::atomic` path (or `std::sync::{Mutex, MutexGuard,
/// Condvar}`) in these files is code the model checker silently cannot
/// see. `Arc`, `OnceLock`, `mpsc` and the other non-protocol items stay
/// allowed; test regions are exempt (tests drive the ring, they are not
/// part of its protocol).
fn rule_sync_facade(code: &[&Token], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Violation>) {
    const TRACKED: &[&str] = &["atomic", "Mutex", "MutexGuard", "Condvar"];
    let flag = |t: &Token, out: &mut Vec<Violation>| {
        out.push(Violation {
            rule: "sync-facade",
            line: t.line,
            message: format!(
                "direct `std::sync::{}` in a model-checked protocol file — import it \
                 through the crate's sync facade so maps-model can track it",
                t.text
            ),
        });
    };
    for i in 0..code.len() {
        if in_test(code[i].line) || !path_match(code, i, &["std", ":", ":", "sync", ":", ":"]) {
            continue;
        }
        let Some(next) = code.get(i + 6) else {
            continue;
        };
        if next.kind == TokenKind::Ident && TRACKED.contains(&next.text.as_str()) {
            flag(next, out);
        } else if next.text == "{" {
            // `use std::sync::{…}` — flag every tracked item in the
            // brace list (depth-aware: `atomic::{…}` nests).
            let mut depth = 0i32;
            for t in &code[i + 6..] {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ if t.kind == TokenKind::Ident && TRACKED.contains(&t.text.as_str()) => {
                        flag(t, out);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// `det-wallclock`: `Instant::now` / `SystemTime` only in the
/// bench/timing allow-list. Wall-clock in a deterministic module is
/// either a latent nondeterminism bug or a timing field that must be
/// excluded from `deterministic_bits` — the waiver reason must say
/// which.
fn rule_det_wallclock(code: &[&Token], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Violation>) {
    for i in 0..code.len() {
        if in_test(code[i].line) {
            continue;
        }
        if path_match(code, i, &["Instant", ":", ":", "now"]) {
            out.push(Violation {
                rule: "det-wallclock",
                line: code[i].line,
                message: "`Instant::now()` outside the bench/timing allow-list".to_string(),
            });
        }
        if code[i].kind == TokenKind::Ident
            && (code[i].text == "SystemTime" || code[i].text == "UNIX_EPOCH")
        {
            out.push(Violation {
                rule: "det-wallclock",
                line: code[i].line,
                message: format!("`{}` outside the bench/timing allow-list", code[i].text),
            });
        }
    }
}

/// `det-rng`: no ambient randomness outside `maps-testkit`. Every
/// random draw in this workspace must come from an explicitly seeded
/// generator, or replay equality is broken by construction. Applies to
/// test code too — a test that cannot be replayed cannot shrink.
fn rule_det_rng(code: &[&Token], out: &mut Vec<Violation>) {
    const AMBIENT: &[&str] = &[
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "OsRng",
        "getrandom",
    ];
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident {
            continue;
        }
        if AMBIENT.contains(&code[i].text.as_str()) {
            out.push(Violation {
                rule: "det-rng",
                line: code[i].line,
                message: format!(
                    "ambient randomness `{}` — derive every RNG from an explicit seed",
                    code[i].text
                ),
            });
        }
        if path_match(code, i, &["rand", ":", ":", "random"]) {
            out.push(Violation {
                rule: "det-rng",
                line: code[i].line,
                message: "`rand::random` draws from the thread RNG — seed explicitly".to_string(),
            });
        }
    }
}

/// `det-collections`: no `HashMap`/`HashSet` *iteration* in the
/// deterministic modules. Bindings typed or initialized as hash
/// collections are tracked through the file; calling an
/// order-exposing method on one (or `for`-looping over one) is the
/// violation — hash iteration order is unspecified, so anything
/// downstream of it cannot be bit-stable.
fn rule_det_collections(code: &[&Token], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Violation>) {
    use std::collections::BTreeSet;
    // Pass 1: names bound to hash collections anywhere in the file
    // (`x: HashMap<…>` fields/params/lets, `x = HashMap::new()`).
    let mut hashy: BTreeSet<String> = BTreeSet::new();
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident
            || (code[i].text != "HashMap" && code[i].text != "HashSet")
        {
            continue;
        }
        // Rewind over a leading path (`std::collections::HashMap`).
        let mut j = i;
        while j >= 3
            && code[j - 1].text == ":"
            && code[j - 2].text == ":"
            && code[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        // Rewind over reference sigils in type position.
        while j >= 1
            && (code[j - 1].text == "&"
                || code[j - 1].text == "mut"
                || code[j - 1].kind == TokenKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && code[j - 1].text == ":" && code[j - 2].kind == TokenKind::Ident {
            // Exclude `::` (path), match only a type ascription colon.
            if j < 3 || code[j - 3].text != ":" {
                hashy.insert(code[j - 2].text.clone());
            }
        } else if j >= 2 && code[j - 1].text == "=" && code[j - 2].kind == TokenKind::Ident {
            hashy.insert(code[j - 2].text.clone());
        }
    }
    if hashy.is_empty() {
        return;
    }
    // Pass 2: order-exposing uses of those names.
    for i in 0..code.len() {
        if in_test(code[i].line) {
            continue;
        }
        if code[i].kind == TokenKind::Ident
            && hashy.contains(&code[i].text)
            && code.get(i + 1).is_some_and(|t| t.text == ".")
            && code
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && code.get(i + 3).is_some_and(|t| t.text == "(")
        {
            out.push(Violation {
                rule: "det-collections",
                line: code[i].line,
                message: format!(
                    "iteration over hash collection `{}` (`.{}`) in a deterministic module — \
                     hash order is unspecified; use a BTreeMap/sorted keys",
                    code[i].text,
                    code[i + 2].text
                ),
            });
        }
        if code[i].kind == TokenKind::Ident && code[i].text == "for" {
            // `for <pat> in <expr> {` — flag a hashy name in <expr>.
            let mut j = i + 1;
            let mut saw_in = false;
            while j < code.len() && j < i + 40 {
                match code[j].text.as_str() {
                    "in" if code[j].kind == TokenKind::Ident => saw_in = true,
                    "{" | ";" => break,
                    _ if saw_in
                        && code[j].kind == TokenKind::Ident
                        && hashy.contains(&code[j].text) =>
                    {
                        out.push(Violation {
                            rule: "det-collections",
                            line: code[j].line,
                            message: format!(
                                "`for` loop over hash collection `{}` in a deterministic \
                                 module — hash order is unspecified",
                                code[j].text
                            ),
                        });
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// `float-total-order`: bare `partial_cmp(…).unwrap()` chains and
/// float comparators built on `partial_cmp` in deterministic modules
/// must route through the repo's total-order keys (`f64::total_cmp`,
/// the `(distance, id)` keys) — `partial_cmp` both panics on NaN *and*
/// calls `-0.0 == +0.0`, which makes sort results input-layout
/// dependent.
fn rule_float_total_order(
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Violation>,
) {
    const SORTERS: &[&str] = &["sort_by", "sort_unstable_by", "min_by", "max_by"];
    for i in 0..code.len() {
        if in_test(code[i].line) || code[i].kind != TokenKind::Ident {
            continue;
        }
        if code[i].text == "partial_cmp" {
            if i > 0 && code[i - 1].text == "fn" {
                continue; // a PartialOrd impl, not a call site
            }
            if let Some(close) = matching_paren(code, i + 1) {
                if code.get(close + 1).is_some_and(|t| t.text == ".")
                    && code
                        .get(close + 2)
                        .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
                {
                    out.push(Violation {
                        rule: "float-total-order",
                        line: code[i].line,
                        message: "`partial_cmp(…).unwrap()` in a deterministic module — \
                                  route through `f64::total_cmp` or a total-order key"
                            .to_string(),
                    });
                }
            }
        }
        if SORTERS.contains(&code[i].text.as_str()) {
            if let Some(close) = matching_paren(code, i + 1) {
                if code[i + 1..close]
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == "partial_cmp")
                {
                    out.push(Violation {
                        rule: "float-total-order",
                        line: code[i].line,
                        message: format!(
                            "float `{}` comparator built on `partial_cmp` in a deterministic \
                             module — use `f64::total_cmp` or a total-order key",
                            code[i].text
                        ),
                    });
                }
            }
        }
    }
}

/// Do the code tokens starting at `i` spell out `pattern` (idents and
/// single-byte puncts)?
fn path_match(code: &[&Token], i: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        code.get(i + k)
            .is_some_and(|t| t.text == *want && !t.is_comment())
    })
}

/// Index of the `)` matching an `(` expected at `open`; `None` when
/// `open` is not a `(`.
fn matching_paren(code: &[&Token], open: usize) -> Option<usize> {
    if code.get(open).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}
