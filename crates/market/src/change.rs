//! Change detection for acceptance ratios (Sec. 4.2.2).
//!
//! The paper: *"we flag a change if the number of accepted requesters is
//! not within `m·Ŝ^g(p) ± 2√(m·Ŝ^g(p)(1 − Ŝ^g(p)))` for `m` requesters,
//! where `Ŝ^g(p)` is the acceptance ratio for the previous `m`
//! requesters"*. That is a two-sigma binomial deviation test over
//! tumbling windows of `m` observations per (grid, price).

/// Per-price tumbling-window change detector for one grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeDetector {
    window: u64,
    /// Ŝ from the previous completed window, per ladder position.
    prev_ratio: Vec<Option<f64>>,
    /// Current window tallies, per ladder position.
    cur_tested: Vec<u64>,
    cur_accepted: Vec<u64>,
}

impl ChangeDetector {
    /// Creates a detector with tumbling windows of `window` observations
    /// for each of `n_prices` ladder positions.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(n_prices: usize, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            prev_ratio: vec![None; n_prices],
            cur_tested: vec![0; n_prices],
            cur_accepted: vec![0; n_prices],
        }
    }

    /// Window length `m`.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Feeds one observation for ladder position `idx`; returns `true`
    /// when the just-completed window deviates significantly from the
    /// previous one (the caller should then reset its estimator for that
    /// price).
    pub fn observe(&mut self, idx: usize, accepted: bool) -> bool {
        self.cur_tested[idx] += 1;
        self.cur_accepted[idx] += u64::from(accepted);
        if self.cur_tested[idx] < self.window {
            return false;
        }
        // Window complete: test against the previous window's ratio.
        let m = self.window as f64;
        let acc = self.cur_accepted[idx] as f64;
        let ratio = acc / m;
        let flagged = match self.prev_ratio[idx] {
            None => false,
            Some(s_prev) => {
                let expected = m * s_prev;
                let band = 2.0 * (m * s_prev * (1.0 - s_prev)).sqrt();
                (acc - expected).abs() > band
            }
        };
        self.prev_ratio[idx] = Some(ratio);
        self.cur_tested[idx] = 0;
        self.cur_accepted[idx] = 0;
        flagged
    }

    /// Feeds a batch; returns `true` if any completed window flagged.
    pub fn observe_batch(&mut self, idx: usize, tested: u64, accepted: u64) -> bool {
        assert!(accepted <= tested, "accepted {accepted} > tested {tested}");
        // Spread acceptances evenly across the batch (Bresenham-style);
        // the tumbling-window statistics only depend on per-window counts.
        let mut flagged = false;
        for i in 0..tested {
            let accept_now = (i * accepted) / tested != ((i + 1) * accepted) / tested;
            flagged |= self.observe(idx, accept_now);
        }
        flagged
    }

    /// Forgets the learned baseline for position `idx` (e.g. after the
    /// caller re-estimated from scratch).
    pub fn reset(&mut self, idx: usize) {
        self.prev_ratio[idx] = None;
        self.cur_tested[idx] = 0;
        self.cur_accepted[idx] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Feeds `n` Bernoulli(q) observations, returns number of flags.
    fn feed(det: &mut ChangeDetector, rng: &mut SmallRng, q: f64, n: u64) -> u32 {
        let mut flags = 0;
        for _ in 0..n {
            if det.observe(0, rng.gen::<f64>() < q) {
                flags += 1;
            }
        }
        flags
    }

    #[test]
    fn first_window_never_flags() {
        let mut det = ChangeDetector::new(1, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        // Exactly one window: no baseline yet → no flag possible.
        assert_eq!(feed(&mut det, &mut rng, 0.9, 10), 0);
    }

    #[test]
    fn stable_distribution_rarely_flags() {
        // The band compares against the *previous window's sample* ratio,
        // so the difference of two windows has variance 2σ² and the 2σ
        // band corresponds to z = √2 ≈ 1.41, i.e. ≈16 % false positives
        // per window. Require the empirical rate to stay near that.
        let mut det = ChangeDetector::new(1, 200);
        let mut rng = SmallRng::seed_from_u64(42);
        let flags = feed(&mut det, &mut rng, 0.7, 200 * 50);
        assert!(flags <= 16, "too many false alarms: {flags}/50 windows");
    }

    #[test]
    fn shifted_distribution_flags_quickly() {
        let mut det = ChangeDetector::new(1, 200);
        let mut rng = SmallRng::seed_from_u64(7);
        // Learn a 0.8 baseline…
        assert_eq!(feed(&mut det, &mut rng, 0.8, 200), 0);
        // …then the market shifts to 0.4: the very next window must flag.
        let flags = feed(&mut det, &mut rng, 0.4, 200);
        assert!(flags >= 1, "shift not detected");
    }

    #[test]
    fn small_shift_within_band_is_tolerated() {
        let mut det = ChangeDetector::new(1, 100);
        let mut rng = SmallRng::seed_from_u64(21);
        let _ = feed(&mut det, &mut rng, 0.80, 100);
        // 0.80 → 0.78 is inside 2σ = 2·√(100·0.8·0.2)/100 = 0.08.
        let flags = feed(&mut det, &mut rng, 0.78, 100);
        assert_eq!(flags, 0);
    }

    #[test]
    fn reset_clears_baseline() {
        let mut det = ChangeDetector::new(1, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = feed(&mut det, &mut rng, 0.9, 100);
        det.reset(0);
        // After reset the next window is a fresh baseline: no flag even
        // for a dramatic shift.
        let flags = feed(&mut det, &mut rng, 0.1, 100);
        assert_eq!(flags, 0);
    }

    #[test]
    fn batch_observation_equivalent_counts() {
        // A batch with the same per-window acceptance count behaves like
        // the sequential feed for flagging purposes.
        let mut det = ChangeDetector::new(1, 10);
        // Baseline window: Ŝ=0.9.
        assert!(!det.observe_batch(0, 10, 9));
        // Next window with 1/10 accepted: |1 − 9| = 8 > 2√(10·0.9·0.1)=1.9.
        assert!(det.observe_batch(0, 10, 1));
    }

    #[test]
    fn per_price_isolation() {
        let mut det = ChangeDetector::new(2, 10);
        assert!(!det.observe_batch(0, 10, 9));
        // Price 1 never saw a baseline; its windows can't flag.
        assert!(!det.observe_batch(1, 10, 0));
        // Price 0 shifts → flags, price 1 stays calm.
        assert!(det.observe_batch(0, 10, 1));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let _ = ChangeDetector::new(1, 0);
    }
}
