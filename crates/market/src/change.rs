//! Change detection for acceptance ratios (Sec. 4.2.2).
//!
//! The paper: *"we flag a change if the number of accepted requesters is
//! not within `m·Ŝ^g(p) ± 2√(m·Ŝ^g(p)(1 − Ŝ^g(p)))` for `m` requesters,
//! where `Ŝ^g(p)` is the acceptance ratio for the previous `m`
//! requesters"*. That is a two-sigma binomial deviation test over
//! tumbling windows of `m` observations per (grid, price).

/// Per-price tumbling-window change detector for one grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeDetector {
    window: u64,
    /// Ŝ from the previous completed window, per ladder position.
    prev_ratio: Vec<Option<f64>>,
    /// Current window tallies, per ladder position.
    cur_tested: Vec<u64>,
    cur_accepted: Vec<u64>,
}

impl ChangeDetector {
    /// Creates a detector with tumbling windows of `window` observations
    /// for each of `n_prices` ladder positions.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(n_prices: usize, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            prev_ratio: vec![None; n_prices],
            cur_tested: vec![0; n_prices],
            cur_accepted: vec![0; n_prices],
        }
    }

    /// Window length `m`.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Feeds one observation for ladder position `idx`; returns `true`
    /// when the just-completed window deviates significantly from the
    /// previous one (the caller should then reset its estimator for that
    /// price).
    pub fn observe(&mut self, idx: usize, accepted: bool) -> bool {
        self.cur_tested[idx] += 1;
        self.cur_accepted[idx] += u64::from(accepted);
        if self.cur_tested[idx] < self.window {
            return false;
        }
        // Window complete: test against the previous window's ratio.
        let m = self.window as f64;
        let acc = self.cur_accepted[idx] as f64;
        let ratio = acc / m;
        let flagged = match self.prev_ratio[idx] {
            None => false,
            Some(s_prev) => {
                let expected = m * s_prev;
                let band = 2.0 * (m * s_prev * (1.0 - s_prev)).sqrt();
                (acc - expected).abs() > band
            }
        };
        self.prev_ratio[idx] = Some(ratio);
        self.cur_tested[idx] = 0;
        self.cur_accepted[idx] = 0;
        flagged
    }

    /// Feeds a batch; returns `true` if any completed window flagged.
    ///
    /// Acceptances are spread evenly across the batch (Bresenham-style:
    /// observation `i` accepts iff `⌊(i+1)·accepted/tested⌋` exceeds
    /// `⌊i·accepted/tested⌋`), and the tumbling-window statistics only
    /// depend on per-window *counts* — so instead of replaying `tested`
    /// individual observations, each completed window is credited with
    /// its exact acceptance count in one step. This costs `O(windows)`
    /// rather than `O(tested)`, and the rank products are taken in
    /// `u128`: the previous `u64` arithmetic overflowed once
    /// `tested · accepted` crossed 2⁶⁴ (batches in the billions),
    /// silently corrupting the accept pattern.
    pub fn observe_batch(&mut self, idx: usize, tested: u64, accepted: u64) -> bool {
        assert!(accepted <= tested, "accepted {accepted} > tested {tested}");
        if tested == 0 {
            return false;
        }
        // Number of accepts among batch observations `[0, upto)`:
        // a telescoping sum of the Bresenham indicator above.
        let accepts_before =
            |upto: u64| -> u64 { ((upto as u128 * accepted as u128) / tested as u128) as u64 };
        let mut flagged = false;
        let mut consumed = 0u64;
        while consumed < tested {
            let room = self.window - self.cur_tested[idx];
            let take = room.min(tested - consumed);
            let acc = accepts_before(consumed + take) - accepts_before(consumed);
            self.cur_tested[idx] += take;
            self.cur_accepted[idx] += acc;
            consumed += take;
            if self.cur_tested[idx] < self.window {
                break; // partial window left open for the next batch
            }
            // Window complete: same deviation test as `observe`.
            let m = self.window as f64;
            let acc = self.cur_accepted[idx] as f64;
            let ratio = acc / m;
            if let Some(s_prev) = self.prev_ratio[idx] {
                let expected = m * s_prev;
                let band = 2.0 * (m * s_prev * (1.0 - s_prev)).sqrt();
                flagged |= (acc - expected).abs() > band;
            }
            self.prev_ratio[idx] = Some(ratio);
            self.cur_tested[idx] = 0;
            self.cur_accepted[idx] = 0;
        }
        flagged
    }

    /// Forgets the learned baseline for position `idx` (e.g. after the
    /// caller re-estimated from scratch).
    pub fn reset(&mut self, idx: usize) {
        self.prev_ratio[idx] = None;
        self.cur_tested[idx] = 0;
        self.cur_accepted[idx] = 0;
    }

    /// Appends the detector's mutable state to a flat `u64` word stream
    /// (per rung: a presence flag + previous-window ratio as raw
    /// [`f64::to_bits`], then the open window's tallies) — the
    /// serialization the crash-recovery checkpoints use. Ratios travel
    /// as bit patterns, so restore is bit-exact.
    pub fn save_words(&self, out: &mut Vec<u64>) {
        out.push(self.prev_ratio.len() as u64);
        for ratio in &self.prev_ratio {
            match ratio {
                Some(r) => {
                    out.push(1);
                    out.push(r.to_bits());
                }
                None => {
                    out.push(0);
                    out.push(0);
                }
            }
        }
        out.extend_from_slice(&self.cur_tested);
        out.extend_from_slice(&self.cur_accepted);
    }

    /// Restores state written by [`ChangeDetector::save_words`],
    /// returning the number of words consumed. Fails on truncation or a
    /// ladder-length mismatch (the snapshot must come from an
    /// identically-configured detector).
    pub fn load_words(&mut self, words: &[u64]) -> Result<usize, &'static str> {
        let k = self.prev_ratio.len();
        let need = 1 + 2 * k + 2 * k;
        let Some(&len) = words.first() else {
            return Err("ChangeDetector state truncated");
        };
        if len as usize != k {
            return Err("ChangeDetector ladder length mismatch");
        }
        if words.len() < need {
            return Err("ChangeDetector state truncated");
        }
        for (i, ratio) in self.prev_ratio.iter_mut().enumerate() {
            let flag = words[1 + 2 * i];
            let bits = words[2 + 2 * i];
            *ratio = match flag {
                0 => None,
                _ => Some(f64::from_bits(bits)),
            };
        }
        self.cur_tested
            .copy_from_slice(&words[1 + 2 * k..1 + 3 * k]);
        self.cur_accepted
            .copy_from_slice(&words[1 + 3 * k..1 + 4 * k]);
        Ok(need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Feeds `n` Bernoulli(q) observations, returns number of flags.
    fn feed(det: &mut ChangeDetector, rng: &mut SmallRng, q: f64, n: u64) -> u32 {
        let mut flags = 0;
        for _ in 0..n {
            if det.observe(0, rng.gen::<f64>() < q) {
                flags += 1;
            }
        }
        flags
    }

    #[test]
    fn first_window_never_flags() {
        let mut det = ChangeDetector::new(1, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        // Exactly one window: no baseline yet → no flag possible.
        assert_eq!(feed(&mut det, &mut rng, 0.9, 10), 0);
    }

    #[test]
    fn stable_distribution_rarely_flags() {
        // The band compares against the *previous window's sample* ratio,
        // so the difference of two windows has variance 2σ² and the 2σ
        // band corresponds to z = √2 ≈ 1.41, i.e. ≈16 % false positives
        // per window. Require the empirical rate to stay near that.
        let mut det = ChangeDetector::new(1, 200);
        let mut rng = SmallRng::seed_from_u64(42);
        let flags = feed(&mut det, &mut rng, 0.7, 200 * 50);
        assert!(flags <= 16, "too many false alarms: {flags}/50 windows");
    }

    #[test]
    fn shifted_distribution_flags_quickly() {
        let mut det = ChangeDetector::new(1, 200);
        let mut rng = SmallRng::seed_from_u64(7);
        // Learn a 0.8 baseline…
        assert_eq!(feed(&mut det, &mut rng, 0.8, 200), 0);
        // …then the market shifts to 0.4: the very next window must flag.
        let flags = feed(&mut det, &mut rng, 0.4, 200);
        assert!(flags >= 1, "shift not detected");
    }

    #[test]
    fn small_shift_within_band_is_tolerated() {
        let mut det = ChangeDetector::new(1, 100);
        let mut rng = SmallRng::seed_from_u64(21);
        let _ = feed(&mut det, &mut rng, 0.80, 100);
        // 0.80 → 0.78 is inside 2σ = 2·√(100·0.8·0.2)/100 = 0.08.
        let flags = feed(&mut det, &mut rng, 0.78, 100);
        assert_eq!(flags, 0);
    }

    #[test]
    fn reset_clears_baseline() {
        let mut det = ChangeDetector::new(1, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = feed(&mut det, &mut rng, 0.9, 100);
        det.reset(0);
        // After reset the next window is a fresh baseline: no flag even
        // for a dramatic shift.
        let flags = feed(&mut det, &mut rng, 0.1, 100);
        assert_eq!(flags, 0);
    }

    #[test]
    fn batch_observation_equivalent_counts() {
        // A batch with the same per-window acceptance count behaves like
        // the sequential feed for flagging purposes.
        let mut det = ChangeDetector::new(1, 10);
        // Baseline window: Ŝ=0.9.
        assert!(!det.observe_batch(0, 10, 9));
        // Next window with 1/10 accepted: |1 − 9| = 8 > 2√(10·0.9·0.1)=1.9.
        assert!(det.observe_batch(0, 10, 1));
    }

    #[test]
    fn per_price_isolation() {
        let mut det = ChangeDetector::new(2, 10);
        assert!(!det.observe_batch(0, 10, 9));
        // Price 1 never saw a baseline; its windows can't flag.
        assert!(!det.observe_batch(1, 10, 0));
        // Price 0 shifts → flags, price 1 stays calm.
        assert!(det.observe_batch(0, 10, 1));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let _ = ChangeDetector::new(1, 0);
    }

    /// The batched path must be exactly equivalent to feeding the
    /// Bresenham accept pattern one observation at a time — same flags,
    /// same detector state — including batches that straddle window
    /// boundaries and leave partial windows open.
    #[test]
    fn observe_batch_equals_sequential_feed() {
        let mut rng = SmallRng::seed_from_u64(99);
        for window in [1u64, 3, 10, 64] {
            let mut batched = ChangeDetector::new(2, window);
            let mut sequential = ChangeDetector::new(2, window);
            for round in 0..200u64 {
                let idx = (round % 2) as usize;
                let tested = rng.gen::<u64>() % (3 * window + 2);
                let accepted = if tested == 0 {
                    0
                } else {
                    rng.gen::<u64>() % (tested + 1)
                };
                let got = batched.observe_batch(idx, tested, accepted);
                let mut want = false;
                for i in 0..tested {
                    let accept_now = (i * accepted) / tested != ((i + 1) * accepted) / tested;
                    want |= sequential.observe(idx, accept_now);
                }
                assert_eq!(
                    got, want,
                    "window {window} round {round}: flag diverged ({tested}/{accepted})"
                );
                assert_eq!(batched, sequential, "window {window} round {round}");
            }
        }
    }

    /// Overflow regression: with `tested · accepted` past 2⁶⁴ the old
    /// `u64` Bresenham products wrapped (panicking in debug, silently
    /// corrupting the accept pattern in release). In exact arithmetic a
    /// constant-ratio stream deviates by at most one acceptance per
    /// window — far inside the two-sigma band — so none of these
    /// billion-observation batches may flag.
    #[test]
    fn observe_batch_large_counts_do_not_overflow() {
        let window = 1u64 << 31;
        let mut det = ChangeDetector::new(1, window);
        // 3 windows' worth in one batch at ratio 2/3: i·accepted reaches
        // ≈ 2.8·10¹⁹ > u64::MAX, the old arithmetic's failure regime.
        let tested = 3 * window;
        let accepted = 1u64 << 32;
        assert!(!det.observe_batch(0, tested, accepted), "baseline flagged");
        // Same ratio again (two more windows): still no flag.
        assert!(!det.observe_batch(0, 2 * window, (accepted / 3) * 2));
        // A genuine shift at the same scale is still caught.
        assert!(det.observe_batch(0, window, window / 4));
    }
}
