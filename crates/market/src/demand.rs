//! Demand (valuation) distributions.
//!
//! Definition 2–3 of the paper: each requester in grid `g` draws a private
//! valuation `v_r` i.i.d. from an unknown distribution with CDF `F^g`; the
//! acceptance ratio of a posted unit price `p` is
//! `S^g(p) = Pr[v_r > p] = 1 − F^g(p)`.
//!
//! Base pricing's guarantees assume `F^g` is a **monotone hazard rate**
//! (MHR) distribution — "MHR distributions are common, which include
//! normal, exponential, and uniform distributions" (Sec. 3.1.1). The
//! synthetic evaluation (Table 3) draws valuations from a Normal
//! distribution conditioned on `[1, 5]`; Appendix D repeats the study with
//! an Exponential. All families here are truncated to a support interval,
//! which preserves log-concavity and hence the MHR property.

use crate::special::{normal_cdf, normal_pdf, normal_quantile};
use rand::Rng;

/// A demand distribution for private valuations `v_r`.
///
/// Implementors must behave like a proper continuous distribution on
/// `support()`: `cdf` non-decreasing from 0 to 1, `pdf` its derivative.
pub trait DemandDistribution {
    /// `F(p) = Pr[v_r ≤ p]`.
    fn cdf(&self, p: f64) -> f64;

    /// Density `F′(p)`.
    fn pdf(&self, p: f64) -> f64;

    /// Support interval `[lo, hi]` (valuations lie inside with prob. 1).
    fn support(&self) -> (f64, f64);

    /// Draws one valuation.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// The acceptance ratio `S(p) = Pr[v_r > p] = 1 − F(p)` (Definition 3).
    fn survival(&self, p: f64) -> f64 {
        (1.0 - self.cdf(p)).clamp(0.0, 1.0)
    }

    /// Hazard rate `F′(p) / (1 − F(p))`; MHR means this is non-decreasing.
    fn hazard(&self, p: f64) -> f64 {
        let s = self.survival(p);
        if s <= 0.0 {
            f64::INFINITY
        } else {
            self.pdf(p) / s
        }
    }

    /// The revenue curve `p · S(p)` whose maximizer is the Myerson
    /// reserve price (Sec. 3.1.1, Fig. 3a).
    fn revenue_curve(&self, p: f64) -> f64 {
        p * self.survival(p)
    }
}

fn assert_interval(lo: f64, hi: f64) {
    assert!(
        lo.is_finite() && hi.is_finite() && lo < hi,
        "support must be a finite non-empty interval, got [{lo}, {hi}]"
    );
}

fn uniform01(rng: &mut dyn rand::RngCore) -> f64 {
    // `&mut dyn RngCore` is itself an Rng; sample in [0, 1).
    (*rng).gen::<f64>()
}

/// Normal distribution conditioned on `[lo, hi]` — the paper's default
/// demand distribution ("We restrict all the v_r to `[1,5]`, so the
/// distribution of v_r is a conditional probability distribution").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    /// Φ((lo−μ)/σ), cached.
    cdf_lo: f64,
    /// Φ((hi−μ)/σ) − Φ((lo−μ)/σ), cached normalizer.
    z: f64,
}

impl TruncatedNormal {
    /// Creates `Normal(mu, sigma)` conditioned on `[lo, hi]`.
    ///
    /// # Panics
    /// Panics on non-positive `sigma`, an empty interval, or an interval
    /// carrying (numerically) zero probability mass.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        assert_interval(lo, hi);
        let cdf_lo = normal_cdf((lo - mu) / sigma);
        let z = normal_cdf((hi - mu) / sigma) - cdf_lo;
        assert!(
            z > 1e-12,
            "truncation interval [{lo},{hi}] has ~zero mass under N({mu},{sigma}²)"
        );
        Self {
            mu,
            sigma,
            lo,
            hi,
            cdf_lo,
            z,
        }
    }

    /// The paper's synthetic demand: `Normal(mu, sigma)` on `[1, 5]`
    /// (Table 3 defaults: `mu = 2.0`, `sigma = 1.0`).
    pub fn paper(mu: f64, sigma: f64) -> Self {
        Self::new(mu, sigma, 1.0, 5.0)
    }

    /// Mean parameter of the parent normal (not the truncated mean).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation of the parent normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl DemandDistribution for TruncatedNormal {
    fn cdf(&self, p: f64) -> f64 {
        if p <= self.lo {
            0.0
        } else if p >= self.hi {
            1.0
        } else {
            ((normal_cdf((p - self.mu) / self.sigma) - self.cdf_lo) / self.z).clamp(0.0, 1.0)
        }
    }

    fn pdf(&self, p: f64) -> f64 {
        if p < self.lo || p > self.hi {
            0.0
        } else {
            normal_pdf((p - self.mu) / self.sigma) / (self.sigma * self.z)
        }
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Inverse-CDF sampling within the truncated mass.
        let u = uniform01(rng);
        let q = self.cdf_lo + u * self.z;
        let x = self.mu + self.sigma * normal_quantile(q);
        x.clamp(self.lo, self.hi)
    }
}

/// Exponential distribution (rate `alpha`) shifted to start at `lo` and
/// conditioned on `[lo, hi]` — used in Appendix D / Fig. 10 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedExponential {
    alpha: f64,
    lo: f64,
    hi: f64,
    /// `1 − e^{−α(hi−lo)}`, cached normalizer.
    z: f64,
}

impl TruncatedExponential {
    /// Creates `lo + Exp(alpha)` conditioned on `[lo, hi]`.
    ///
    /// # Panics
    /// Panics on non-positive `alpha` or an empty interval.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "rate must be positive, got {alpha}");
        assert_interval(lo, hi);
        let z = 1.0 - (-alpha * (hi - lo)).exp();
        Self { alpha, lo, hi, z }
    }

    /// The paper's Appendix-D demand on `[1, 5]` with rate `alpha`
    /// (Fig. 10 varies `alpha ∈ {0.5, 0.75, 1, 1.25, 1.5}`).
    pub fn paper(alpha: f64) -> Self {
        Self::new(alpha, 1.0, 5.0)
    }

    /// The rate parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl DemandDistribution for TruncatedExponential {
    fn cdf(&self, p: f64) -> f64 {
        if p <= self.lo {
            0.0
        } else if p >= self.hi {
            1.0
        } else {
            ((1.0 - (-self.alpha * (p - self.lo)).exp()) / self.z).clamp(0.0, 1.0)
        }
    }

    fn pdf(&self, p: f64) -> f64 {
        if p < self.lo || p > self.hi {
            0.0
        } else {
            self.alpha * (-self.alpha * (p - self.lo)).exp() / self.z
        }
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u = uniform01(rng);
        let x = self.lo - (1.0 - u * self.z).ln() / self.alpha;
        x.clamp(self.lo, self.hi)
    }
}

/// Uniform distribution on `[lo, hi]` (MHR; hazard `1/(hi−p)` increasing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates `U[lo, hi]`.
    ///
    /// # Panics
    /// Panics on an empty interval.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert_interval(lo, hi);
        Self { lo, hi }
    }
}

impl DemandDistribution for Uniform {
    fn cdf(&self, p: f64) -> f64 {
        ((p - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn pdf(&self, p: f64) -> f64 {
        if p < self.lo || p > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.lo + uniform01(rng) * (self.hi - self.lo)
    }
}

/// Closed enum over the supported distribution families, so per-grid
/// demand can be stored in a flat `Vec<Demand>` with static dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Demand {
    /// Truncated Normal (Table 3 default).
    Normal(TruncatedNormal),
    /// Truncated Exponential (Appendix D).
    Exponential(TruncatedExponential),
    /// Uniform.
    Uniform(Uniform),
}

impl Demand {
    /// Paper-default normal demand on `[1,5]`.
    pub fn paper_normal(mu: f64, sigma: f64) -> Self {
        Demand::Normal(TruncatedNormal::paper(mu, sigma))
    }

    /// Paper Appendix-D exponential demand on `[1,5]`.
    pub fn paper_exponential(alpha: f64) -> Self {
        Demand::Exponential(TruncatedExponential::paper(alpha))
    }
}

macro_rules! dispatch {
    ($self:ident, $d:ident => $body:expr) => {
        match $self {
            Demand::Normal($d) => $body,
            Demand::Exponential($d) => $body,
            Demand::Uniform($d) => $body,
        }
    };
}

impl DemandDistribution for Demand {
    fn cdf(&self, p: f64) -> f64 {
        dispatch!(self, d => d.cdf(p))
    }
    fn pdf(&self, p: f64) -> f64 {
        dispatch!(self, d => d.pdf(p))
    }
    fn support(&self) -> (f64, f64) {
        dispatch!(self, d => d.support())
    }
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        dispatch!(self, d => d.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn families() -> Vec<Demand> {
        vec![
            Demand::paper_normal(2.0, 1.0),
            Demand::paper_normal(1.0, 0.5),
            Demand::paper_normal(3.0, 2.5),
            Demand::paper_exponential(1.0),
            Demand::paper_exponential(0.5),
            Demand::Uniform(Uniform::new(1.0, 5.0)),
        ]
    }

    #[test]
    fn cdf_boundary_values() {
        for d in families() {
            let (lo, hi) = d.support();
            assert_eq!(d.cdf(lo), 0.0, "{d:?}");
            assert_eq!(d.cdf(hi), 1.0, "{d:?}");
            assert_eq!(d.cdf(lo - 1.0), 0.0);
            assert_eq!(d.cdf(hi + 1.0), 1.0);
            assert_eq!(d.survival(lo), 1.0);
            assert_eq!(d.survival(hi), 0.0);
        }
    }

    #[test]
    fn cdf_monotone_nondecreasing() {
        for d in families() {
            let (lo, hi) = d.support();
            let mut prev = -1.0;
            for i in 0..=400 {
                let p = lo + (hi - lo) * i as f64 / 400.0;
                let c = d.cdf(p);
                assert!(c + 1e-12 >= prev, "{d:?} not monotone at {p}");
                prev = c;
            }
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        for d in families() {
            let (lo, hi) = d.support();
            let n = 20_000;
            let h = (hi - lo) / n as f64;
            let mut integral = 0.0;
            for i in 0..n {
                let p = lo + (i as f64 + 0.5) * h;
                integral += d.pdf(p) * h;
            }
            assert!((integral - 1.0).abs() < 1e-3, "{d:?}: ∫pdf = {integral}");
        }
    }

    #[test]
    fn pdf_matches_cdf_derivative() {
        for d in families() {
            let (lo, hi) = d.support();
            for i in 1..20 {
                let p = lo + (hi - lo) * i as f64 / 20.0;
                if p + 1e-5 > hi {
                    continue;
                }
                let numeric = (d.cdf(p + 1e-5) - d.cdf(p - 1e-5)) / 2e-5;
                assert!(
                    (numeric - d.pdf(p)).abs() < 1e-3,
                    "{d:?} at {p}: dF={numeric} pdf={}",
                    d.pdf(p)
                );
            }
        }
    }

    #[test]
    fn hazard_rate_is_monotone_nondecreasing() {
        // The MHR property Sec. 3.1.1 relies on.
        for d in families() {
            let (lo, hi) = d.support();
            let mut prev = 0.0;
            for i in 1..=380 {
                // stop short of hi where hazard → ∞ numerically
                let p = lo + (hi - lo) * i as f64 / 400.0;
                let h = d.hazard(p);
                assert!(
                    h + 1e-9 >= prev,
                    "{d:?} hazard decreasing at p={p}: {h} < {prev}"
                );
                prev = h;
            }
        }
    }

    #[test]
    fn samples_lie_in_support_and_match_cdf() {
        let mut rng = SmallRng::seed_from_u64(7);
        for d in families() {
            let (lo, hi) = d.support();
            let n = 20_000;
            let mid = 0.5 * (lo + hi);
            let mut below = 0usize;
            for _ in 0..n {
                let v = d.sample(&mut rng);
                assert!((lo..=hi).contains(&v), "{d:?} sample {v} out of support");
                if v <= mid {
                    below += 1;
                }
            }
            let emp = below as f64 / n as f64;
            let want = d.cdf(mid);
            assert!(
                (emp - want).abs() < 0.02,
                "{d:?}: empirical F(mid)={emp} vs {want}"
            );
        }
    }

    #[test]
    fn survival_at_table1_prices_is_plausible() {
        // Table 1 of the paper: S(1)=0.9, S(2)=0.8, S(3)=0.5. A truncated
        // normal with mu≈3, sigma≈1.3 approximates that shape; sanity-check
        // that our machinery produces a decreasing S over {1,2,3}.
        let d = Demand::paper_normal(3.0, 1.3);
        let s1 = d.survival(1.0);
        let s2 = d.survival(2.0);
        let s3 = d.survival(3.0);
        assert!(s1 > s2 && s2 > s3, "{s1} > {s2} > {s3} expected");
        assert_eq!(d.survival(1.0), 1.0); // lo of support: everyone accepts
    }

    #[test]
    fn revenue_curve_unimodal_on_mhr() {
        // p·S(p) must rise then fall (Fig. 3a) — verify no second mode.
        for d in families() {
            let (lo, hi) = d.support();
            let mut values = Vec::new();
            for i in 0..=400 {
                let p = lo + (hi - lo) * i as f64 / 400.0;
                values.push(d.revenue_curve(p));
            }
            let mut increasing_after_peak = false;
            let mut peaked = false;
            for w in values.windows(2) {
                if w[1] < w[0] - 1e-9 {
                    peaked = true;
                } else if peaked && w[1] > w[0] + 1e-6 {
                    increasing_after_peak = true;
                }
            }
            assert!(!increasing_after_peak, "{d:?}: revenue curve not unimodal");
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_bad_sigma() {
        let _ = TruncatedNormal::new(2.0, 0.0, 1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_bad_rate() {
        let _ = TruncatedExponential::new(-1.0, 1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "non-empty interval")]
    fn rejects_empty_interval() {
        let _ = Uniform::new(5.0, 1.0);
    }
}
