//! Acceptance-ratio estimators.
//!
//! Two learners, both keyed by ladder position so statistics flow from the
//! base-pricing phase (Algorithm 1) into MAPS (Algorithm 3) unchanged:
//!
//! * [`FreqEstimator`] — plain frequency estimation with the Hoeffding
//!   sample-size schedule `h(p) = ⌈(2p²/ε²)·ln(2k/δ)⌉` of Algorithm 1
//!   line 5 (Theorem 2's PAC guarantee).
//! * [`UcbStats`] — the upper-confidence-bound statistics of Sec. 4.2.2:
//!   sample mean `Ŝ(p)` plus confidence radius `√(2·ln N / N(p))`, where
//!   `N` counts all requesters seen in the grid and `N(p)` the times price
//!   `p` was offered. The radius is **zero** when `N(p) = 0` — the paper
//!   relies on the base-pricing phase for seeding rather than forced
//!   exploration.

/// Frequency (sample-mean) estimator for one grid's acceptance ratios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqEstimator {
    tested: Vec<u64>,
    accepted: Vec<u64>,
}

impl FreqEstimator {
    /// Creates an estimator over `n_prices` ladder positions.
    pub fn new(n_prices: usize) -> Self {
        Self {
            tested: vec![0; n_prices],
            accepted: vec![0; n_prices],
        }
    }

    /// Algorithm 1 line 5: the number of probes for price `p`,
    /// `h(p) = ⌈(2p²/ε²)·ln(2k/δ)⌉`.
    ///
    /// Example 4 of the paper: `p=1, ε=0.2, δ=0.01, k=4 → h = 335`.
    pub fn required_samples(p: f64, epsilon: f64, delta: f64, k: usize) -> u64 {
        assert!(p > 0.0 && epsilon > 0.0 && delta > 0.0 && k > 0);
        ((2.0 * p * p / (epsilon * epsilon)) * (2.0 * k as f64 / delta).ln()).ceil() as u64
    }

    /// Records a batch of probes at ladder position `idx`.
    ///
    /// # Panics
    /// Panics if `accepted > tested` or `idx` is out of range.
    pub fn record(&mut self, idx: usize, tested: u64, accepted: u64) {
        assert!(accepted <= tested, "accepted {accepted} > tested {tested}");
        self.tested[idx] += tested;
        self.accepted[idx] += accepted;
    }

    /// Number of probes so far at position `idx`.
    pub fn tested(&self, idx: usize) -> u64 {
        self.tested[idx]
    }

    /// Sample mean `Ŝ(p)` at position `idx`; `None` before any probe.
    pub fn s_hat(&self, idx: usize) -> Option<f64> {
        (self.tested[idx] > 0).then(|| self.accepted[idx] as f64 / self.tested[idx] as f64)
    }

    /// Number of ladder positions tracked.
    pub fn len(&self) -> usize {
        self.tested.len()
    }

    /// Whether no positions are tracked.
    pub fn is_empty(&self) -> bool {
        self.tested.is_empty()
    }
}

/// UCB statistics for one grid (Sec. 4.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UcbStats {
    /// `N(p)`: probes per ladder position.
    n: Vec<u64>,
    /// accepted probes per ladder position.
    accepted: Vec<u64>,
    /// `N`: total requesters observed in this grid so far.
    n_total: u64,
}

impl UcbStats {
    /// Creates zeroed statistics over `n_prices` ladder positions.
    pub fn new(n_prices: usize) -> Self {
        Self {
            n: vec![0; n_prices],
            accepted: vec![0; n_prices],
            n_total: 0,
        }
    }

    /// Seeds from a base-pricing estimator (the paper feeds Algorithm 1's
    /// samples into MAPS through the shared statistics `P`).
    pub fn seed_from(&mut self, freq: &FreqEstimator) {
        assert_eq!(freq.len(), self.n.len(), "ladder size mismatch");
        for i in 0..freq.len() {
            self.n[i] += freq.tested[i];
            self.accepted[i] += freq.accepted[i];
            self.n_total += freq.tested[i];
        }
    }

    /// Records one requester's accept/reject decision at position `idx`.
    pub fn observe(&mut self, idx: usize, accepted: bool) {
        self.n[idx] += 1;
        self.accepted[idx] += u64::from(accepted);
        self.n_total += 1;
    }

    /// Records a batch of decisions at position `idx`.
    pub fn observe_batch(&mut self, idx: usize, tested: u64, accepted: u64) {
        assert!(accepted <= tested, "accepted {accepted} > tested {tested}");
        self.n[idx] += tested;
        self.accepted[idx] += accepted;
        self.n_total += tested;
    }

    /// Resets one position (used on change detection).
    pub fn reset_price(&mut self, idx: usize) {
        self.n_total -= self.n[idx];
        self.n[idx] = 0;
        self.accepted[idx] = 0;
    }

    /// Resets everything (used when the whole grid's demand shifted).
    pub fn reset_all(&mut self) {
        self.n.fill(0);
        self.accepted.fill(0);
        self.n_total = 0;
    }

    /// `N`: total observations in the grid.
    pub fn n_total(&self) -> u64 {
        self.n_total
    }

    /// `N(p)` at position `idx`.
    pub fn n_at(&self, idx: usize) -> u64 {
        self.n[idx]
    }

    /// Sample mean `Ŝ(p)`; 0 when unseen (pessimistic — the paper seeds
    /// all rungs from base pricing before MAPS consults them).
    pub fn s_hat(&self, idx: usize) -> f64 {
        if self.n[idx] == 0 {
            0.0
        } else {
            self.accepted[idx] as f64 / self.n[idx] as f64
        }
    }

    /// Confidence radius `√(2·ln N / N(p))`; zero when `N(p) = 0`
    /// (paper: "The radius … is zero when N(p) is zero") or when `ln N`
    /// is not yet positive.
    pub fn radius(&self, idx: usize) -> f64 {
        if self.n[idx] == 0 || self.n_total < 2 {
            return 0.0;
        }
        (2.0 * (self.n_total as f64).ln() / self.n[idx] as f64).sqrt()
    }

    /// The optimistic estimate `Ŝ(p) + √(2·ln N / N(p))` (uncapped:
    /// Algorithm 3 uses it inside a `min(·, supply-line)` term, so values
    /// above 1 are harmless and match the paper's definition).
    pub fn ucb(&self, idx: usize) -> f64 {
        self.s_hat(idx) + self.radius(idx)
    }

    /// Number of ladder positions tracked.
    pub fn len(&self) -> usize {
        self.n.len()
    }

    /// Whether no positions are tracked.
    pub fn is_empty(&self) -> bool {
        self.n.is_empty()
    }

    /// Appends the statistics to a flat `u64` word stream (ladder
    /// length, then `N(p)` per rung, accepted per rung, then `N`) — the
    /// serialization the crash-recovery checkpoints use. Every count is
    /// already a word, so the encoding is exact.
    pub fn save_words(&self, out: &mut Vec<u64>) {
        out.push(self.n.len() as u64);
        out.extend_from_slice(&self.n);
        out.extend_from_slice(&self.accepted);
        out.push(self.n_total);
    }

    /// Restores state written by [`UcbStats::save_words`] into this
    /// instance, returning the number of words consumed. Fails when the
    /// stream is truncated or its ladder length differs from this
    /// instance's (the snapshot must come from an identically-configured
    /// learner).
    pub fn load_words(&mut self, words: &[u64]) -> Result<usize, &'static str> {
        let k = self.n.len();
        let need = 2 + 2 * k;
        let Some(&len) = words.first() else {
            return Err("UcbStats state truncated");
        };
        if len as usize != k {
            return Err("UcbStats ladder length mismatch");
        }
        if words.len() < need {
            return Err("UcbStats state truncated");
        }
        self.n.copy_from_slice(&words[1..1 + k]);
        self.accepted.copy_from_slice(&words[1 + k..1 + 2 * k]);
        self.n_total = words[1 + 2 * k];
        Ok(need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{Demand, DemandDistribution};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn example4_sample_size() {
        // Paper Example 4: h(1) = 335 with ε=0.2, δ=0.01, k=4.
        assert_eq!(FreqEstimator::required_samples(1.0, 0.2, 0.01, 4), 335);
        // h grows quadratically with the price: ⌈4 · 334.23⌉ = 1337.
        let h2 = FreqEstimator::required_samples(2.0, 0.2, 0.01, 4);
        assert_eq!(h2, 1337);
    }

    #[test]
    fn freq_estimator_mean() {
        let mut f = FreqEstimator::new(4);
        assert_eq!(f.s_hat(0), None);
        f.record(0, 335, 300);
        assert!((f.s_hat(0).unwrap() - 0.8955223880597015).abs() < 1e-12);
        f.record(0, 165, 150);
        assert!((f.s_hat(0).unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(f.tested(0), 500);
        assert_eq!(f.s_hat(1), None);
    }

    #[test]
    #[should_panic(expected = "accepted")]
    fn freq_rejects_inconsistent_batch() {
        let mut f = FreqEstimator::new(1);
        f.record(0, 3, 4);
    }

    #[test]
    fn ucb_radius_zero_when_unseen() {
        let mut u = UcbStats::new(3);
        assert_eq!(u.radius(0), 0.0);
        assert_eq!(u.ucb(0), 0.0);
        u.observe(1, true);
        // N(p)=0 for idx 0 still → radius 0 even though N>0.
        assert_eq!(u.radius(0), 0.0);
    }

    #[test]
    fn ucb_radius_shrinks_with_samples() {
        let mut u = UcbStats::new(2);
        u.observe_batch(0, 10, 5);
        u.observe_batch(1, 10, 5);
        let r10 = u.radius(0);
        u.observe_batch(0, 990, 500);
        let r1000 = u.radius(0);
        assert!(r1000 < r10, "radius must shrink: {r1000} vs {r10}");
        // And the mean is exact.
        assert!((u.s_hat(0) - 0.505).abs() < 1e-12);
    }

    #[test]
    fn ucb_radius_grows_with_total() {
        // More observations elsewhere (larger N) widen this price's bound.
        let mut u = UcbStats::new(2);
        u.observe_batch(0, 10, 5);
        let before = u.radius(0);
        u.observe_batch(1, 100_000, 50_000);
        let after = u.radius(0);
        assert!(after > before);
    }

    #[test]
    fn seeding_from_base_pricing() {
        let mut f = FreqEstimator::new(2);
        f.record(0, 335, 300);
        f.record(1, 500, 250);
        let mut u = UcbStats::new(2);
        u.seed_from(&f);
        assert_eq!(u.n_total(), 835);
        assert_eq!(u.n_at(0), 335);
        assert!((u.s_hat(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_price_and_all() {
        let mut u = UcbStats::new(2);
        u.observe_batch(0, 10, 8);
        u.observe_batch(1, 20, 10);
        u.reset_price(0);
        assert_eq!(u.n_at(0), 0);
        assert_eq!(u.n_total(), 20);
        assert_eq!(u.s_hat(0), 0.0);
        u.reset_all();
        assert_eq!(u.n_total(), 0);
        assert_eq!(u.s_hat(1), 0.0);
    }

    #[test]
    fn lemma6_style_concentration() {
        // Empirical check of Lemma 6's direction: after many samples the
        // true mean lies within the confidence radius (p·S within p·c(p)
        // in the paper's scaling; here divided by p).
        let demand = Demand::paper_normal(2.0, 1.0);
        let price = 2.25;
        let s_true = demand.survival(price);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut u = UcbStats::new(1);
        for _ in 0..5_000 {
            u.observe(0, rng.gen::<f64>() < s_true);
        }
        assert!(
            (u.s_hat(0) - s_true).abs() <= u.radius(0),
            "mean {} vs true {} radius {}",
            u.s_hat(0),
            s_true,
            u.radius(0)
        );
        // And the UCB is optimistic.
        assert!(u.ucb(0) >= s_true);
    }

    #[test]
    fn freq_hoeffding_schedule_achieves_epsilon() {
        // Statistical test of Theorem 2's ingredient: with h(p) samples,
        // |p·Ŝ − p·S| ≤ ε/2 with probability ≥ 1 − δ/k. Run 40 seeded
        // trials and require no more than a small number of violations.
        let demand = Demand::paper_normal(2.0, 1.0);
        let (eps, delta, k) = (0.2, 0.01, 4usize);
        let price = 2.25;
        let s_true = demand.survival(price);
        let h = FreqEstimator::required_samples(price, eps, delta, k);
        let mut violations = 0;
        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut acc = 0u64;
            for _ in 0..h {
                acc += u64::from(rng.gen::<f64>() < s_true);
            }
            let s_hat = acc as f64 / h as f64;
            if (price * s_hat - price * s_true).abs() > eps / 2.0 {
                violations += 1;
            }
        }
        assert!(
            violations <= 1,
            "{violations} of 40 trials violated the bound"
        );
    }
}
