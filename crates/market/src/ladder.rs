//! The geometric candidate price set shared by Algorithms 1 and 3.
//!
//! Algorithm 1 samples prices `p_min, (1+α)p_min, (1+α)²p_min, …` up to
//! `p_max`; Algorithm 3 iterates the same candidates from high to low
//! (`p ← p/(1+α)` starting at `p_max`). Sharing one materialized ladder —
//! indexed by position — keeps the UCB statistics of Sec. 4.2.2 aligned
//! between the base-pricing phase and MAPS (the paper implicitly assumes
//! this, since MAPS reuses the statistics `P` seeded by base pricing).

/// Geometric price ladder `p_i = p_min · (1+α)^i ∩ [p_min, p_max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceLadder {
    p_min: f64,
    p_max: f64,
    alpha: f64,
    prices: Vec<f64>,
}

impl PriceLadder {
    /// Builds the ladder.
    ///
    /// # Panics
    /// Panics unless `0 < p_min ≤ p_max` and `α > 0` (the paper's
    /// Theorem 3 additionally wants `α ∈ (0,1)` for its guarantee, but the
    /// algorithm itself runs for any positive step).
    pub fn new(p_min: f64, p_max: f64, alpha: f64) -> Self {
        assert!(
            p_min > 0.0 && p_min.is_finite(),
            "p_min must be positive, got {p_min}"
        );
        assert!(
            p_max >= p_min && p_max.is_finite(),
            "p_max must be ≥ p_min, got {p_max}"
        );
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let mut prices = Vec::new();
        let mut p = p_min;
        // Tolerate float drift so that p_max itself is included when the
        // ladder lands on it exactly (e.g. p_min=1, α=1, p_max=4).
        while p <= p_max * (1.0 + 1e-12) {
            prices.push(p.min(p_max));
            p *= 1.0 + alpha;
        }
        Self {
            p_min,
            p_max,
            alpha,
            prices,
        }
    }

    /// The paper's default ladder: `p_min = 1, p_max = 5, α = 0.5`
    /// → candidates `{1, 1.5, 2.25, 3.375}` (Example 4).
    pub fn paper_default() -> Self {
        Self::new(1.0, 5.0, 0.5)
    }

    /// A ladder with explicitly chosen rungs (strictly increasing,
    /// positive). The paper's worked examples use the candidate set
    /// `{1, 2, 3}` of Table 1, which no geometric ladder can produce
    /// exactly; this constructor lets tests and custom deployments pin
    /// the rungs. `α` is derived as the largest successive ratio − 1 so
    /// that Theorem 3's `(1−α)` guarantee still reads correctly.
    ///
    /// # Panics
    /// Panics if `prices` is empty, non-increasing, or non-positive.
    pub fn explicit(prices: Vec<f64>) -> Self {
        assert!(!prices.is_empty(), "ladder needs at least one price");
        for w in prices.windows(2) {
            assert!(w[0] < w[1], "prices must be strictly increasing");
        }
        assert!(
            prices[0] > 0.0 && prices[0].is_finite(),
            "prices must be positive and finite"
        );
        assert!(prices.last().unwrap().is_finite(), "prices must be finite");
        let alpha = prices
            .windows(2)
            .map(|w| w[1] / w[0] - 1.0)
            .fold(0.0f64, f64::max)
            .max(f64::EPSILON);
        Self {
            p_min: prices[0],
            p_max: *prices.last().unwrap(),
            alpha,
            prices,
        }
    }

    /// Lower price bound.
    pub fn p_min(&self) -> f64 {
        self.p_min
    }

    /// Upper price bound.
    pub fn p_max(&self) -> f64 {
        self.p_max
    }

    /// Multiplicative step `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of candidate prices.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the ladder is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Algorithm 1's `k = ⌈ln(p_max/p_min)/ln(1+α)⌉`, the candidate-count
    /// bound used inside the sample-size formula `h(p)`. For the paper
    /// default this is 4 (Example 4).
    pub fn k(&self) -> usize {
        if self.p_max <= self.p_min {
            return 1;
        }
        ((self.p_max / self.p_min).ln() / (1.0 + self.alpha).ln()).ceil() as usize
    }

    /// The candidate prices in increasing order.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Price at ladder position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn price(&self, i: usize) -> f64 {
        self.prices[i]
    }

    /// Iterates `(index, price)` in increasing order (Algorithm 1).
    pub fn ascending(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.prices.iter().copied().enumerate()
    }

    /// Iterates `(index, price)` from `p_max` downwards (Algorithm 3:
    /// "we iterate prices from big to small").
    pub fn descending(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.prices.iter().copied().enumerate().rev()
    }

    /// Index of the ladder price closest to `p` (ties towards the lower
    /// price, consistent with the paper's tie-breaking towards smaller
    /// prices / higher acceptance).
    pub fn nearest_index(&self, p: f64) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &c) in self.prices.iter().enumerate() {
            let d = (c - p).abs();
            if d < best_d - 1e-15 {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Clamps an arbitrary price into `[p_min, p_max]` (Algorithm 2
    /// lines 13–14 clamp MAPS prices at `p_max`; Sec. 3.2 Remarks clamp
    /// base prices that fall outside the window).
    pub fn clamp(&self, p: f64) -> f64 {
        p.clamp(self.p_min, self.p_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example4_ladder() {
        // Paper Example 4: pmin=1, pmax=5, α=0.5 → k=4 and candidates
        // {1, 1.5, 2.25, 3.375}.
        let l = PriceLadder::paper_default();
        assert_eq!(l.k(), 4);
        assert_eq!(l.len(), 4);
        let want = [1.0, 1.5, 2.25, 3.375];
        for (got, want) in l.prices().iter().zip(want) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn ladder_includes_exact_pmax() {
        // 1 * 2^2 = 4 = p_max: the top rung must be included exactly once.
        let l = PriceLadder::new(1.0, 4.0, 1.0);
        assert_eq!(l.prices(), &[1.0, 2.0, 4.0]);
        assert_eq!(l.k(), 2);
    }

    #[test]
    fn degenerate_single_price() {
        let l = PriceLadder::new(2.0, 2.0, 0.5);
        assert_eq!(l.prices(), &[2.0]);
        assert_eq!(l.k(), 1);
        assert!(!l.is_empty());
    }

    #[test]
    fn ascending_descending_are_mirrors() {
        let l = PriceLadder::paper_default();
        let up: Vec<_> = l.ascending().collect();
        let mut down: Vec<_> = l.descending().collect();
        down.reverse();
        assert_eq!(up, down);
        assert_eq!(up[0], (0, 1.0));
        assert_eq!(up.last().copied(), Some((3, 3.375)));
    }

    #[test]
    fn successive_ratio_is_one_plus_alpha() {
        for alpha in [0.25, 0.5, 1.0] {
            let l = PriceLadder::new(1.0, 50.0, alpha);
            for w in l.prices().windows(2) {
                // Last rung may be clamped at p_max; ratio must never exceed 1+α.
                let ratio = w[1] / w[0];
                assert!(ratio <= 1.0 + alpha + 1e-12);
                assert!(ratio > 1.0);
            }
        }
    }

    #[test]
    fn nearest_index_and_clamp() {
        let l = PriceLadder::paper_default();
        assert_eq!(l.nearest_index(1.0), 0);
        assert_eq!(l.nearest_index(2.3), 2);
        assert_eq!(l.nearest_index(100.0), 3);
        assert_eq!(l.nearest_index(0.0), 0);
        // tie between 1.0 and 1.5 at p=1.25 → lower index wins
        assert_eq!(l.nearest_index(1.25), 0);
        assert_eq!(l.clamp(0.5), 1.0);
        assert_eq!(l.clamp(7.0), 5.0);
        assert_eq!(l.clamp(2.0), 2.0);
    }

    #[test]
    fn k_grows_with_range() {
        let narrow = PriceLadder::new(1.0, 2.0, 0.5);
        let wide = PriceLadder::new(1.0, 100.0, 0.5);
        assert!(wide.k() > narrow.k());
        assert_eq!(wide.len(), wide.prices().len());
    }

    #[test]
    fn explicit_ladder_table1() {
        let l = PriceLadder::explicit(vec![1.0, 2.0, 3.0]);
        assert_eq!(l.prices(), &[1.0, 2.0, 3.0]);
        assert_eq!(l.p_min(), 1.0);
        assert_eq!(l.p_max(), 3.0);
        assert!((l.alpha() - 1.0).abs() < 1e-12); // ratio 2/1 dominates
        assert_eq!(l.nearest_index(2.6), 2);
        assert_eq!(l.clamp(0.2), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn explicit_rejects_unsorted() {
        let _ = PriceLadder::explicit(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "p_min must be positive")]
    fn rejects_zero_pmin() {
        let _ = PriceLadder::new(0.0, 5.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "p_max must be")]
    fn rejects_inverted_bounds() {
        let _ = PriceLadder::new(5.0, 1.0, 0.5);
    }
}
