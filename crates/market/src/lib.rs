//! # maps-market
//!
//! Market/demand substrate for the MAPS reproduction
//! (Tong et al., SIGMOD 2018).
//!
//! The paper models each requester's private valuation `v_r` as an i.i.d.
//! sample from an unknown per-grid distribution with CDF `F^g`, and the
//! *acceptance ratio* `S^g(p) = Pr[v_r > p] = 1 − F^g(p)` (Definition 3).
//! Base pricing assumes `F^g` has a **monotone hazard rate** (MHR), which
//! makes the revenue curve `p·S(p)` unimodal with the Myerson reserve
//! price as unique maximizer (Sec. 3.1.1).
//!
//! This crate provides:
//!
//! * [`special`] — erf / normal CDF / normal quantile implemented from
//!   scratch (no external math crates).
//! * [`demand`] — the [`DemandDistribution`] trait and the paper's
//!   distribution families (truncated Normal — Table 3's default,
//!   truncated Exponential — Appendix D, Uniform), all MHR.
//! * [`myerson`] — continuous (golden-section) and ladder-restricted
//!   Myerson reserve price solvers.
//! * [`ladder`] — the geometric candidate price set
//!   `p_min·(1+α)^i ∩ [p_min, p_max]` shared by Algorithms 1 and 3.
//! * [`estimator`] — the Hoeffding frequency estimator of Algorithm 1
//!   (`h(p) = ⌈(2p²/ε²)·ln(2k/δ)⌉` samples per price) and the UCB
//!   statistics of Sec. 4.2.2 (`Ŝ(p) + √(2·ln N / N(p))`, radius 0 for
//!   unseen prices).
//! * [`change`] — the statistically-significant-deviation change detector
//!   (`m·Ŝ ± 2√(m·Ŝ(1−Ŝ))` windows) of Sec. 4.2.2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod change;
pub mod demand;
pub mod estimator;
pub mod ladder;
pub mod myerson;
pub mod special;

pub use change::ChangeDetector;
pub use demand::{Demand, DemandDistribution, TruncatedExponential, TruncatedNormal, Uniform};
pub use estimator::{FreqEstimator, UcbStats};
pub use ladder::PriceLadder;
pub use myerson::{myerson_reserve_continuous, myerson_reserve_on_ladder};

/// Commonly used items.
pub mod prelude {
    pub use crate::change::ChangeDetector;
    pub use crate::demand::{
        Demand, DemandDistribution, TruncatedExponential, TruncatedNormal, Uniform,
    };
    pub use crate::estimator::{FreqEstimator, UcbStats};
    pub use crate::ladder::PriceLadder;
    pub use crate::myerson::{myerson_reserve_continuous, myerson_reserve_on_ladder};
}
