//! Myerson reserve price solvers (Sec. 3.1.1 of the paper).
//!
//! With sufficient supply the optimal unit price for a grid maximizes the
//! revenue curve `p·S(p)`; under MHR demand this curve is unimodal and its
//! unique maximizer is the Myerson reserve price `p_m = argmax_p p·S(p)`.
//! We provide:
//!
//! * [`myerson_reserve_continuous`] — golden-section search on a closed
//!   interval, exploiting unimodality (the oracle used by tests and by
//!   ground-truth experiment reporting);
//! * [`myerson_reserve_on_ladder`] — the discrete argmax over a candidate
//!   [`PriceLadder`] with ties broken towards the smaller price, matching
//!   Algorithm 1 line 9 ("Ties are broken by choosing the smaller price,
//!   since it usually represents a higher acceptance ratio").

use crate::demand::DemandDistribution;
use crate::ladder::PriceLadder;

/// Golden-section maximization of `p·S(p)` over `[lo, hi]`.
///
/// Requires a unimodal revenue curve (true for MHR demand). Returns
/// `(p_m, p_m·S(p_m))` to absolute `p`-tolerance `tol`.
///
/// # Panics
/// Panics if the interval is empty or `tol` is non-positive.
pub fn myerson_reserve_continuous<D: DemandDistribution + ?Sized>(
    demand: &D,
    lo: f64,
    hi: f64,
    tol: f64,
) -> (f64, f64) {
    assert!(lo <= hi, "empty interval [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_8; // 1/φ

    let f = |p: f64| demand.revenue_curve(p);
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let (mut fc, mut fd) = (f(c), f(d));
    while (b - a) > tol {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let p = 0.5 * (a + b);
    (p, f(p))
}

/// Discrete argmax of `p·S(p)` over the ladder's candidates, ties broken
/// towards the smaller price. Returns `(index, price, value)`.
pub fn myerson_reserve_on_ladder<D: DemandDistribution + ?Sized>(
    demand: &D,
    ladder: &PriceLadder,
) -> (usize, f64, f64) {
    let mut best = (
        0usize,
        ladder.price(0),
        demand.revenue_curve(ladder.price(0)),
    );
    for (i, p) in ladder.ascending().skip(1) {
        let v = demand.revenue_curve(p);
        // Strictly greater: equal values keep the earlier (smaller) price.
        if v > best.2 {
            best = (i, p, v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{Demand, DemandDistribution, Uniform};

    #[test]
    fn uniform_reserve_price_closed_form() {
        // For U[0,1]: p·S(p) = p(1−p), maximized at 1/2.
        let d = Uniform::new(0.0, 1.0);
        let (p, v) = myerson_reserve_continuous(&d, 0.0, 1.0, 1e-9);
        assert!((p - 0.5).abs() < 1e-6, "got {p}");
        assert!((v - 0.25).abs() < 1e-9);
    }

    #[test]
    fn uniform_on_1_5_closed_form() {
        // U[1,5]: p·S(p) = p(5−p)/4 on [1,5], maximized at p = 2.5 with
        // value 2.5·2.5/4 = 1.5625.
        let d = Uniform::new(1.0, 5.0);
        let (p, v) = myerson_reserve_continuous(&d, 1.0, 5.0, 1e-9);
        assert!((p - 2.5).abs() < 1e-6);
        assert!((v - 1.5625).abs() < 1e-9);
    }

    #[test]
    fn search_interval_clamps_maximizer() {
        // If the optimum (2.5) lies outside [1,2], the search must return
        // the boundary (Sec. 3.2 Remarks: return p_min/p_max when the
        // reserve price falls outside the window).
        let d = Uniform::new(1.0, 5.0);
        let (p, _) = myerson_reserve_continuous(&d, 1.0, 2.0, 1e-9);
        assert!((p - 2.0).abs() < 1e-6);
    }

    #[test]
    fn normal_reserve_matches_ladder_up_to_step() {
        let d = Demand::paper_normal(2.0, 1.0);
        let ladder = PriceLadder::paper_default();
        let (p_cont, v_cont) = myerson_reserve_continuous(&d, 1.0, 5.0, 1e-9);
        let (_, p_ladder, v_ladder) = myerson_reserve_on_ladder(&d, &ladder);
        // Theorem 3: ladder value within (1−α) of the continuous optimum.
        assert!(v_ladder >= (1.0 - ladder.alpha()) * v_cont);
        // And the chosen rung brackets the continuous optimum.
        assert!(
            p_ladder <= p_cont * (1.0 + ladder.alpha()) + 1e-9
                && p_cont <= p_ladder * (1.0 + ladder.alpha()) + 1e-9,
            "p_ladder={p_ladder} p_cont={p_cont}"
        );
    }

    #[test]
    fn ladder_ties_break_to_smaller_price() {
        // A flat revenue curve (S(p) = c/p is not MHR, so craft a
        // piecewise demand where two rungs tie): use Uniform[1,5] and a
        // two-rung ladder symmetric around 2.5 ⇒ p(5−p) equal at 2 & 3.
        struct Sym;
        impl DemandDistribution for Sym {
            fn cdf(&self, p: f64) -> f64 {
                ((p - 1.0) / 4.0).clamp(0.0, 1.0)
            }
            fn pdf(&self, _p: f64) -> f64 {
                0.25
            }
            fn support(&self) -> (f64, f64) {
                (1.0, 5.0)
            }
            fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
                unreachable!("not sampled in this test")
            }
        }
        // Build a ladder containing both 2 and 3: pmin=2, α=0.5 → {2, 3}.
        let ladder = PriceLadder::new(2.0, 3.0, 0.5);
        let (i, p, _) = myerson_reserve_on_ladder(&Sym, &ladder);
        assert_eq!((i, p), (0, 2.0), "tie must go to the smaller price");
    }

    #[test]
    fn exponential_reserve_is_interior() {
        let d = Demand::paper_exponential(1.0);
        let (p, v) = myerson_reserve_continuous(&d, 1.0, 5.0, 1e-9);
        assert!(p > 1.0 && p < 5.0);
        assert!(v > 0.0);
        // Value at the reserve must dominate endpoints.
        assert!(v + 1e-9 >= d.revenue_curve(1.0));
        assert!(v + 1e-9 >= d.revenue_curve(5.0));
    }

    #[test]
    fn continuous_beats_every_ladder_rung() {
        for d in [
            Demand::paper_normal(2.0, 1.0),
            Demand::paper_normal(1.5, 0.5),
            Demand::paper_exponential(0.75),
        ] {
            let ladder = PriceLadder::paper_default();
            let (_, v_cont) = myerson_reserve_continuous(&d, 1.0, 5.0, 1e-10);
            for (_, p) in ladder.ascending() {
                assert!(v_cont + 1e-9 >= d.revenue_curve(p), "{d:?} at {p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn rejects_empty_interval() {
        let d = Uniform::new(0.0, 1.0);
        let _ = myerson_reserve_continuous(&d, 1.0, 0.5, 1e-6);
    }
}
