//! Special functions implemented from scratch: `erf`, the standard normal
//! CDF `Φ`, its density `φ`, and the normal quantile `Φ⁻¹`.
//!
//! The offline dependency policy for this reproduction does not include a
//! math crate, so we carry our own implementations:
//!
//! * `erf` — Abramowitz & Stegun 7.1.26 rational approximation
//!   (|error| ≤ 1.5·10⁻⁷), sufficient for demand CDFs whose estimators
//!   are themselves sampled to ~10⁻² accuracy.
//! * `Φ⁻¹` — Acklam's rational approximation refined by one Halley step,
//!   giving ~10⁻⁹ relative error in the bulk.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun formula 7.1.26.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function
/// `Φ(x) = (1 + erf(x/√2)) / 2`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density `φ(x) = e^{−x²/2} / √(2π)`.
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Returns `−∞` at `p = 0` and `+∞` at `p = 1`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]` or NaN.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "quantile argument must be in [0,1], got {p}"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against our own Φ.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ERF_TOL: f64 = 2e-7; // A&S 7.1.26 guarantee

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (1.5, 0.966_105_146_5),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < ERF_TOL, "erf({x})");
            assert!((erf(-x) + want).abs() < ERF_TOL, "erf(-{x}) odd symmetry");
        }
    }

    #[test]
    fn erf_limits() {
        assert!((erf(6.0) - 1.0).abs() < 1e-12);
        assert!((erf(-6.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_746_1),
            (1.96, 0.975_002_104_9),
            (-1.0, 0.158_655_253_9),
            (2.575_829, 0.995_000_0),
        ];
        for (x, want) in cases {
            assert!((normal_cdf(x) - want).abs() < 2e-7, "Phi({x})");
        }
    }

    #[test]
    fn normal_cdf_monotone() {
        let mut prev = -1.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let c = normal_cdf(x);
            assert!(c >= prev, "Phi not monotone at {x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn normal_pdf_reference() {
        assert!((normal_pdf(0.0) - 0.398_942_280_4).abs() < 1e-10);
        assert!((normal_pdf(1.0) - 0.241_970_724_5).abs() < 1e-10);
        assert!((normal_pdf(-1.0) - normal_pdf(1.0)).abs() < 1e-15);
    }

    #[test]
    fn quantile_reference_values() {
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959_963_985),
            (0.995, 2.575_829_304),
            (0.025, -1.959_963_985),
            (0.841_344_746_1, 1.0),
        ];
        for (p, want) in cases {
            assert!(
                (normal_quantile(p) - want).abs() < 1e-5,
                "quantile({p}) = {} want {want}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    fn quantile_cdf_roundtrip() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "roundtrip at p={p}");
        }
    }

    #[test]
    fn quantile_edges() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn quantile_rejects_out_of_range() {
        let _ = normal_quantile(1.5);
    }
}
