//! Compact bipartite graph container.
//!
//! Left vertices are tasks (`R^t`), right vertices are workers (`W^t`).
//! Adjacency is stored CSR-style from the left side, since every algorithm
//! in this crate searches from tasks towards workers.

/// An immutable bipartite graph with `n_left` tasks and `n_right` workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    /// CSR row offsets: neighbours of left `l` are
    /// `adj[starts[l] .. starts[l+1]]`.
    starts: Vec<u32>,
    adj: Vec<u32>,
}

impl BipartiteGraph {
    /// Number of left (task) vertices.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right (worker) vertices.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Number of edges `|E^t|`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adj.len()
    }

    /// Neighbours (workers) of left vertex `l`.
    #[inline]
    pub fn neighbors(&self, l: usize) -> &[u32] {
        &self.adj[self.starts[l] as usize..self.starts[l + 1] as usize]
    }

    /// Degree of left vertex `l`.
    #[inline]
    pub fn degree(&self, l: usize) -> usize {
        (self.starts[l + 1] - self.starts[l]) as usize
    }

    /// Whether the edge `(l, r)` exists. Neighbour lists are sorted by the
    /// builder, so this is a binary search.
    pub fn has_edge(&self, l: usize, r: usize) -> bool {
        l < self.n_left && self.neighbors(l).binary_search(&(r as u32)).is_ok()
    }

    /// Iterates over all edges as `(left, right)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_left).flat_map(move |l| self.neighbors(l).iter().map(move |&r| (l, r as usize)))
    }

    /// A zero-copy view of the induced subgraph keeping only the left
    /// vertices for which `keep[l]` is true. Left indices are **not**
    /// renumbered — they stay meaningful against the original graph's
    /// weight arrays — which is what lets the evaluation hot loops
    /// (possible worlds, Monte-Carlo sampling, market clearing) avoid
    /// the per-world copy that [`Self::filter_left`] performs.
    ///
    /// # Panics
    /// Panics if `keep.len() != self.n_left()`.
    pub fn masked<'a>(&'a self, keep: &'a [bool]) -> MaskedGraph<'a> {
        assert_eq!(keep.len(), self.n_left, "mask length mismatch");
        MaskedGraph { graph: self, keep }
    }

    /// An induced subgraph keeping only the left vertices for which
    /// `keep_left` is true. Right vertices are preserved (same indices);
    /// kept left vertices are renumbered densely in order, and the mapping
    /// `new_left -> old_left` is returned alongside.
    ///
    /// Possible-world instantiation (Definition 5: `R′^t ⊆ R^t` are the
    /// accepting tasks) is exactly this operation. Hot loops should
    /// prefer the allocation-free [`Self::masked`] view.
    pub fn filter_left(&self, keep_left: &[bool]) -> (BipartiteGraph, Vec<u32>) {
        assert_eq!(keep_left.len(), self.n_left, "mask length mismatch");
        let mut old_of_new = Vec::new();
        let mut starts = Vec::with_capacity(self.n_left + 1);
        let mut adj = Vec::new();
        starts.push(0u32);
        for (l, &keep) in keep_left.iter().enumerate() {
            if keep {
                old_of_new.push(l as u32);
                adj.extend_from_slice(self.neighbors(l));
                starts.push(adj.len() as u32);
            }
        }
        (
            BipartiteGraph {
                n_left: old_of_new.len(),
                n_right: self.n_right,
                starts,
                adj,
            },
            old_of_new,
        )
    }
}

/// A zero-copy masked view over a [`BipartiteGraph`], produced by
/// [`BipartiteGraph::masked`].
///
/// Semantically equivalent to the subgraph `filter_left` materializes,
/// except left vertices keep their original indices (masked-out
/// vertices simply have no edges), so weight arrays of the full graph
/// stay directly usable. [`MaskedGraph::max_weight_value`] solves the
/// view through a reused [`crate::MatchScratch`] without copying
/// anything — this is how the simulator clears each period's market.
#[derive(Debug, Clone, Copy)]
pub struct MaskedGraph<'a> {
    graph: &'a BipartiteGraph,
    keep: &'a [bool],
}

impl<'a> MaskedGraph<'a> {
    /// The underlying full graph.
    #[inline]
    pub fn graph(&self) -> &'a BipartiteGraph {
        self.graph
    }

    /// The participation mask (`keep[l]` ⇔ left vertex `l` is in the
    /// subgraph).
    #[inline]
    pub fn keep(&self) -> &'a [bool] {
        self.keep
    }

    /// Whether left vertex `l` participates.
    #[inline]
    pub fn is_kept(&self, l: usize) -> bool {
        self.keep[l]
    }

    /// Number of left vertices of the *underlying* graph (indices are
    /// not renumbered; masked-out vertices are isolated).
    #[inline]
    pub fn n_left(&self) -> usize {
        self.graph.n_left()
    }

    /// Number of right vertices.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.graph.n_right()
    }

    /// Number of participating left vertices.
    pub fn n_kept(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Indices of the participating left vertices, ascending.
    pub fn kept_left(&self) -> impl Iterator<Item = usize> + 'a {
        self.keep
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(l, _)| l)
    }

    /// Neighbours of left vertex `l`: the full adjacency when kept,
    /// empty when masked out.
    #[inline]
    pub fn neighbors(&self, l: usize) -> &'a [u32] {
        if self.keep[l] {
            self.graph.neighbors(l)
        } else {
            &[]
        }
    }

    /// Whether the edge `(l, r)` exists in the masked subgraph.
    pub fn has_edge(&self, l: usize, r: usize) -> bool {
        self.keep[l] && self.graph.has_edge(l, r)
    }

    /// Number of edges of the masked subgraph.
    pub fn n_edges(&self) -> usize {
        self.kept_left().map(|l| self.graph.degree(l)).sum()
    }

    /// Maximum-weight matching value of the masked subgraph under
    /// left-sided `weights` (indexed by *original* left indices),
    /// solved allocation-free into `scratch`. The assignment remains
    /// readable through [`crate::MatchScratch::matched_pairs`] with
    /// original indices until the next solve.
    ///
    /// # Panics
    /// Panics if `weights.len() != self.n_left()` or any weight is
    /// NaN.
    pub fn max_weight_value(&self, weights: &[f64], scratch: &mut crate::MatchScratch) -> f64 {
        scratch.max_weight_value_masked(self.graph, weights, self.keep)
    }
}

/// Builder accumulating edges before freezing them into CSR form.
#[derive(Debug, Clone)]
pub struct BipartiteGraphBuilder {
    n_left: usize,
    n_right: usize,
    edges: Vec<(u32, u32)>,
}

impl BipartiteGraphBuilder {
    /// Starts a builder for a graph with the given part sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self {
            n_left,
            n_right,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates for an expected number of edges.
    pub fn with_capacity(n_left: usize, n_right: usize, edges: usize) -> Self {
        Self {
            n_left,
            n_right,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Starts a builder over a recycled edge arena (cleared, then grown
    /// to at least `capacity`): repeated per-period graph construction
    /// (the `maps-core` graph cache's main loop) reuses one allocation
    /// instead of paying `with_capacity` every period. Recover the arena
    /// with [`BipartiteGraphBuilder::build_recycling`].
    pub fn with_arena(
        n_left: usize,
        n_right: usize,
        capacity: usize,
        mut arena: Vec<(u32, u32)>,
    ) -> Self {
        arena.clear();
        arena.reserve(capacity);
        Self {
            n_left,
            n_right,
            edges: arena,
        }
    }

    /// Adds one edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) -> &mut Self {
        assert!(l < self.n_left, "left vertex {l} out of range");
        assert!(r < self.n_right, "right vertex {r} out of range");
        self.edges.push((l as u32, r as u32));
        self
    }

    /// Adds many edges (builder-style).
    pub fn with_edges(mut self, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        for (l, r) in edges {
            self.add_edge(l, r);
        }
        self
    }

    /// Number of edges added so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into a [`BipartiteGraph`]. Duplicate edges are collapsed;
    /// neighbour lists come out sorted (required by `has_edge`).
    pub fn build(self) -> BipartiteGraph {
        self.build_recycling().0
    }

    /// [`BipartiteGraphBuilder::build`], additionally handing the edge
    /// arena back for reuse via
    /// [`BipartiteGraphBuilder::with_arena`].
    pub fn build_recycling(mut self) -> (BipartiteGraph, Vec<(u32, u32)>) {
        // Counting-sort by left vertex, then sort+dedup each row.
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut starts = vec![0u32; self.n_left + 1];
        for &(l, _) in &self.edges {
            starts[l as usize + 1] += 1;
        }
        for l in 0..self.n_left {
            starts[l + 1] += starts[l];
        }
        let adj = self.edges.iter().map(|&(_, r)| r).collect();
        (
            BipartiteGraph {
                n_left: self.n_left,
                n_right: self.n_right,
                starts,
                adj,
            },
            self.edges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example's bipartite graph (Fig. 1b), with the edge set
    /// implied by Examples 1/3/5: r1 and r2 reach only w1, while r3 is
    /// "assured to be served" via w2/w3 (and also reachable by w1).
    pub(crate) fn running_example_graph() -> BipartiteGraph {
        BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build()
    }

    #[test]
    fn builder_and_accessors() {
        let g = running_example_graph();
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 3);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.neighbors(0), &[0]);
        assert_eq!(g.neighbors(2), &[0, 1, 2]);
        assert_eq!(g.degree(1), 1);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = BipartiteGraphBuilder::new(2, 2)
            .with_edges([(0, 1), (0, 1), (0, 0), (1, 1)])
            .build();
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let edges = vec![(0usize, 2usize), (1, 0), (1, 1), (3, 2)];
        let g = BipartiteGraphBuilder::new(4, 3)
            .with_edges(edges.iter().copied())
            .build();
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        let mut want = edges;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = BipartiteGraphBuilder::new(3, 3).build();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_left() {
        BipartiteGraphBuilder::new(1, 1).add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_right() {
        BipartiteGraphBuilder::new(1, 1).add_edge(0, 1);
    }

    #[test]
    fn filter_left_keeps_structure() {
        let g = running_example_graph();
        // Possible world where only r1 and r3 accept.
        let (sub, old) = g.filter_left(&[true, false, true]);
        assert_eq!(sub.n_left(), 2);
        assert_eq!(sub.n_right(), 3);
        assert_eq!(old, vec![0, 2]);
        assert_eq!(sub.neighbors(0), &[0]); // r1
        assert_eq!(sub.neighbors(1), &[0, 1, 2]); // r3
    }

    #[test]
    fn masked_view_mirrors_filter_left() {
        let g = running_example_graph();
        let keep = [true, false, true];
        let view = g.masked(&keep);
        let (sub, old_of_new) = g.filter_left(&keep);
        assert_eq!(view.n_kept(), sub.n_left());
        assert_eq!(view.n_right(), sub.n_right());
        assert_eq!(view.n_edges(), sub.n_edges());
        assert_eq!(view.kept_left().collect::<Vec<_>>(), vec![0, 2]);
        for (new_l, &old_l) in old_of_new.iter().enumerate() {
            assert_eq!(view.neighbors(old_l as usize), sub.neighbors(new_l));
        }
        assert_eq!(view.neighbors(1), &[] as &[u32]);
        assert!(view.has_edge(2, 1));
        assert!(!view.has_edge(1, 0), "masked-out vertex has no edges");
        assert!(view.is_kept(0) && !view.is_kept(1));
        assert_eq!(view.n_left(), 3, "indices are not renumbered");
    }

    #[test]
    fn masked_view_solves_through_scratch() {
        let g = running_example_graph();
        let keep = [true, false, true];
        let weights = [3.9, 2.1, 2.0];
        let mut scratch = crate::MatchScratch::new();
        let value = g.masked(&keep).max_weight_value(&weights, &mut scratch);
        // r1 -> w1 and r3 -> w2/w3: both kept tasks matched.
        assert!((value - 5.9).abs() < 1e-12);
        assert!(scratch.matched_pairs().all(|(l, _)| keep[l]));
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn masked_rejects_bad_mask() {
        let g = running_example_graph();
        let _ = g.masked(&[true, false]);
    }

    #[test]
    fn filter_left_empty_world() {
        let g = running_example_graph();
        let (sub, old) = g.filter_left(&[false, false, false]);
        assert_eq!(sub.n_left(), 0);
        assert!(old.is_empty());
        assert_eq!(sub.n_edges(), 0);
    }
}
