//! Exact maximum-weight matching for left-sided weights.
//!
//! In the paper every edge incident to task `r` carries the same weight
//! `d_r · p_r` (Definition 5: "The weight of an edge (r, w) is d_r × p_r").
//! The family of task subsets that can be simultaneously matched is the
//! independence system of a **transversal matroid**, and maximizing a
//! non-negative modular function over a matroid is solved exactly by the
//! greedy algorithm: visit tasks in decreasing weight order and keep each
//! task iff the matching can still be augmented.
//!
//! Complexity is `O(R log R + R · E)` worst case but near-linear on the
//! sparse per-period graphs the simulator builds, which is what makes the
//! paper's 500k × 500k scalability experiment (Fig. 8, column 2) feasible.

use crate::graph::BipartiteGraph;
use crate::scratch::MatchScratch;
use crate::Matching;

/// Computes a maximum-weight matching of `graph` where the weight of every
/// edge incident to left vertex `l` is `weights[l]`.
///
/// Tasks with non-positive weight are skipped: they cannot increase the
/// total, and the paper's weights `d_r · p_r` are strictly positive anyway.
///
/// Returns the matching and its total weight. Hot loops that only need
/// the value should call [`MatchScratch::max_weight_value`] on a
/// reused workspace instead: this convenience wrapper allocates a
/// fresh workspace and a result `Matching` per call.
///
/// # Panics
/// Panics if `weights.len() != graph.n_left()` or any weight is NaN.
pub fn max_weight_matching_left_weights(
    graph: &BipartiteGraph,
    weights: &[f64],
) -> (Matching, f64) {
    let mut scratch = MatchScratch::with_capacity(graph.n_left(), graph.n_right());
    let total = scratch.max_weight_value(graph, weights);
    (scratch.to_matching(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;
    use crate::hungarian::max_weight_matching_dense;

    #[test]
    fn empty() {
        let g = BipartiteGraphBuilder::new(0, 0).build();
        let (m, w) = max_weight_matching_left_weights(&g, &[]);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn skips_non_positive_weights() {
        let g = BipartiteGraphBuilder::new(2, 2)
            .with_edges([(0, 0), (1, 1)])
            .build();
        let (m, w) = max_weight_matching_left_weights(&g, &[0.0, 5.0]);
        assert_eq!(m.pairs, vec![None, Some(1)]);
        assert!((w - 5.0).abs() < 1e-12);
    }

    #[test]
    fn displaces_lighter_tasks() {
        // One worker, heavier task arrives "later" in index order.
        let g = BipartiteGraphBuilder::new(2, 1)
            .with_edges([(0, 0), (1, 0)])
            .build();
        let (m, w) = max_weight_matching_left_weights(&g, &[1.0, 9.0]);
        assert_eq!(m.pairs, vec![None, Some(0)]);
        assert!((w - 9.0).abs() < 1e-12);
    }

    #[test]
    fn augments_rather_than_displaces() {
        // Both tasks can be served by routing the first through another
        // worker; greedy must find total 3, not 2.
        let g = BipartiteGraphBuilder::new(2, 2)
            .with_edges([(0, 0), (0, 1), (1, 0)])
            .build();
        let (m, w) = max_weight_matching_left_weights(&g, &[1.0, 2.0]);
        assert!((w - 3.0).abs() < 1e-12);
        assert!(m.is_valid(&g));
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn running_example_revenue() {
        // All three requesters accept prices (3,3,2): optimum 5.9 (Fig. 2,
        // first possible world).
        let g = BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build();
        let (m, w) = max_weight_matching_left_weights(&g, &[3.9, 2.1, 2.0]);
        assert!((w - 5.9).abs() < 1e-9);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn matches_hungarian_on_pseudorandom_graphs() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let n_left = 1 + (next() % 10) as usize;
            let n_right = 1 + (next() % 10) as usize;
            let mut b = BipartiteGraphBuilder::new(n_left, n_right);
            for l in 0..n_left {
                for r in 0..n_right {
                    if next() % 3 == 0 {
                        b.add_edge(l, r);
                    }
                }
            }
            let g = b.build();
            let weights: Vec<f64> = (0..n_left)
                .map(|_| (next() % 1000) as f64 / 100.0)
                .collect();
            let (mg, wg) = max_weight_matching_left_weights(&g, &weights);
            let (_, wh) = max_weight_matching_dense(n_left, n_right, |l, r| {
                g.has_edge(l, r).then_some(weights[l])
            });
            assert!(mg.is_valid(&g), "trial {trial}");
            assert!(
                (wg - wh).abs() < 1e-9,
                "trial {trial}: greedy {wg} vs hungarian {wh}"
            );
        }
    }
}
