//! Hopcroft–Karp maximum-cardinality bipartite matching, `O(E·√V)`.
//!
//! Used as the fast feasibility baseline and as a cross-check for the
//! incremental Kuhn matcher (both must reach the same cardinality).

use crate::graph::BipartiteGraph;
use crate::Matching;

const INF: u32 = u32::MAX;

/// Computes a maximum-cardinality matching of `graph`.
pub fn max_cardinality_matching(graph: &BipartiteGraph) -> Matching {
    let n_left = graph.n_left();
    let n_right = graph.n_right();
    let mut match_left: Vec<u32> = vec![INF; n_left];
    let mut match_right: Vec<u32> = vec![INF; n_right];
    let mut dist: Vec<u32> = vec![INF; n_left];
    let mut queue: Vec<u32> = Vec::with_capacity(n_left);

    loop {
        // BFS phase: layer free left vertices at distance 0.
        queue.clear();
        for l in 0..n_left {
            if match_left[l] == INF {
                dist[l] = 0;
                queue.push(l as u32);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_free_right = false;
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head] as usize;
            head += 1;
            for &r in graph.neighbors(l) {
                let owner = match_right[r as usize];
                if owner == INF {
                    found_free_right = true;
                } else if dist[owner as usize] == INF {
                    dist[owner as usize] = dist[l] + 1;
                    queue.push(owner);
                }
            }
        }
        if !found_free_right {
            break;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths.
        let mut augmented = 0usize;
        for l in 0..n_left {
            if match_left[l] == INF && dfs(graph, l, &mut match_left, &mut match_right, &mut dist) {
                augmented += 1;
            }
        }
        if augmented == 0 {
            break;
        }
    }

    Matching {
        pairs: match_left
            .into_iter()
            .map(|r| (r != INF).then_some(r))
            .collect(),
    }
}

fn dfs(
    graph: &BipartiteGraph,
    l: usize,
    match_left: &mut [u32],
    match_right: &mut [u32],
    dist: &mut [u32],
) -> bool {
    for &r in graph.neighbors(l) {
        let owner = match_right[r as usize];
        let ok = owner == INF
            || (dist[owner as usize] == dist[l] + 1
                && dfs(graph, owner as usize, match_left, match_right, dist));
        if ok {
            match_left[l] = r;
            match_right[r as usize] = l as u32;
            return true;
        }
    }
    // Dead end: remove from this phase's layered graph.
    dist[l] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;
    use crate::IncrementalMatching;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraphBuilder::new(0, 0).build();
        assert_eq!(max_cardinality_matching(&g).cardinality(), 0);
        let g = BipartiteGraphBuilder::new(3, 2).build();
        assert_eq!(max_cardinality_matching(&g).cardinality(), 0);
    }

    #[test]
    fn perfect_matching_on_cycle() {
        // C6 as bipartite: l_i - r_i and l_i - r_{i+1 mod 3}.
        let g = BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)])
            .build();
        let m = max_cardinality_matching(&g);
        assert_eq!(m.cardinality(), 3);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn running_example_max_two() {
        // Paper, Example 1: "at most two tasks can be served".
        let g = BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build();
        assert_eq!(max_cardinality_matching(&g).cardinality(), 2);
    }

    #[test]
    fn needs_augmenting_through_alternating_path() {
        // Crown graph where greedy first-fit would get stuck at 2.
        let g = BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (0, 2)])
            .build();
        assert_eq!(max_cardinality_matching(&g).cardinality(), 3);
    }

    #[test]
    fn agrees_with_kuhn_on_pseudorandom_graphs() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let n_left = 1 + (next() % 12) as usize;
            let n_right = 1 + (next() % 12) as usize;
            let mut b = BipartiteGraphBuilder::new(n_left, n_right);
            for l in 0..n_left {
                for r in 0..n_right {
                    if next() % 4 == 0 {
                        b.add_edge(l, r);
                    }
                }
            }
            let g = b.build();
            let hk = max_cardinality_matching(&g);
            assert!(hk.is_valid(&g), "trial {trial}");
            let mut kuhn = IncrementalMatching::new(&g);
            let mut card = 0;
            for l in 0..n_left {
                if kuhn.try_augment(l) {
                    card += 1;
                }
            }
            assert_eq!(hk.cardinality(), card, "trial {trial}");
        }
    }
}
