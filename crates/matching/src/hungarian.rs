//! Kuhn–Munkres (Hungarian) maximum-weight bipartite matching.
//!
//! This is the exact oracle for the paper's `U(B^t)` (Definition 5): given
//! the instantiated bipartite graph of accepting tasks, the total revenue
//! is the weight of the maximum-weight matching. The simulator uses the
//! faster left-weight greedy matcher ([`crate::greedy_weight`]); this dense
//! `O(n³)` implementation exists to verify it (property tests) and to
//! support general edge weights (e.g. worker-dependent surge extensions).
//!
//! Implementation: Jonker–Volgenant-style shortest augmenting paths with
//! dual potentials on a padded square cost matrix.

use crate::Matching;

/// Computes a maximum-weight matching between `n_left` and `n_right`
/// vertices. `weight(l, r)` returns `Some(w)` (with `w >= 0`) when the edge
/// exists and `None` otherwise. Vertices may stay unmatched; absent edges
/// are never reported in the result.
///
/// Returns the matching and its total weight.
///
/// # Panics
/// Panics if any provided weight is negative or non-finite (revenue
/// weights `d_r · p_r` are non-negative by construction).
pub fn max_weight_matching_dense(
    n_left: usize,
    n_right: usize,
    weight: impl Fn(usize, usize) -> Option<f64>,
) -> (Matching, f64) {
    if n_left == 0 || n_right == 0 {
        return (Matching::empty(n_left), 0.0);
    }
    // Pad to a square: the JV routine below assigns every row, so absent
    // edges and padding columns get cost 0 (≡ leaving the task unmatched).
    let m = n_left.max(n_right);
    let cost = |l: usize, r: usize| -> f64 {
        if l < n_left && r < n_right {
            match weight(l, r) {
                Some(w) => {
                    assert!(
                        w.is_finite() && w >= 0.0,
                        "edge weights must be finite and non-negative, got {w}"
                    );
                    -w
                }
                None => 0.0,
            }
        } else {
            0.0
        }
    };

    // 1-based arrays per the classic formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n_left + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row assigned to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n_left {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = vec![None; n_left];
    let mut total = 0.0;
    #[allow(clippy::needless_range_loop)] // 1-based classic formulation
    for j in 1..=m {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (l, r) = (i - 1, j - 1);
        if r < n_right {
            if let Some(w) = weight(l, r) {
                pairs[l] = Some(r as u32);
                total += w;
            }
        }
    }
    (Matching { pairs }, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;

    fn dense(weights: &[&[Option<f64>]]) -> (Matching, f64) {
        let n_left = weights.len();
        let n_right = weights.first().map_or(0, |row| row.len());
        max_weight_matching_dense(n_left, n_right, |l, r| weights[l][r])
    }

    #[test]
    fn empty_instances() {
        let (m, w) = max_weight_matching_dense(0, 5, |_, _| None);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(w, 0.0);
        let (m, w) = max_weight_matching_dense(4, 0, |_, _| None);
        assert_eq!(m.pairs.len(), 4);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn single_edge() {
        let (m, w) = dense(&[&[Some(2.5)]]);
        assert_eq!(m.pairs, vec![Some(0)]);
        assert!((w - 2.5).abs() < 1e-12);
    }

    #[test]
    fn prefers_heavier_assignment_over_greedy() {
        // Greedy row-by-row would pick (0,0)=3 then (1,1)=1 = 4;
        // optimum is (0,1)=2 + (1,0)=3 = 5.
        let (_, w) = dense(&[&[Some(3.0), Some(2.0)], &[Some(3.0), Some(1.0)]]);
        assert!((w - 5.0).abs() < 1e-12);
    }

    #[test]
    fn leaves_vertices_unmatched_when_profitable() {
        // Only one worker; the heavier task must win.
        let (m, w) = dense(&[&[Some(1.0)], &[Some(4.0)]]);
        assert_eq!(m.pairs, vec![None, Some(0)]);
        assert!((w - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rectangular_more_workers() {
        let (m, w) = dense(&[&[Some(1.0), Some(5.0), None]]);
        assert_eq!(m.pairs, vec![Some(1)]);
        assert!((w - 5.0).abs() < 1e-12);
    }

    #[test]
    fn absent_edges_are_respected() {
        let (m, w) = dense(&[&[None, Some(1.0)], &[None, Some(2.0)]]);
        // Both tasks only reach worker 1; heavier task wins.
        assert_eq!(m.pairs, vec![None, Some(1)]);
        assert!((w - 2.0).abs() < 1e-12);
        let g = BipartiteGraphBuilder::new(2, 2)
            .with_edges([(0, 1), (1, 1)])
            .build();
        assert!(m.is_valid(&g));
    }

    #[test]
    fn running_example_world_all_accept() {
        // Prices (3,3,2); distances (1.3, 0.7, 1.0) → weights (3.9, 2.1, 2.0).
        // Edges: r1-{w1}, r2-{w1}, r3-{w1,w2,w3}. Optimal: r1·w1 + r3·w2 = 5.9.
        let wts = [3.9, 2.1, 2.0];
        let edges = [(0usize, 0usize), (1, 0), (2, 0), (2, 1), (2, 2)];
        let (m, w) =
            max_weight_matching_dense(3, 3, |l, r| edges.contains(&(l, r)).then_some(wts[l]));
        assert!((w - 5.9).abs() < 1e-9);
        assert_eq!(m.pairs[0], Some(0));
        assert_eq!(m.pairs[1], None);
        assert!(m.pairs[2].is_some());
    }

    #[test]
    fn zero_weight_edges_do_not_break_optimality() {
        let (_, w) = dense(&[&[Some(0.0), Some(1.0)], &[Some(0.0), Some(2.0)]]);
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let _ = dense(&[&[Some(-1.0)]]);
    }

    #[test]
    fn worker_dependent_weights() {
        // General weights (not left-only): 3x3 with a unique optimum
        // requiring the full Hungarian machinery.
        let w = [
            [Some(7.0), Some(4.0), Some(3.0)],
            [Some(6.0), Some(8.0), Some(5.0)],
            [Some(9.0), Some(4.0), Some(4.0)],
        ];
        let (m, total) = max_weight_matching_dense(3, 3, |l, r| w[l][r]);
        // Optimum: (0,?)… enumerate: best is 4 + 8 + 9 = 21 via (0,1),(1,1)x —
        // check all 6 permutations: 7+8+4=19, 7+5+4=16, 4+6+4=14, 4+5+9=18,
        // 3+6+4=13, 3+8+9=20 → wait recompute: perms of columns for rows
        // (0,1,2): [0,1,2]=7+8+4=19, [0,2,1]=7+5+4=16, [1,0,2]=4+6+4=14,
        // [1,2,0]=4+5+9=18, [2,0,1]=3+6+4=13, [2,1,0]=3+8+9=20. Max = 20.
        assert!((total - 20.0).abs() < 1e-12, "got {total}");
        assert_eq!(m.pairs, vec![Some(2), Some(1), Some(0)]);
    }
}
