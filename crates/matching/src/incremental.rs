//! Incremental augmenting paths over a mutable pre-matching.
//!
//! MAPS (Algorithm 2) grows a pre-matching `M′` one worker at a time: when
//! the max-heap decides grid `g` should receive one more unit of supply,
//! the algorithm must "find an augmenting path for r ∈ R^tg and add the
//! match into M′" (line 10), and the feasibility test in line 16 asks
//! whether *any* unassigned task of the grid admits an augmenting path.
//! [`IncrementalMatching`] supports exactly these two operations.
//!
//! Since PR 1 the search state lives in a [`MatchScratch`], the shared
//! zero-allocation kernel workspace: the DFS, the epoch-stamped visited
//! marks and the packed match arrays are one implementation reused by
//! the batch kernels, and [`IncrementalMatching::reuse`] lets callers
//! re-seat an existing matching on a fresh graph without reallocating.

use crate::graph::BipartiteGraph;
use crate::scratch::MatchScratch;
use crate::Matching;

/// A mutable matching over a borrowed bipartite graph supporting Kuhn-style
/// single-source augmentation.
#[derive(Debug, Clone)]
pub struct IncrementalMatching<'g> {
    graph: &'g BipartiteGraph,
    core: MatchScratch,
}

impl<'g> IncrementalMatching<'g> {
    /// Starts from the empty matching.
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        let mut core = MatchScratch::with_capacity(graph.n_left(), graph.n_right());
        core.reset(graph.n_left(), graph.n_right());
        Self { graph, core }
    }

    /// Starts from the empty matching inside a recycled scratch: no
    /// allocation happens if `scratch` has already served a graph at
    /// least this large.
    pub fn with_scratch(graph: &'g BipartiteGraph, mut scratch: MatchScratch) -> Self {
        scratch.reset(graph.n_left(), graph.n_right());
        Self {
            graph,
            core: scratch,
        }
    }

    /// Re-seats this matcher on a new graph, clearing the matching but
    /// keeping every buffer.
    pub fn reuse<'h>(self, graph: &'h BipartiteGraph) -> IncrementalMatching<'h> {
        IncrementalMatching::with_scratch(graph, self.core)
    }

    /// Decomposes into the underlying scratch for further reuse.
    pub fn into_scratch(self) -> MatchScratch {
        self.core
    }

    /// The graph this matching lives on.
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// Current assignment of left vertex `l`.
    #[inline]
    pub fn matched_right(&self, l: usize) -> Option<u32> {
        self.core.matched_right(l)
    }

    /// Current assignment of right vertex `r`.
    #[inline]
    pub fn matched_left(&self, r: usize) -> Option<u32> {
        self.core.matched_left(r)
    }

    /// Whether left vertex `l` is currently matched.
    #[inline]
    pub fn is_left_matched(&self, l: usize) -> bool {
        self.core.matched_right(l).is_some()
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.core.cardinality()
    }

    /// Tries to match the currently-unmatched left vertex `l` by finding an
    /// augmenting path; on success the path is applied and `true` returned.
    /// A failed search leaves the matching untouched.
    ///
    /// # Panics
    /// Panics if `l` is already matched (augmenting from a matched vertex
    /// would corrupt the matching).
    pub fn try_augment(&mut self, l: usize) -> bool {
        self.core.try_augment(self.graph, l)
    }

    /// Like [`Self::try_augment`] but never modifies the matching; returns
    /// whether an augmenting path from `l` exists right now.
    pub fn can_augment(&mut self, l: usize) -> bool {
        self.core.can_augment(self.graph, l)
    }

    /// Removes the assignment of left vertex `l` (if any), freeing its
    /// worker. Used by simulators when a task is cancelled.
    pub fn unmatch_left(&mut self, l: usize) {
        self.core.unmatch_left(l);
    }

    /// Freezes into a plain [`Matching`].
    pub fn into_matching(self) -> Matching {
        self.core.to_matching()
    }

    /// A snapshot of the current assignment.
    pub fn to_matching(&self) -> Matching {
        self.core.to_matching()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;

    fn chain_graph() -> BipartiteGraph {
        // l0-{r0}, l1-{r0,r1}, l2-{r1,r2}: perfect matching exists but
        // requires augmentation through occupied vertices.
        BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)])
            .build()
    }

    #[test]
    fn augments_through_chain() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(1)); // l1 -> r0 (first neighbour)
        assert_eq!(m.matched_right(1), Some(0));
        assert!(m.try_augment(0)); // pushes l1 to r1
        assert_eq!(m.matched_right(0), Some(0));
        assert_eq!(m.matched_right(1), Some(1));
        assert!(m.try_augment(2)); // pushes nothing: r2 free? l2-{r1,r2}: r1 taken -> l1 -> ... l1 can't move (r0 taken by l0, l0 stuck) so r2 used.
        assert_eq!(m.matched_right(2), Some(2));
        assert_eq!(m.cardinality(), 3);
        assert!(m.to_matching().is_valid(&g));
    }

    #[test]
    fn failed_augment_leaves_matching_intact() {
        // Two tasks, one worker.
        let g = BipartiteGraphBuilder::new(2, 1)
            .with_edges([(0, 0), (1, 0)])
            .build();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        let before = m.to_matching();
        assert!(!m.try_augment(1));
        assert_eq!(m.to_matching(), before);
    }

    #[test]
    fn can_augment_is_side_effect_free() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        let before = m.to_matching();
        assert!(m.can_augment(1));
        assert_eq!(m.to_matching(), before, "can_augment must not mutate");
        assert!(m.try_augment(1));
        assert!(m.can_augment(2));
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn can_augment_false_for_matched_vertex() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        assert!(!m.can_augment(0));
    }

    #[test]
    fn unmatch_frees_worker() {
        let g = BipartiteGraphBuilder::new(2, 1)
            .with_edges([(0, 0), (1, 0)])
            .build();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        assert!(!m.can_augment(1));
        m.unmatch_left(0);
        assert_eq!(m.cardinality(), 0);
        assert!(m.try_augment(1));
        assert_eq!(m.matched_left(0), Some(1));
    }

    #[test]
    fn running_example_supply_distribution() {
        // Example 5's trace: grid 9 = {r1(=0), r2(=1)}, grid 11 = {r3(=2)}.
        // After w1 is assigned to r1, no augmenting path exists for r2,
        // but r3 still has one.
        let g = BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0)); // r1 takes w1
        assert!(!m.can_augment(1)); // r2 has no path (paper: insert Δ=0)
        assert!(m.try_augment(2)); // r3 served via w2/w3
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    #[should_panic(expected = "already-matched")]
    fn double_augment_panics() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        let _ = m.try_augment(0);
    }

    #[test]
    fn reuse_carries_buffers_not_state() {
        let g1 = chain_graph();
        let mut m = IncrementalMatching::new(&g1);
        assert!(m.try_augment(0));
        assert!(m.try_augment(1));
        let g2 = BipartiteGraphBuilder::new(2, 2)
            .with_edges([(0, 1), (1, 0)])
            .build();
        let mut m = m.reuse(&g2);
        assert_eq!(m.cardinality(), 0, "reuse clears the matching");
        assert!(m.try_augment(0));
        assert!(m.try_augment(1));
        assert!(m.to_matching().is_valid(&g2));
    }
}
