//! Incremental augmenting paths over a mutable pre-matching.
//!
//! MAPS (Algorithm 2) grows a pre-matching `M′` one worker at a time: when
//! the max-heap decides grid `g` should receive one more unit of supply,
//! the algorithm must "find an augmenting path for r ∈ R^tg and add the
//! match into M′" (line 10), and the feasibility test in line 16 asks
//! whether *any* unassigned task of the grid admits an augmenting path.
//! [`IncrementalMatching`] supports exactly these two operations with
//! epoch-stamped visited marks so repeated probes do not pay `O(V)`
//! clearing costs.

use crate::graph::BipartiteGraph;
use crate::Matching;

/// A mutable matching over a borrowed bipartite graph supporting Kuhn-style
/// single-source augmentation.
#[derive(Debug, Clone)]
pub struct IncrementalMatching<'g> {
    graph: &'g BipartiteGraph,
    match_left: Vec<Option<u32>>,
    match_right: Vec<Option<u32>>,
    /// Epoch stamps replacing a `visited: Vec<bool>` that would need
    /// clearing before every augmentation attempt.
    visited_right: Vec<u32>,
    epoch: u32,
}

impl<'g> IncrementalMatching<'g> {
    /// Starts from the empty matching.
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        Self {
            graph,
            match_left: vec![None; graph.n_left()],
            match_right: vec![None; graph.n_right()],
            visited_right: vec![0; graph.n_right()],
            epoch: 0,
        }
    }

    /// The graph this matching lives on.
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// Current assignment of left vertex `l`.
    #[inline]
    pub fn matched_right(&self, l: usize) -> Option<u32> {
        self.match_left[l]
    }

    /// Current assignment of right vertex `r`.
    #[inline]
    pub fn matched_left(&self, r: usize) -> Option<u32> {
        self.match_right[r]
    }

    /// Whether left vertex `l` is currently matched.
    #[inline]
    pub fn is_left_matched(&self, l: usize) -> bool {
        self.match_left[l].is_some()
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.match_left.iter().filter(|m| m.is_some()).count()
    }

    /// Tries to match the currently-unmatched left vertex `l` by finding an
    /// augmenting path; on success the path is applied and `true` returned.
    /// A failed search leaves the matching untouched.
    ///
    /// # Panics
    /// Panics if `l` is already matched (augmenting from a matched vertex
    /// would corrupt the matching).
    pub fn try_augment(&mut self, l: usize) -> bool {
        assert!(
            self.match_left[l].is_none(),
            "augmenting from already-matched left vertex {l}"
        );
        self.bump_epoch();
        self.dfs(l, true)
    }

    /// Like [`Self::try_augment`] but never modifies the matching; returns
    /// whether an augmenting path from `l` exists right now.
    pub fn can_augment(&mut self, l: usize) -> bool {
        if self.match_left[l].is_some() {
            return false;
        }
        self.bump_epoch();
        self.dfs(l, false)
    }

    /// Removes the assignment of left vertex `l` (if any), freeing its
    /// worker. Used by simulators when a task is cancelled.
    pub fn unmatch_left(&mut self, l: usize) {
        if let Some(r) = self.match_left[l].take() {
            self.match_right[r as usize] = None;
        }
    }

    /// Freezes into a plain [`Matching`].
    pub fn into_matching(self) -> Matching {
        Matching {
            pairs: self.match_left,
        }
    }

    /// A snapshot of the current assignment.
    pub fn to_matching(&self) -> Matching {
        Matching {
            pairs: self.match_left.clone(),
        }
    }

    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            self.visited_right.fill(0);
            1
        });
    }

    /// Kuhn's DFS. When `apply` is false the assignments are not written;
    /// the reachability computed is identical because assignment writes
    /// only happen on the success path, after all recursion has resolved.
    fn dfs(&mut self, l: usize, apply: bool) -> bool {
        // Recursion depth is bounded by the matching cardinality, which is
        // small for the per-period graphs this system builds.
        let graph = self.graph;
        for &r in graph.neighbors(l) {
            let r = r as usize;
            if self.visited_right[r] == self.epoch {
                continue;
            }
            self.visited_right[r] = self.epoch;
            let occupant = self.match_right[r];
            let free = match occupant {
                None => true,
                Some(l2) => self.dfs(l2 as usize, apply),
            };
            if free {
                if apply {
                    self.match_right[r] = Some(l as u32);
                    self.match_left[l] = Some(r as u32);
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;

    fn chain_graph() -> BipartiteGraph {
        // l0-{r0}, l1-{r0,r1}, l2-{r1,r2}: perfect matching exists but
        // requires augmentation through occupied vertices.
        BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)])
            .build()
    }

    #[test]
    fn augments_through_chain() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(1)); // l1 -> r0 (first neighbour)
        assert_eq!(m.matched_right(1), Some(0));
        assert!(m.try_augment(0)); // pushes l1 to r1
        assert_eq!(m.matched_right(0), Some(0));
        assert_eq!(m.matched_right(1), Some(1));
        assert!(m.try_augment(2)); // pushes nothing: r2 free? l2-{r1,r2}: r1 taken -> l1 -> ... l1 can't move (r0 taken by l0, l0 stuck) so r2 used.
        assert_eq!(m.matched_right(2), Some(2));
        assert_eq!(m.cardinality(), 3);
        assert!(m.to_matching().is_valid(&g));
    }

    #[test]
    fn failed_augment_leaves_matching_intact() {
        // Two tasks, one worker.
        let g = BipartiteGraphBuilder::new(2, 1)
            .with_edges([(0, 0), (1, 0)])
            .build();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        let before = m.to_matching();
        assert!(!m.try_augment(1));
        assert_eq!(m.to_matching(), before);
    }

    #[test]
    fn can_augment_is_side_effect_free() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        let before = m.to_matching();
        assert!(m.can_augment(1));
        assert_eq!(m.to_matching(), before, "can_augment must not mutate");
        assert!(m.try_augment(1));
        assert!(m.can_augment(2));
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn can_augment_false_for_matched_vertex() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        assert!(!m.can_augment(0));
    }

    #[test]
    fn unmatch_frees_worker() {
        let g = BipartiteGraphBuilder::new(2, 1)
            .with_edges([(0, 0), (1, 0)])
            .build();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        assert!(!m.can_augment(1));
        m.unmatch_left(0);
        assert_eq!(m.cardinality(), 0);
        assert!(m.try_augment(1));
        assert_eq!(m.matched_left(0), Some(1));
    }

    #[test]
    fn running_example_supply_distribution() {
        // Example 5's trace: grid 9 = {r1(=0), r2(=1)}, grid 11 = {r3(=2)}.
        // After w1 is assigned to r1, no augmenting path exists for r2,
        // but r3 still has one.
        let g = BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0)); // r1 takes w1
        assert!(!m.can_augment(1)); // r2 has no path (paper: insert Δ=0)
        assert!(m.try_augment(2)); // r3 served via w2/w3
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    #[should_panic(expected = "already-matched")]
    fn double_augment_panics() {
        let g = chain_graph();
        let mut m = IncrementalMatching::new(&g);
        assert!(m.try_augment(0));
        let _ = m.try_augment(0);
    }
}
