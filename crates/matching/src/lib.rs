//! # maps-matching
//!
//! Bipartite-matching substrate for the MAPS reproduction
//! (Tong et al., SIGMOD 2018).
//!
//! The paper models each time period as a probabilistic bipartite graph
//! `B^t = <R^t, W^t, E^t, S>` between tasks (left) and workers (right),
//! with an edge whenever the task origin satisfies the worker's range
//! constraint and edge weight `d_r · p_r` (Definition 5). This crate
//! provides everything the pricing layer needs from that graph:
//!
//! * [`BipartiteGraph`] — compact CSR adjacency container.
//! * [`IncrementalMatching`] — Kuhn-style single augmenting paths over a
//!   mutable pre-matching `M′`; this is the primitive behind Algorithm 2's
//!   lines 10 and 16 ("find an augmenting path for r ∈ R^tg").
//! * [`hopcroft_karp`] — maximum-cardinality matching in `O(E·√V)`.
//! * [`hungarian`] — exact maximum-weight bipartite matching (Kuhn–Munkres),
//!   the verification oracle for `U(B^t)` of Definition 5.
//! * [`greedy_weight`] — exact maximum-weight matching in the special case
//!   where weights live on the *left* vertices (as in the paper: the weight
//!   `d_r·p_r` does not depend on the worker). The matchable task subsets
//!   form a transversal matroid, so greedy-by-weight with augmenting paths
//!   is optimal; this is what lets the simulator run the paper's
//!   `|R| = |W| = 500 000` scalability experiment.
//! * [`possible_worlds`] — exact expected total revenue over the `2^|R|`
//!   possible worlds of Definition 6: a Gray-code fast path with O(1)
//!   probability updates plus the naive enumerator kept as test oracle
//!   (reproduces Example 3's expected revenue).
//! * [`scratch`] — [`MatchScratch`], the reusable zero-allocation
//!   workspace behind every matching kernel, and the
//!   [`graph::MaskedGraph`] view that replaces `filter_left` copies in
//!   hot loops.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod greedy_weight;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod incremental;
pub mod possible_worlds;
pub mod scratch;

pub use graph::{BipartiteGraph, BipartiteGraphBuilder, MaskedGraph};
pub use greedy_weight::max_weight_matching_left_weights;
pub use hopcroft_karp::max_cardinality_matching;
pub use hungarian::max_weight_matching_dense;
pub use incremental::IncrementalMatching;
pub use possible_worlds::{expected_total_revenue_exact, PossibleWorlds};
pub use scratch::{sort_by_weight_desc, MatchScratch};

/// Commonly used items.
pub mod prelude {
    pub use crate::graph::{BipartiteGraph, BipartiteGraphBuilder, MaskedGraph};
    pub use crate::greedy_weight::max_weight_matching_left_weights;
    pub use crate::hopcroft_karp::max_cardinality_matching;
    pub use crate::hungarian::max_weight_matching_dense;
    pub use crate::incremental::IncrementalMatching;
    pub use crate::possible_worlds::{expected_total_revenue_exact, PossibleWorlds};
    pub use crate::scratch::{sort_by_weight_desc, MatchScratch};
    pub use crate::Matching;
}

/// A matching stated as `left -> right` assignments.
///
/// `pairs[l] == Some(r)` means left vertex `l` is matched to right vertex
/// `r`. Every algorithm in this crate returns this shape so results are
/// interchangeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Per-left-vertex assignment.
    pub pairs: Vec<Option<u32>>,
}

impl Matching {
    /// An empty matching over `n_left` left vertices.
    pub fn empty(n_left: usize) -> Self {
        Self {
            pairs: vec![None; n_left],
        }
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.pairs.iter().filter(|p| p.is_some()).count()
    }

    /// Total weight under per-left-vertex weights (the paper's
    /// `Σ d_r · p_r` over matched tasks).
    pub fn total_left_weight(&self, weights: &[f64]) -> f64 {
        self.pairs
            .iter()
            .zip(weights)
            .filter_map(|(p, &w)| p.map(|_| w))
            .sum()
    }

    /// Checks the matching is valid for `graph`: edges exist and no right
    /// vertex is used twice. Used pervasively by tests.
    pub fn is_valid(&self, graph: &BipartiteGraph) -> bool {
        let mut used = vec![false; graph.n_right()];
        for (l, p) in self.pairs.iter().enumerate() {
            if let Some(r) = *p {
                let r = r as usize;
                if r >= graph.n_right() || used[r] || !graph.has_edge(l, r) {
                    return false;
                }
                used[r] = true;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_helpers() {
        let g = BipartiteGraphBuilder::new(3, 2)
            .with_edges([(0, 0), (1, 0), (2, 1)])
            .build();
        let mut m = Matching::empty(3);
        assert_eq!(m.cardinality(), 0);
        assert!(m.is_valid(&g));
        m.pairs[0] = Some(0);
        m.pairs[2] = Some(1);
        assert_eq!(m.cardinality(), 2);
        assert!(m.is_valid(&g));
        assert!((m.total_left_weight(&[1.5, 2.0, 3.0]) - 4.5).abs() < 1e-12);
        // duplicate right vertex → invalid
        m.pairs[1] = Some(0);
        assert!(!m.is_valid(&g));
        // non-existent edge → invalid
        let mut m2 = Matching::empty(3);
        m2.pairs[0] = Some(1);
        assert!(!m2.is_valid(&g));
    }
}
