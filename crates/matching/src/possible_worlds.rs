//! Possible-world semantics for the probabilistic bipartite graph.
//!
//! Definition 6 of the paper: the expected total revenue is
//! `E[U(B^t) | P^t] = Σ_i U(PWB_i) · Pr[PWB_i]`, summing over all `2^|R|`
//! instantiations in which each task independently accepts its price with
//! probability `S^g(p_r)`. Fig. 2 enumerates the 8 worlds of the running
//! example. This module reproduces that computation exactly — it is the
//! ground-truth oracle against which the pricing strategies' approximation
//! `L^g(n, p)` and the Monte-Carlo evaluator are tested.

use crate::graph::BipartiteGraph;
use crate::greedy_weight::max_weight_matching_left_weights;

/// Maximum number of tasks for exact enumeration (2^24 worlds ≈ 16M is
/// already generous for a test oracle).
pub const MAX_EXACT_TASKS: usize = 24;

/// One instantiated possible world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct World {
    /// Bitmask over left vertices: bit `l` set ⇔ task `l` accepts.
    pub mask: u64,
    /// Sampling probability `Pr[PWB_i]`.
    pub probability: f64,
    /// Total revenue `U(PWB_i)` (maximum-weight matching of the world).
    pub revenue: f64,
}

/// Exact possible-world enumerator over a probabilistic bipartite graph.
#[derive(Debug, Clone)]
pub struct PossibleWorlds<'a> {
    graph: &'a BipartiteGraph,
    weights: &'a [f64],
    accept_probs: &'a [f64],
}

impl<'a> PossibleWorlds<'a> {
    /// Creates the enumerator.
    ///
    /// * `weights[l]` — revenue of task `l` if accepted and matched
    ///   (`d_r · p_r`).
    /// * `accept_probs[l]` — acceptance probability `S^g(p_r)` of task `l`.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with the graph, if any probability
    /// is outside `[0, 1]`, or if `n_left > MAX_EXACT_TASKS`.
    pub fn new(graph: &'a BipartiteGraph, weights: &'a [f64], accept_probs: &'a [f64]) -> Self {
        assert_eq!(weights.len(), graph.n_left(), "one weight per task");
        assert_eq!(accept_probs.len(), graph.n_left(), "one probability per task");
        assert!(
            graph.n_left() <= MAX_EXACT_TASKS,
            "exact enumeration supports at most {MAX_EXACT_TASKS} tasks, got {}",
            graph.n_left()
        );
        for (l, &q) in accept_probs.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&q),
                "acceptance probability of task {l} out of [0,1]: {q}"
            );
        }
        Self {
            graph,
            weights,
            accept_probs,
        }
    }

    /// Number of possible worlds, `2^|R|`.
    pub fn num_worlds(&self) -> u64 {
        1u64 << self.graph.n_left()
    }

    /// Iterates every possible world with its probability and revenue.
    pub fn worlds(&self) -> impl Iterator<Item = World> + '_ {
        let n = self.graph.n_left();
        (0..self.num_worlds()).map(move |mask| {
            let mut probability = 1.0;
            let mut keep = vec![false; n];
            for (l, k) in keep.iter_mut().enumerate() {
                if mask >> l & 1 == 1 {
                    probability *= self.accept_probs[l];
                    *k = true;
                } else {
                    probability *= 1.0 - self.accept_probs[l];
                }
            }
            let (sub, old_of_new) = self.graph.filter_left(&keep);
            let sub_weights: Vec<f64> = old_of_new
                .iter()
                .map(|&l| self.weights[l as usize])
                .collect();
            let (_, revenue) = max_weight_matching_left_weights(&sub, &sub_weights);
            World {
                mask,
                probability,
                revenue,
            }
        })
    }

    /// The expected total revenue `E[U(B^t)|P^t]` (Definition 6).
    pub fn expected_revenue(&self) -> f64 {
        self.worlds().map(|w| w.probability * w.revenue).sum()
    }
}

/// Convenience wrapper: exact expected total revenue of a priced instance.
pub fn expected_total_revenue_exact(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
) -> f64 {
    PossibleWorlds::new(graph, weights, accept_probs).expected_revenue()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;

    fn running_example() -> BipartiteGraph {
        BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let g = running_example();
        let pw = PossibleWorlds::new(&g, &[3.9, 2.1, 2.0], &[0.5, 0.5, 0.8]);
        let sum: f64 = pw.worlds().map(|w| w.probability).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(pw.num_worlds(), 8);
    }

    #[test]
    fn example3_world_probability() {
        // Paper, Example 3: the world where only r1 accepts has probability
        // S(3)·(1−S(3))·(1−S(2)) = 0.5·0.5·0.2 = 0.05 and revenue 3.9.
        let g = running_example();
        let pw = PossibleWorlds::new(&g, &[3.9, 2.1, 2.0], &[0.5, 0.5, 0.8]);
        let world = pw.worlds().find(|w| w.mask == 0b001).unwrap();
        assert!((world.probability - 0.05).abs() < 1e-12);
        assert!((world.revenue - 3.9).abs() < 1e-12);
    }

    #[test]
    fn example3_expected_revenue() {
        // Prices (3,3,2) with Table-1 ratios: S(3)=0.5 for r1,r2; S(2)=0.8
        // for r3. Weights d_r·p_r = (1.3·3, 0.7·3, 1·2) = (3.9, 2.1, 2.0).
        // Exact expectation = 4.075, which the paper reports rounded as 4.1.
        let g = running_example();
        let e = expected_total_revenue_exact(&g, &[3.9, 2.1, 2.0], &[0.5, 0.5, 0.8]);
        assert!((e - 4.075).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn prices_332_beat_uniform_2_on_running_example() {
        // The paper argues prices (3,3,2) are optimal; in particular they
        // beat the globally uniform Myerson price 2 (which is optimal only
        // under unlimited supply).
        let g = running_example();
        let d = [1.3, 0.7, 1.0];
        let s = |p: f64| match p as u32 {
            1 => 0.9,
            2 => 0.8,
            3 => 0.5,
            _ => 0.0,
        };
        let rev = |prices: [f64; 3]| {
            let weights: Vec<f64> = d.iter().zip(prices).map(|(&d, p)| d * p).collect();
            let probs: Vec<f64> = prices.iter().map(|&p| s(p)).collect();
            expected_total_revenue_exact(&g, &weights, &probs)
        };
        assert!(rev([3.0, 3.0, 2.0]) > rev([2.0, 2.0, 2.0]));
    }

    #[test]
    fn prices_332_optimal_over_grid_constrained_ladder() {
        // Exhaustive search over per-grid prices in {1,2,3} (r1 and r2 share
        // grid 9 so they must share a price; r3 is alone in grid 11).
        let g = running_example();
        let d = [1.3, 0.7, 1.0];
        let s = |p: f64| match p as u32 {
            1 => 0.9,
            2 => 0.8,
            3 => 0.5,
            _ => 0.0,
        };
        let mut best = (0.0f64, [0.0f64; 3]);
        for p9 in [1.0, 2.0, 3.0] {
            for p11 in [1.0, 2.0, 3.0] {
                let prices = [p9, p9, p11];
                let weights: Vec<f64> = d.iter().zip(prices).map(|(&d, p)| d * p).collect();
                let probs: Vec<f64> = prices.iter().map(|&p| s(p)).collect();
                let e = expected_total_revenue_exact(&g, &weights, &probs);
                if e > best.0 {
                    best = (e, prices);
                }
            }
        }
        assert_eq!(best.1, [3.0, 3.0, 2.0], "paper's stated optimum");
        assert!((best.0 - 4.075).abs() < 1e-9);
    }

    #[test]
    fn certain_acceptance_reduces_to_matching() {
        let g = running_example();
        let e = expected_total_revenue_exact(&g, &[3.9, 2.1, 2.0], &[1.0, 1.0, 1.0]);
        assert!((e - 5.9).abs() < 1e-12);
    }

    #[test]
    fn zero_acceptance_gives_zero_revenue() {
        let g = running_example();
        let e = expected_total_revenue_exact(&g, &[3.9, 2.1, 2.0], &[0.0, 0.0, 0.0]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn expectation_is_linear_for_independent_components() {
        // Two disconnected task-worker pairs: expectation must be the sum
        // of the individual expectations q_i * w_i.
        let g = BipartiteGraphBuilder::new(2, 2)
            .with_edges([(0, 0), (1, 1)])
            .build();
        let e = expected_total_revenue_exact(&g, &[2.0, 3.0], &[0.3, 0.7]);
        assert!((e - (0.3 * 2.0 + 0.7 * 3.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_probability() {
        let g = running_example();
        let _ = PossibleWorlds::new(&g, &[1.0, 1.0, 1.0], &[0.5, 1.5, 0.5]);
    }
}
