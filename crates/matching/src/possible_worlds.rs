//! Possible-world semantics for the probabilistic bipartite graph.
//!
//! Definition 6 of the paper: the expected total revenue is
//! `E[U(B^t) | P^t] = Σ_i U(PWB_i) · Pr[PWB_i]`, summing over all `2^|R|`
//! instantiations in which each task independently accepts its price with
//! probability `S^g(p_r)`. Fig. 2 enumerates the 8 worlds of the running
//! example. This module reproduces that computation exactly — it is the
//! ground-truth oracle against which the pricing strategies' approximation
//! `L^g(n, p)` and the Monte-Carlo evaluator are tested.
//!
//! # Gray-code enumeration
//!
//! [`PossibleWorlds::expected_revenue`] walks the `2^m` worlds of the
//! `m` *free* tasks (those with acceptance probability strictly inside
//! `(0, 1)`; certain tasks are folded into a fixed base mask) in
//! **reflected-Gray-code order**: world `i` uses the mask
//! `g(i) = i ^ (i >> 1)`, and `g(i) ^ g(i+1)` has exactly one bit set.
//! Three consequences make this the fast path:
//!
//! * **O(1) probability updates.** Flipping task `l` into the world
//!   multiplies the running probability by `q_l / (1 − q_l)`; flipping
//!   it out divides by the same ratio. The naive path recomputes an
//!   `O(m)` product per world.
//! * **Incremental matching maintenance.** Because the matchable task
//!   subsets form a transversal matroid (see `greedy_weight`), the
//!   optimal matching changes by **at most one exchange** per flipped
//!   task: removing an unmatched task changes nothing; removing a
//!   matched task admits at most one maximum-weight replacement
//!   (reachable from the freed worker by an alternating path); adding
//!   a task either augments directly or swaps with the minimum-weight
//!   member of its fundamental circuit when strictly heavier. Each
//!   world therefore costs one or two bounded augmenting-path searches
//!   instead of a full re-solve.
//! * **Zero allocation in the loop.** All search state lives in
//!   buffers allocated once up front (the same epoch-stamp technique
//!   as [`MatchScratch`]); the naive path materializes a filtered
//!   subgraph, re-collects weights and re-sorts per world.
//!
//! To keep the incremental products/sums within strict tolerance of
//! the naive oracle, the running probability and revenue are
//! re-synchronized from scratch every [`RESYNC_PERIOD`] worlds, which
//! bounds accumulated rounding drift to a few hundred ULPs while
//! amortizing to `O(m / RESYNC_PERIOD)` ≈ 0 work per world.
//!
//! The naive enumerator ([`PossibleWorlds::worlds`] /
//! [`PossibleWorlds::expected_revenue_naive`]) is retained verbatim as
//! the test oracle; `gray_code_matches_naive_enumeration` pins the two
//! paths together to `1e-12` relative tolerance.

use crate::graph::BipartiteGraph;
use crate::greedy_weight::max_weight_matching_left_weights;
use crate::scratch::{sort_by_weight_desc, MatchScratch};

/// Maximum number of tasks for exact enumeration (2^24 worlds ≈ 16M is
/// already generous for a test oracle).
pub const MAX_EXACT_TASKS: usize = 24;

/// The Gray-code walk recomputes its running probability product from
/// scratch once per this many worlds, bounding multiplicative rounding
/// drift (see module docs).
const RESYNC_PERIOD: u64 = 1024;

/// One instantiated possible world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct World {
    /// Bitmask over left vertices: bit `l` set ⇔ task `l` accepts.
    pub mask: u64,
    /// Sampling probability `Pr[PWB_i]`.
    pub probability: f64,
    /// Total revenue `U(PWB_i)` (maximum-weight matching of the world).
    pub revenue: f64,
}

/// Exact possible-world enumerator over a probabilistic bipartite graph.
#[derive(Debug, Clone)]
pub struct PossibleWorlds<'a> {
    graph: &'a BipartiteGraph,
    weights: &'a [f64],
    accept_probs: &'a [f64],
}

impl<'a> PossibleWorlds<'a> {
    /// Creates the enumerator.
    ///
    /// * `weights[l]` — revenue of task `l` if accepted and matched
    ///   (`d_r · p_r`).
    /// * `accept_probs[l]` — acceptance probability `S^g(p_r)` of task `l`.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with the graph, if any probability
    /// is outside `[0, 1]`, or if `n_left > MAX_EXACT_TASKS`.
    pub fn new(graph: &'a BipartiteGraph, weights: &'a [f64], accept_probs: &'a [f64]) -> Self {
        assert_eq!(weights.len(), graph.n_left(), "one weight per task");
        assert_eq!(
            accept_probs.len(),
            graph.n_left(),
            "one probability per task"
        );
        assert!(
            graph.n_left() <= MAX_EXACT_TASKS,
            "exact enumeration supports at most {MAX_EXACT_TASKS} tasks, got {}",
            graph.n_left()
        );
        for (l, &q) in accept_probs.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&q),
                "acceptance probability of task {l} out of [0,1]: {q}"
            );
        }
        Self {
            graph,
            weights,
            accept_probs,
        }
    }

    /// Number of possible worlds, `2^|R|`.
    pub fn num_worlds(&self) -> u64 {
        1u64 << self.graph.n_left()
    }

    /// Iterates every possible world with its probability and revenue.
    ///
    /// This is the **naive oracle path**: per world it materializes the
    /// accepting subgraph with [`BipartiteGraph::filter_left`] and
    /// re-solves from scratch. Kept deliberately allocation-heavy and
    /// obviously correct; the production path is
    /// [`Self::expected_revenue`].
    pub fn worlds(&self) -> impl Iterator<Item = World> + '_ {
        let n = self.graph.n_left();
        (0..self.num_worlds()).map(move |mask| {
            let mut probability = 1.0;
            let mut keep = vec![false; n];
            for (l, k) in keep.iter_mut().enumerate() {
                if mask >> l & 1 == 1 {
                    probability *= self.accept_probs[l];
                    *k = true;
                } else {
                    probability *= 1.0 - self.accept_probs[l];
                }
            }
            let (sub, old_of_new) = self.graph.filter_left(&keep);
            let sub_weights: Vec<f64> = old_of_new
                .iter()
                .map(|&l| self.weights[l as usize])
                .collect();
            let (_, revenue) = max_weight_matching_left_weights(&sub, &sub_weights);
            World {
                mask,
                probability,
                revenue,
            }
        })
    }

    /// The expected total revenue `E[U(B^t)|P^t]` (Definition 6) via the
    /// naive oracle path. Quadratically slower in constants than
    /// [`Self::expected_revenue`]; exists for testing and benchmarking.
    pub fn expected_revenue_naive(&self) -> f64 {
        self.worlds().map(|w| w.probability * w.revenue).sum()
    }

    /// The expected total revenue `E[U(B^t)|P^t]` (Definition 6),
    /// computed by the Gray-code walk described in the module docs:
    /// one task flips per step, probabilities update in O(1), and the
    /// maximum-weight matching is maintained incrementally through the
    /// matroid exchange moves — no per-world allocation or re-solve.
    pub fn expected_revenue(&self) -> f64 {
        let n = self.graph.n_left();
        let mut keep = vec![false; n];

        // Fold out the certain tasks: q == 1 is in every world, q == 0
        // in none. Only the free tasks are enumerated, which also keeps
        // the q/(1-q) ratios finite.
        let mut free: Vec<usize> = Vec::with_capacity(n);
        for (l, &q) in self.accept_probs.iter().enumerate() {
            if q >= 1.0 {
                keep[l] = true;
            } else if q > 0.0 {
                free.push(l);
            }
        }
        let m = free.len();

        // Probability of the current world, recomputed from scratch.
        let full_prob = |keep_mask: &[bool]| -> f64 {
            free.iter()
                .map(|&l| {
                    if keep_mask[l] {
                        self.accept_probs[l]
                    } else {
                        1.0 - self.accept_probs[l]
                    }
                })
                .product()
        };

        let mut dynamic = DynamicMatching::new(self.graph, self.weights);
        let mut revenue = dynamic.rebuild(&keep);
        let mut probability = full_prob(&keep);
        let mut expected = probability * revenue;

        let mut gray: u64 = 0;
        for i in 1..(1u64 << m) {
            let next = i ^ (i >> 1);
            let flipped = (gray ^ next).trailing_zeros() as usize;
            gray = next;
            let l = free[flipped];
            let q = self.accept_probs[l];
            if keep[l] {
                keep[l] = false;
                probability *= (1.0 - q) / q;
                revenue += dynamic.remove(l, &keep);
            } else {
                keep[l] = true;
                probability *= q / (1.0 - q);
                revenue += dynamic.insert(l);
            }
            if i % RESYNC_PERIOD == 0 {
                // Bound incremental rounding drift: re-derive both the
                // probability product and the revenue sum exactly.
                probability = full_prob(&keep);
                revenue = dynamic.matched_weight();
            }
            expected += probability * revenue;
        }
        expected
    }
}

/// Exact dynamic maximum-weight matching under single-task insertion /
/// removal, backing the Gray-code walk.
///
/// Exactness rests on the transversal-matroid structure of left-sided
/// weights (`greedy_weight` module docs): the optimum after adding or
/// removing one task differs from the previous optimum by **at most
/// one exchange**, namely
///
/// * *remove unmatched task* — optimum unchanged;
/// * *remove matched task `l`* — optimum is the old matching minus `l`
///   plus the maximum-weight task that can now augment; every such
///   task reaches the freed worker by an alternating path, so
///   candidates are found by one alternating search from that worker
///   (over the reverse adjacency built once per instance);
/// * *insert task `l`* — if an augmenting path exists the optimum
///   gains `l`; otherwise let `m` be the minimum-weight member of the
///   fundamental circuit of `l` (the matched tasks reachable from `l`
///   by alternating paths): if `w_l > w_m` the optimum swaps `m` for
///   `l`, else it is unchanged.
struct DynamicMatching<'a> {
    graph: &'a BipartiteGraph,
    weights: &'a [f64],
    /// The shared augmenting-path kernel: owns the match arrays, the
    /// two-pass Kuhn DFS and its epoch-stamped visited marks.
    core: MatchScratch,
    /// Reverse CSR adjacency (worker -> tasks), built once.
    radj_starts: Vec<u32>,
    radj: Vec<u32>,
    /// Worker visit stamps for the exchange searches below (separate
    /// from the kernel's own DFS stamps).
    visited: Vec<u32>,
    epoch: u32,
    /// Scratch stack for the alternating searches.
    stack: Vec<u32>,
    /// Task order by descending weight for rebuilds.
    order: Vec<u32>,
    /// Number of in-world positive-weight tasks that are currently
    /// unmatched — the candidate pool for removal-side replacements.
    /// When zero, a matched task's removal cannot be compensated and
    /// the replacement search is skipped entirely (the common case on
    /// supply-rich graphs).
    unmatched_kept: usize,
}

impl<'a> DynamicMatching<'a> {
    fn new(graph: &'a BipartiteGraph, weights: &'a [f64]) -> Self {
        let (n_left, n_right) = (graph.n_left(), graph.n_right());
        // Reverse adjacency via counting sort.
        let mut radj_starts = vec![0u32; n_right + 1];
        for (_, r) in graph.edges() {
            radj_starts[r + 1] += 1;
        }
        for r in 0..n_right {
            radj_starts[r + 1] += radj_starts[r];
        }
        let mut radj = vec![0u32; graph.n_edges()];
        let mut cursor = radj_starts.clone();
        for (l, r) in graph.edges() {
            radj[cursor[r] as usize] = l as u32;
            cursor[r] += 1;
        }
        let mut order = Vec::with_capacity(n_left);
        sort_by_weight_desc(weights, &mut order);
        Self {
            graph,
            weights,
            core: MatchScratch::with_capacity(n_left, n_right),
            radj_starts,
            radj,
            visited: vec![0; n_right],
            epoch: 0,
            stack: Vec::with_capacity(n_left),
            order,
            unmatched_kept: 0,
        }
    }

    /// Solves from scratch for the given mask (greedy over the
    /// precomputed weight order) and returns the matching value.
    fn rebuild(&mut self, keep: &[bool]) -> f64 {
        self.core.reset(self.graph.n_left(), self.graph.n_right());
        self.unmatched_kept = 0;
        let order = std::mem::take(&mut self.order);
        let mut total = 0.0;
        for &l in &order {
            if keep[l as usize] {
                if self.core.try_augment(self.graph, l as usize) {
                    total += self.weights[l as usize];
                } else {
                    self.unmatched_kept += 1;
                }
            }
        }
        self.order = order;
        total
    }

    /// Exact current matching value, re-summed from scratch.
    fn matched_weight(&self) -> f64 {
        self.core
            .matched_pairs()
            .map(|(l, _)| self.weights[l])
            .sum()
    }

    fn bump_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            self.visited.fill(0);
            1
        });
        self.epoch
    }

    /// Task `l` enters the world; returns the revenue delta.
    ///
    /// Augmentation runs through the shared kernel; alternating paths
    /// only pass through *matched* tasks, which are kept in every
    /// world by construction, so no mask check is needed.
    fn insert(&mut self, l: usize) -> f64 {
        if self.weights[l] <= 0.0 {
            return 0.0;
        }
        if self.core.try_augment(self.graph, l) {
            return self.weights[l];
        }
        // No augmenting path: find the minimum-weight member of l's
        // fundamental circuit — the matched tasks reachable from l by
        // alternating paths.
        self.bump_epoch();
        self.stack.clear();
        self.stack.push(l as u32);
        let mut min_task: Option<usize> = None;
        while let Some(t) = self.stack.pop() {
            for &r in self.graph.neighbors(t as usize) {
                let r = r as usize;
                if self.visited[r] == self.epoch {
                    continue;
                }
                self.visited[r] = self.epoch;
                let occupant = self
                    .core
                    .matched_left(r)
                    .expect("free worker despite failed augment");
                let o = occupant as usize;
                if min_task.is_none_or(|best| (self.weights[o], o) < (self.weights[best], best)) {
                    min_task = Some(o);
                }
                self.stack.push(occupant);
            }
        }
        match min_task {
            Some(m) if self.weights[l] > self.weights[m] => {
                // Swap: free m's worker, then l must augment. The
                // displaced m stays in the world, now unmatched.
                self.core.unmatch_left(m);
                let ok = self.core.try_augment(self.graph, l);
                debug_assert!(ok, "augment must succeed after circuit swap");
                self.unmatched_kept += 1;
                self.weights[l] - self.weights[m]
            }
            _ => {
                // l joins the world unmatched.
                self.unmatched_kept += 1;
                0.0
            }
        }
    }

    /// Task `l` leaves the world described by `keep` (`keep[l]` is
    /// already false); returns the revenue delta.
    fn remove(&mut self, l: usize, keep: &[bool]) -> f64 {
        let Some(freed) = self.core.matched_right(l) else {
            if self.weights[l] > 0.0 {
                self.unmatched_kept -= 1;
            }
            return 0.0;
        };
        self.core.unmatch_left(l);
        if self.unmatched_kept == 0 {
            // Nobody is waiting for supply: no replacement possible.
            return -self.weights[l];
        }
        // The only tasks that can replace l are unmatched in-world
        // tasks with an alternating path to the freed worker; collect
        // them by a reverse alternating search from that worker and
        // take the heaviest.
        self.bump_epoch();
        self.visited[freed as usize] = self.epoch;
        self.stack.clear();
        self.stack.push(freed);
        let mut best: Option<usize> = None;
        while let Some(r) = self.stack.pop() {
            let (s, e) = (
                self.radj_starts[r as usize] as usize,
                self.radj_starts[r as usize + 1] as usize,
            );
            for i in s..e {
                let t = self.radj[i] as usize;
                match self.core.matched_right(t) {
                    None => {
                        // Matched tasks are in-world by invariant; an
                        // unmatched one is a candidate only if the
                        // world contains it and it pays.
                        if keep[t]
                            && self.weights[t] > 0.0
                            && best.is_none_or(|b| {
                                (self.weights[t], std::cmp::Reverse(t))
                                    > (self.weights[b], std::cmp::Reverse(b))
                            })
                        {
                            best = Some(t);
                        }
                    }
                    Some(matched_worker) => {
                        if self.visited[matched_worker as usize] != self.epoch {
                            self.visited[matched_worker as usize] = self.epoch;
                            self.stack.push(matched_worker);
                        }
                    }
                }
            }
        }
        match best {
            Some(f) => {
                let ok = self.core.try_augment(self.graph, f);
                debug_assert!(ok, "augment must succeed towards the freed worker");
                self.unmatched_kept -= 1;
                self.weights[f] - self.weights[l]
            }
            None => -self.weights[l],
        }
    }
}

/// Convenience wrapper: exact expected total revenue of a priced instance
/// (Gray-code fast path).
pub fn expected_total_revenue_exact(
    graph: &BipartiteGraph,
    weights: &[f64],
    accept_probs: &[f64],
) -> f64 {
    PossibleWorlds::new(graph, weights, accept_probs).expected_revenue()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;

    fn running_example() -> BipartiteGraph {
        BipartiteGraphBuilder::new(3, 3)
            .with_edges([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
            .build()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let g = running_example();
        let pw = PossibleWorlds::new(&g, &[3.9, 2.1, 2.0], &[0.5, 0.5, 0.8]);
        let sum: f64 = pw.worlds().map(|w| w.probability).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(pw.num_worlds(), 8);
    }

    #[test]
    fn example3_world_probability() {
        // Paper, Example 3: the world where only r1 accepts has probability
        // S(3)·(1−S(3))·(1−S(2)) = 0.5·0.5·0.2 = 0.05 and revenue 3.9.
        let g = running_example();
        let pw = PossibleWorlds::new(&g, &[3.9, 2.1, 2.0], &[0.5, 0.5, 0.8]);
        let world = pw.worlds().find(|w| w.mask == 0b001).unwrap();
        assert!((world.probability - 0.05).abs() < 1e-12);
        assert!((world.revenue - 3.9).abs() < 1e-12);
    }

    #[test]
    fn example3_expected_revenue() {
        // Prices (3,3,2) with Table-1 ratios: S(3)=0.5 for r1,r2; S(2)=0.8
        // for r3. Weights d_r·p_r = (1.3·3, 0.7·3, 1·2) = (3.9, 2.1, 2.0).
        // Exact expectation = 4.075, which the paper reports rounded as 4.1.
        let g = running_example();
        let e = expected_total_revenue_exact(&g, &[3.9, 2.1, 2.0], &[0.5, 0.5, 0.8]);
        assert!((e - 4.075).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn prices_332_beat_uniform_2_on_running_example() {
        // The paper argues prices (3,3,2) are optimal; in particular they
        // beat the globally uniform Myerson price 2 (which is optimal only
        // under unlimited supply).
        let g = running_example();
        let d = [1.3, 0.7, 1.0];
        let s = |p: f64| match p as u32 {
            1 => 0.9,
            2 => 0.8,
            3 => 0.5,
            _ => 0.0,
        };
        let rev = |prices: [f64; 3]| {
            let weights: Vec<f64> = d.iter().zip(prices).map(|(&d, p)| d * p).collect();
            let probs: Vec<f64> = prices.iter().map(|&p| s(p)).collect();
            expected_total_revenue_exact(&g, &weights, &probs)
        };
        assert!(rev([3.0, 3.0, 2.0]) > rev([2.0, 2.0, 2.0]));
    }

    #[test]
    fn prices_332_optimal_over_grid_constrained_ladder() {
        // Exhaustive search over per-grid prices in {1,2,3} (r1 and r2 share
        // grid 9 so they must share a price; r3 is alone in grid 11).
        let g = running_example();
        let d = [1.3, 0.7, 1.0];
        let s = |p: f64| match p as u32 {
            1 => 0.9,
            2 => 0.8,
            3 => 0.5,
            _ => 0.0,
        };
        let mut best = (0.0f64, [0.0f64; 3]);
        for p9 in [1.0, 2.0, 3.0] {
            for p11 in [1.0, 2.0, 3.0] {
                let prices = [p9, p9, p11];
                let weights: Vec<f64> = d.iter().zip(prices).map(|(&d, p)| d * p).collect();
                let probs: Vec<f64> = prices.iter().map(|&p| s(p)).collect();
                let e = expected_total_revenue_exact(&g, &weights, &probs);
                if e > best.0 {
                    best = (e, prices);
                }
            }
        }
        assert_eq!(best.1, [3.0, 3.0, 2.0], "paper's stated optimum");
        assert!((best.0 - 4.075).abs() < 1e-9);
    }

    #[test]
    fn certain_acceptance_reduces_to_matching() {
        let g = running_example();
        let e = expected_total_revenue_exact(&g, &[3.9, 2.1, 2.0], &[1.0, 1.0, 1.0]);
        assert!((e - 5.9).abs() < 1e-12);
    }

    #[test]
    fn zero_acceptance_gives_zero_revenue() {
        let g = running_example();
        let e = expected_total_revenue_exact(&g, &[3.9, 2.1, 2.0], &[0.0, 0.0, 0.0]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn expectation_is_linear_for_independent_components() {
        // Two disconnected task-worker pairs: expectation must be the sum
        // of the individual expectations q_i * w_i.
        let g = BipartiteGraphBuilder::new(2, 2)
            .with_edges([(0, 0), (1, 1)])
            .build();
        let e = expected_total_revenue_exact(&g, &[2.0, 3.0], &[0.3, 0.7]);
        assert!((e - (0.3 * 2.0 + 0.7 * 3.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_probability() {
        let g = running_example();
        let _ = PossibleWorlds::new(&g, &[1.0, 1.0, 1.0], &[0.5, 1.5, 0.5]);
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// The satellite-task equivalence check: Gray-code enumeration must
    /// agree with naive enumeration to 1e-12 (relative) on pseudorandom
    /// graphs, including degenerate probabilities.
    #[test]
    fn gray_code_matches_naive_enumeration() {
        let mut s = 0xC0FFEEu64;
        for trial in 0..25 {
            let n = 1 + (xorshift(&mut s) % 12) as usize;
            let n_right = 1 + (xorshift(&mut s) % 10) as usize;
            let mut b = BipartiteGraphBuilder::new(n, n_right);
            for l in 0..n {
                for r in 0..n_right {
                    if xorshift(&mut s).is_multiple_of(3) {
                        b.add_edge(l, r);
                    }
                }
            }
            let g = b.build();
            let weights: Vec<f64> = (0..n)
                .map(|_| (xorshift(&mut s) % 1000) as f64 / 100.0)
                .collect();
            let probs: Vec<f64> = (0..n)
                .map(|_| match xorshift(&mut s) % 8 {
                    0 => 0.0,
                    1 => 1.0,
                    v => (v as f64) / 8.0,
                })
                .collect();
            let pw = PossibleWorlds::new(&g, &weights, &probs);
            let naive = pw.expected_revenue_naive();
            let gray = pw.expected_revenue();
            let tolerance = 1e-12 * naive.abs().max(1.0);
            assert!(
                (gray - naive).abs() < tolerance,
                "trial {trial}: gray {gray} vs naive {naive}"
            );
        }
    }

    /// Supply-constrained instances (far fewer workers than tasks)
    /// keep the unmatched pool non-empty, forcing the circuit-swap and
    /// replacement-search paths of the dynamic matching on almost
    /// every flip. Tie-heavy quantized weights and zero weights ride
    /// along to stress exchange tie handling.
    #[test]
    fn gray_code_matches_naive_when_supply_constrained() {
        let mut s = 0xBADC0DEu64;
        for trial in 0..25 {
            let n = 6 + (xorshift(&mut s) % 8) as usize;
            let n_right = 1 + (xorshift(&mut s) % 3) as usize; // 1..=3 workers
            let mut b = BipartiteGraphBuilder::new(n, n_right);
            for l in 0..n {
                for r in 0..n_right {
                    if xorshift(&mut s).is_multiple_of(2) {
                        b.add_edge(l, r);
                    }
                }
            }
            let g = b.build();
            // Quantized weights: many exact ties, some zeros.
            let weights: Vec<f64> = (0..n)
                .map(|_| (xorshift(&mut s) % 5) as f64 * 0.5)
                .collect();
            let probs: Vec<f64> = (0..n)
                .map(|_| 0.1 + 0.8 * ((xorshift(&mut s) % 64) as f64 / 64.0))
                .collect();
            let pw = PossibleWorlds::new(&g, &weights, &probs);
            let naive = pw.expected_revenue_naive();
            let gray = pw.expected_revenue();
            assert!(
                (gray - naive).abs() < 1e-12 * naive.abs().max(1.0),
                "trial {trial}: gray {gray} vs naive {naive}"
            );
        }
    }

    /// Gray order spans more than one resync window at n > 10, so this
    /// also exercises the periodic probability re-synchronization.
    #[test]
    fn gray_code_matches_naive_past_resync_boundary() {
        let n = 12; // 4096 worlds = 4 resync windows
        let mut b = BipartiteGraphBuilder::new(n, 6);
        for l in 0..n {
            b.add_edge(l, l % 6);
            b.add_edge(l, (l + 1) % 6);
        }
        let g = b.build();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + 0.37 * i as f64).collect();
        let probs: Vec<f64> = (0..n).map(|i| 0.05 + 0.9 * (i as f64) / n as f64).collect();
        let pw = PossibleWorlds::new(&g, &weights, &probs);
        let naive = pw.expected_revenue_naive();
        let gray = pw.expected_revenue();
        assert!(
            (gray - naive).abs() < 1e-12 * naive.max(1.0),
            "gray {gray} vs naive {naive}"
        );
    }
}
