//! Reusable zero-allocation matching workspace.
//!
//! The evaluation hot paths — possible-world enumeration, Monte-Carlo
//! revenue estimation, per-period market clearing — solve thousands to
//! millions of maximum-weight matchings over graphs of identical (or
//! shrinking) size. Allocating fresh match/visited/order buffers per
//! solve dominates the runtime at small `n`. [`MatchScratch`] owns all
//! of those buffers: after the first solve at a given size, subsequent
//! solves perform **no heap allocation at all** (buffers only ever
//! grow; `sort_unstable_by` is in-place).
//!
//! Two kernel families are provided:
//!
//! * [`MatchScratch::max_weight_value`] — greedy transversal-matroid
//!   maximum-weight matching over a whole [`BipartiteGraph`] (exact for
//!   the paper's left-sided weights, see `greedy_weight`).
//! * [`MatchScratch::max_weight_value_masked`] /
//!   [`MatchScratch::max_weight_value_ordered`] — the same matching
//!   restricted to the left vertices selected by a `keep` mask,
//!   *without* materializing the filtered subgraph the way
//!   [`BipartiteGraph::filter_left`] does. The `_ordered` variant
//!   additionally reuses a caller-provided weight-sorted order, which
//!   removes the per-solve `O(R log R)` sort when the weights are
//!   fixed and only the mask changes (possible worlds, Monte-Carlo).
//!
//! A masked solve never needs to consult the mask during augmentation:
//! only kept vertices are used as augmentation sources, and every
//! matched occupant reached mid-search was itself a kept source, so
//! the search stays inside the kept subgraph by construction.

use crate::graph::BipartiteGraph;
use crate::Matching;

/// Sentinel for "unmatched" in the packed match arrays.
const NONE: u32 = u32::MAX;

/// Reusable buffers for Kuhn-style augmenting-path matching.
///
/// See the [module docs](self) for the zero-allocation contract.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// `match_left[l]` = matched right vertex or [`NONE`].
    match_left: Vec<u32>,
    /// `match_right[r]` = matched left vertex or [`NONE`].
    match_right: Vec<u32>,
    /// Epoch stamps replacing a cleared-per-attempt `visited` array.
    visited_right: Vec<u32>,
    epoch: u32,
    /// Internal ordering buffer for the unordered entry points.
    order: Vec<u32>,
}

impl MatchScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for graphs up to `n_left × n_right`.
    pub fn with_capacity(n_left: usize, n_right: usize) -> Self {
        let mut s = Self::default();
        s.match_left.reserve(n_left);
        s.match_right.reserve(n_right);
        s.visited_right.reserve(n_right);
        s.order.reserve(n_left);
        s
    }

    /// Clears the matching and prepares the buffers for a graph of the
    /// given size without shrinking any allocation. Kernels call this
    /// themselves; [`crate::IncrementalMatching`] calls it when
    /// re-seating on a new graph.
    pub fn reset(&mut self, n_left: usize, n_right: usize) {
        self.begin(n_left, n_right);
    }

    /// Prepares the buffers for a solve over an `n_left × n_right`
    /// graph: sizes them and clears the active match region.
    fn begin(&mut self, n_left: usize, n_right: usize) {
        self.match_left.clear();
        self.match_left.resize(n_left, NONE);
        self.match_right.clear();
        self.match_right.resize(n_right, NONE);
        // `visited_right` keeps its epoch stamps across solves: stale
        // stamps are always strictly below the next epoch (wrap-around
        // is handled in `bump_epoch`).
        if self.visited_right.len() < n_right {
            self.visited_right.resize(n_right, 0);
        }
    }

    fn bump_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            self.visited_right.fill(0);
            1
        });
        self.epoch
    }

    /// Kuhn's DFS from left vertex `l`, in the classic two-pass form:
    /// scan `l`'s neighbourhood for a directly free worker before
    /// recursing through occupants. The first pass resolves the common
    /// case without touching the rest of the alternating tree, which
    /// is a large constant-factor win on the sparse, mostly-unsaturated
    /// graphs the evaluation loops solve.
    ///
    /// When `apply` is false the assignments are not written;
    /// reachability is identical because writes only happen on the
    /// success path.
    fn dfs(&mut self, graph: &BipartiteGraph, l: usize, apply: bool) -> bool {
        for &r in graph.neighbors(l) {
            let r = r as usize;
            if self.match_right[r] == NONE && self.visited_right[r] != self.epoch {
                self.visited_right[r] = self.epoch;
                if apply {
                    self.match_right[r] = l as u32;
                    self.match_left[l] = r as u32;
                }
                return true;
            }
        }
        for &r in graph.neighbors(l) {
            let r = r as usize;
            if self.visited_right[r] == self.epoch {
                continue;
            }
            self.visited_right[r] = self.epoch;
            let occupant = self.match_right[r];
            if self.dfs(graph, occupant as usize, apply) {
                if apply {
                    self.match_right[r] = l as u32;
                    self.match_left[l] = r as u32;
                }
                return true;
            }
        }
        false
    }

    /// Tries to match the currently-unmatched left vertex `l`.
    ///
    /// Exposed for [`crate::IncrementalMatching`], which wraps this
    /// scratch; prefer the `max_weight_*` kernels for whole solves.
    ///
    /// # Panics
    /// Panics if `l` is already matched.
    pub(crate) fn try_augment(&mut self, graph: &BipartiteGraph, l: usize) -> bool {
        assert!(
            self.match_left[l] == NONE,
            "augmenting from already-matched left vertex {l}"
        );
        self.bump_epoch();
        self.dfs(graph, l, true)
    }

    /// Side-effect-free variant of [`Self::try_augment`].
    pub(crate) fn can_augment(&mut self, graph: &BipartiteGraph, l: usize) -> bool {
        if self.match_left[l] != NONE {
            return false;
        }
        self.bump_epoch();
        self.dfs(graph, l, false)
    }

    /// Clears the assignment of left vertex `l`, if any.
    pub(crate) fn unmatch_left(&mut self, l: usize) {
        let r = self.match_left[l];
        if r != NONE {
            self.match_left[l] = NONE;
            self.match_right[r as usize] = NONE;
        }
    }

    /// Current assignment of left vertex `l` (valid after a solve).
    #[inline]
    pub fn matched_right(&self, l: usize) -> Option<u32> {
        match self.match_left[l] {
            NONE => None,
            r => Some(r),
        }
    }

    /// Current assignment of right vertex `r` (valid after a solve).
    #[inline]
    pub fn matched_left(&self, r: usize) -> Option<u32> {
        match self.match_right[r] {
            NONE => None,
            l => Some(l),
        }
    }

    /// Number of matched pairs of the last solve.
    pub fn cardinality(&self) -> usize {
        self.match_left.iter().filter(|&&r| r != NONE).count()
    }

    /// Iterates the matched `(left, right)` pairs of the last solve.
    pub fn matched_pairs(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.match_left
            .iter()
            .enumerate()
            .filter(|(_, &r)| r != NONE)
            .map(|(l, &r)| (l, r))
    }

    /// Copies the last solve's assignment into a standalone
    /// [`Matching`] (this is the one allocating accessor).
    pub fn to_matching(&self) -> Matching {
        Matching {
            pairs: self
                .match_left
                .iter()
                .map(|&r| if r == NONE { None } else { Some(r) })
                .collect(),
        }
    }

    /// Maximum-weight matching value of the whole graph under
    /// left-sided `weights` (exact; see `greedy_weight` for why greedy
    /// is optimal here). Sorting happens internally; reuse
    /// [`Self::max_weight_value_ordered`] with a prebuilt order to
    /// skip it.
    ///
    /// # Panics
    /// Panics if `weights.len() != graph.n_left()` or any weight is
    /// NaN.
    pub fn max_weight_value(&mut self, graph: &BipartiteGraph, weights: &[f64]) -> f64 {
        let mut order = std::mem::take(&mut self.order);
        sort_by_weight_desc(weights, &mut order);
        let total = self.max_weight_value_ordered(graph, weights, &order, None);
        self.order = order;
        total
    }

    /// Masked variant of [`Self::max_weight_value`]: only left
    /// vertices with `keep[l] == true` participate. Equivalent to
    /// matching over `graph.filter_left(keep)` but with no subgraph
    /// materialization.
    pub fn max_weight_value_masked(
        &mut self,
        graph: &BipartiteGraph,
        weights: &[f64],
        keep: &[bool],
    ) -> f64 {
        assert_eq!(keep.len(), graph.n_left(), "mask length mismatch");
        let mut order = std::mem::take(&mut self.order);
        sort_by_weight_desc(weights, &mut order);
        let total = self.max_weight_value_ordered(graph, weights, &order, Some(keep));
        self.order = order;
        total
    }

    /// The fully amortized hot-path kernel: maximum-weight matching
    /// value using a caller-provided `order` (left indices sorted by
    /// strictly positive weight, descending, ties by index — see
    /// [`sort_by_weight_desc`]) and an optional participation mask.
    ///
    /// With a prebuilt order this performs no sorting and no heap
    /// allocation (after buffer warm-up).
    pub fn max_weight_value_ordered(
        &mut self,
        graph: &BipartiteGraph,
        weights: &[f64],
        order: &[u32],
        keep: Option<&[bool]>,
    ) -> f64 {
        assert_eq!(
            weights.len(),
            graph.n_left(),
            "one weight per left vertex required"
        );
        self.begin(graph.n_left(), graph.n_right());
        let mut total = 0.0;
        match keep {
            None => {
                for &l in order {
                    self.bump_epoch();
                    if self.dfs(graph, l as usize, true) {
                        total += weights[l as usize];
                    }
                }
            }
            Some(keep) => {
                assert_eq!(keep.len(), graph.n_left(), "mask length mismatch");
                for &l in order {
                    if !keep[l as usize] {
                        continue;
                    }
                    self.bump_epoch();
                    if self.dfs(graph, l as usize, true) {
                        total += weights[l as usize];
                    }
                }
            }
        }
        total
    }
}

/// Fills `out` with the indices of strictly positive weights, sorted
/// by weight descending with ties broken by index — the processing
/// order that makes greedy matroid matching exact and deterministic.
///
/// # Panics
/// Panics if any weight is NaN.
pub fn sort_by_weight_desc(weights: &[f64], out: &mut Vec<u32>) {
    out.clear();
    for (l, &w) in weights.iter().enumerate() {
        assert!(!w.is_nan(), "weight for left vertex {l} is NaN");
        if w > 0.0 {
            out.push(l as u32);
        }
    }
    out.sort_unstable_by(|&a, &b| {
        weights[b as usize]
            .total_cmp(&weights[a as usize])
            .then(a.cmp(&b))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraphBuilder;
    use crate::greedy_weight::max_weight_matching_left_weights;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_instance(seed: u64) -> (BipartiteGraph, Vec<f64>, Vec<bool>) {
        let mut s = seed | 1;
        let n_left = 1 + (xorshift(&mut s) % 12) as usize;
        let n_right = 1 + (xorshift(&mut s) % 12) as usize;
        let mut b = BipartiteGraphBuilder::new(n_left, n_right);
        for l in 0..n_left {
            for r in 0..n_right {
                if xorshift(&mut s).is_multiple_of(3) {
                    b.add_edge(l, r);
                }
            }
        }
        let weights: Vec<f64> = (0..n_left)
            .map(|_| (xorshift(&mut s) % 1000) as f64 / 100.0)
            .collect();
        let keep: Vec<bool> = (0..n_left)
            .map(|_| xorshift(&mut s).is_multiple_of(2))
            .collect();
        (b.build(), weights, keep)
    }

    #[test]
    fn whole_graph_matches_greedy_reference() {
        let mut scratch = MatchScratch::new();
        for seed in 0..60 {
            let (g, w, _) = random_instance(seed);
            let (reference, ref_total) = max_weight_matching_left_weights(&g, &w);
            let total = scratch.max_weight_value(&g, &w);
            assert!(
                (total - ref_total).abs() < 1e-12,
                "seed {seed}: scratch {total} vs reference {ref_total}"
            );
            let m = scratch.to_matching();
            assert!(m.is_valid(&g), "seed {seed}");
            assert_eq!(m, reference, "seed {seed}: identical tie-breaking");
        }
    }

    #[test]
    fn masked_matches_filter_left() {
        let mut scratch = MatchScratch::new();
        for seed in 0..80 {
            let (g, w, keep) = random_instance(seed);
            let masked = scratch.max_weight_value_masked(&g, &w, &keep);
            let (sub, old_of_new) = g.filter_left(&keep);
            let sub_weights: Vec<f64> = old_of_new.iter().map(|&l| w[l as usize]).collect();
            let (_, expected) = max_weight_matching_left_weights(&sub, &sub_weights);
            assert!(
                (masked - expected).abs() < 1e-12,
                "seed {seed}: masked {masked} vs filter_left {expected}"
            );
            // The masked matching never uses a masked-out vertex.
            for (l, _) in scratch.matched_pairs() {
                assert!(keep[l], "seed {seed}: matched masked-out vertex {l}");
            }
            assert!(scratch.to_matching().is_valid(&g));
        }
    }

    #[test]
    fn ordered_kernel_reuses_external_order() {
        let (g, w, keep) = random_instance(1234);
        let mut order = Vec::new();
        sort_by_weight_desc(&w, &mut order);
        let mut scratch = MatchScratch::new();
        let a = scratch.max_weight_value_ordered(&g, &w, &order, Some(&keep));
        let b = scratch.max_weight_value_masked(&g, &w, &keep);
        assert_eq!(a, b);
        let c = scratch.max_weight_value_ordered(&g, &w, &order, None);
        let d = scratch.max_weight_value(&g, &w);
        assert_eq!(c, d);
    }

    #[test]
    fn scratch_reuse_across_sizes() {
        let mut scratch = MatchScratch::new();
        // Big then small then big again: stale state must never leak.
        for &seed in &[7u64, 8, 9, 7, 8, 9] {
            let (g, w, _) = random_instance(seed);
            let (_, expected) = max_weight_matching_left_weights(&g, &w);
            assert_eq!(scratch.max_weight_value(&g, &w), expected);
        }
    }

    #[test]
    fn sort_by_weight_desc_contract() {
        let mut out = vec![99; 4];
        sort_by_weight_desc(&[1.0, 0.0, 3.0, 1.0, -2.0], &mut out);
        assert_eq!(out, vec![2, 0, 3]); // positives only; ties by index
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = BipartiteGraphBuilder::new(0, 0).build();
        let mut scratch = MatchScratch::new();
        assert_eq!(scratch.max_weight_value(&g, &[]), 0.0);
        assert_eq!(scratch.cardinality(), 0);
    }

    #[test]
    #[should_panic(expected = "is NaN")]
    fn rejects_nan_weights() {
        let g = BipartiteGraphBuilder::new(1, 1)
            .with_edges([(0, 0)])
            .build();
        let mut scratch = MatchScratch::new();
        let _ = scratch.max_weight_value(&g, &[f64::NAN]);
    }
}
