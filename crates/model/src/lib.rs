//! `maps-model`: a loom-style concurrency model checker for the
//! workspace's lock-free ingestion ring (zero registry deps, vendored
//! like `proptest`).
//!
//! The checker runs a closure many times, exploring a different thread
//! interleaving on every run. Synchronization goes through the tracked
//! types in [`sync`] and [`thread`], which simulate the **C11
//! acquire/release memory model** — per-location modification orders,
//! per-thread causality views, release/acquire fence synchronization, a
//! global SeqCst order — so a `Relaxed` load can return *any* value the
//! memory model allows, not just the one this host's hardware happened
//! to produce. The scheduler is a deterministic DFS over every thread
//! interleaving at atomic-access granularity, with sleep-set pruning
//! (DPOR-lite, a conservative static-conflict approximation of
//! persistent sets) and an optional seeded bounded mode for state
//! spaces too large to exhaust.
//!
//! What the checker reports as a failure:
//!
//! * a **panic** in the checked closure (an assertion about an outcome
//!   that some interleaving violates),
//! * a **deadlock**: every unfinished thread blocked (the lost-wakeup
//!   class of bug — a missed condvar notify — lands here),
//! * a **data race**: a non-atomic access (a [`sync::Cell`] or a
//!   [`sync::CellGroup`] slot) not ordered happens-before against a
//!   conflicting access,
//! * a **state-space explosion** past the configured bounds (a signal
//!   to shrink the scenario or switch to bounded exploration).
//!
//! Known, documented approximations (shared with loom):
//!
//! * SeqCst loads/stores additionally synchronize like a SeqCst fence
//!   (slightly stronger than C11, never weaker than the hardware).
//! * Load-buffering outcomes requiring speculation (`r1 = r2 = 1` from
//!   two relaxed load→store threads) are not produced: the model is
//!   operational, values read must already be in the modification
//!   order.
//! * No spurious condvar wakeups, and `wait_timeout` never times out
//!   inside the model: a lost wakeup therefore surfaces as a hard
//!   deadlock instead of being papered over by a timeout.
//!
//! All tracked objects must be **created inside the checked closure**
//! (each execution re-runs the closure and re-registers them); objects
//! created outside an active execution fall through to the real `std`
//! primitives, which is what lets shipping code compile against these
//! types and still run normally in non-model tests.

mod memory;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{is_active, Builder, Failure, FailureKind, Report};

/// Checks `f` under every explored interleaving with the default
/// [`Builder`]; panics with the failing trace if any execution fails.
pub fn check<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// [`check`], but returns the [`Report`] instead of panicking — the
/// form the bug-seed self-tests use to assert a seeded race IS found.
pub fn explore<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().explore(f)
}
