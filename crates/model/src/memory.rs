//! The simulated C11 memory model: per-location modification orders,
//! per-thread causality views, fence synchronization, and vector-clock
//! data-race detection for non-atomic locations.

use crate::rt::{ExecState, MAX_THREADS};
use std::sync::atomic::Ordering;

/// A fixed-width vector clock: one component per model thread slot.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub(crate) struct VersionVec(pub(crate) [u64; MAX_THREADS]);

impl VersionVec {
    pub(crate) fn join(&mut self, other: &VersionVec) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Does this view know the event `(tid, clock)`?
    pub(crate) fn knows(&self, tid: usize, clock: u64) -> bool {
        self.0[tid] >= clock
    }
}

/// One entry in a location's modification order.
#[derive(Clone, Debug)]
pub(crate) struct StoreRec {
    pub(crate) val: u64,
    /// The view an acquire load of this store synchronizes with
    /// (accumulated along release sequences for RMWs).
    pub(crate) sync: VersionVec,
    /// Identity of the store for happens-before tests.
    pub(crate) tid: usize,
    pub(crate) clock: u64,
}

/// A tracked atomic location: an append-only modification order.
#[derive(Default, Debug)]
pub(crate) struct AtomicLoc {
    pub(crate) stores: Vec<StoreRec>,
}

/// A tracked non-atomic location (a `Cell` or one slot of a
/// `CellGroup`): last write plus all reads since, for vector-clock race
/// detection. Plain accesses are not scheduling points — ordering must
/// come from happens-before, which is exactly what gets checked.
#[derive(Default, Debug)]
pub(crate) struct CellLoc {
    pub(crate) write: Option<(usize, u64)>,
    pub(crate) reads: Vec<(usize, u64)>,
}

#[derive(Default, Debug)]
pub(crate) struct MutexLoc {
    pub(crate) owner: Option<usize>,
    /// Released-by-last-unlock view, joined by the next lock.
    pub(crate) sync: VersionVec,
}

/// The operation a thread is about to perform at a scheduling point.
/// Granularity: every atomic access, fence, mutex/condvar operation and
/// thread lifecycle edge is one op; plain (`Cell`) accesses are not.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Op {
    Load {
        loc: u32,
        ord: Ordering,
    },
    Store {
        loc: u32,
        ord: Ordering,
    },
    Rmw {
        loc: u32,
    },
    Fence {
        ord: Ordering,
    },
    Lock {
        m: u32,
    },
    Unlock {
        m: u32,
    },
    /// The atomic unlock-and-sleep step of a condvar wait. While the
    /// thread sleeps it keeps this op; it resumes by re-locking `m`.
    Wait {
        cv: u32,
        m: u32,
    },
    Notify {
        cv: u32,
        all: bool,
    },
    Yield,
    Spawn {
        child: u32,
    },
    Join {
        target: u32,
    },
    /// First scheduling of a thread body.
    Start,
}

impl Op {
    pub(crate) fn describe(&self) -> String {
        match self {
            Op::Load { loc, ord } => format!("load a{loc} ({ord:?})"),
            Op::Store { loc, ord } => format!("store a{loc} ({ord:?})"),
            Op::Rmw { loc } => format!("rmw a{loc}"),
            Op::Fence { ord } => format!("fence({ord:?})"),
            Op::Lock { m } => format!("lock m{m}"),
            Op::Unlock { m } => format!("unlock m{m}"),
            Op::Wait { cv, m } => format!("wait cv{cv} (m{m})"),
            Op::Notify { cv, all } => {
                format!("notify_{} cv{cv}", if *all { "all" } else { "one" })
            }
            Op::Yield => "yield".to_string(),
            Op::Spawn { child } => format!("spawn t{child}"),
            Op::Join { target } => format!("join t{target}"),
            Op::Start => "start".to_string(),
        }
    }
}

/// The pieces of shared checker state an op reads or writes, for the
/// static conflict relation behind sleep-set pruning.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Res {
    /// An atomic location; `true` = mutates the modification order.
    Atomic(u32, bool),
    /// The global SeqCst view.
    Sc,
    Mutex(u32),
    Condvar(u32),
    /// Thread lifecycle edges: conservatively conflict with everything.
    All,
}

fn resources(op: &Op) -> ([Option<Res>; 2], bool) {
    let sc = |ord: &Ordering| matches!(ord, Ordering::SeqCst);
    match op {
        Op::Load { loc, ord } => (
            [Some(Res::Atomic(*loc, false)), sc(ord).then_some(Res::Sc)],
            false,
        ),
        Op::Store { loc, ord } => (
            [Some(Res::Atomic(*loc, true)), sc(ord).then_some(Res::Sc)],
            false,
        ),
        // RMW ordering is not in the descriptor; assume SeqCst.
        Op::Rmw { loc } => ([Some(Res::Atomic(*loc, true)), Some(Res::Sc)], false),
        // Non-SeqCst fences only mutate views of their own thread and
        // commute with every other-thread op.
        Op::Fence { ord } => ([sc(ord).then_some(Res::Sc), None], false),
        Op::Lock { m } | Op::Unlock { m } => ([Some(Res::Mutex(*m)), None], false),
        Op::Wait { cv, m } => ([Some(Res::Mutex(*m)), Some(Res::Condvar(*cv))], false),
        Op::Notify { cv, .. } => ([Some(Res::Condvar(*cv)), None], false),
        Op::Yield => ([None, None], false),
        Op::Spawn { .. } | Op::Join { .. } | Op::Start => ([Some(Res::All), None], true),
    }
}

fn conflicts(a: Res, b: Res) -> bool {
    match (a, b) {
        (Res::All, _) | (_, Res::All) => true,
        (Res::Atomic(l1, w1), Res::Atomic(l2, w2)) => l1 == l2 && (w1 || w2),
        _ => a == b,
    }
}

/// Conservative static independence for sleep-set pruning: `true` only
/// when reordering the two ops can never change any reachable state.
/// Anything uncertain is dependent (less pruning, never unsoundness).
pub(crate) fn independent(a: &Op, b: &Op) -> bool {
    let (ra, wild_a) = resources(a);
    let (rb, wild_b) = resources(b);
    if wild_a || wild_b {
        return false;
    }
    for x in ra.iter().flatten() {
        for y in rb.iter().flatten() {
            if conflicts(*x, *y) {
                return false;
            }
        }
    }
    true
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl ExecState {
    /// The loom-style SeqCst approximation: every SeqCst operation also
    /// synchronizes two-way with the global SC view, which is what
    /// gives Dekker/store-buffering its guarantee under SC fences.
    fn sc_sync(&mut self, tid: usize) {
        self.threads[tid].causality.join(&self.global_sc.clone());
        let causality = self.threads[tid].causality;
        self.global_sc.join(&causality);
    }

    /// The modification-order index floor below which `tid` can no
    /// longer read at `loc`: the newest store it knows happened-before
    /// (coherence with happens-before), raised by its own previous
    /// reads/writes at the location (per-thread coherence).
    fn floor(&self, tid: usize, loc: u32) -> usize {
        let stores = &self.atomics[loc as usize].stores;
        let causality = &self.threads[tid].causality;
        let mut floor = self.threads[tid].floor(loc);
        for (i, s) in stores.iter().enumerate().rev() {
            if causality.knows(s.tid, s.clock) {
                floor = floor.max(i);
                break;
            }
        }
        floor
    }

    /// Performs a tracked load. The caller has already been scheduled;
    /// when several stores are coherently readable, the choice is a
    /// branch point (newest first, so the first-explored execution
    /// behaves like the SC interleaving).
    pub(crate) fn atomic_load(&mut self, tid: usize, loc: u32, ord: Ordering) -> u64 {
        if matches!(ord, Ordering::SeqCst) {
            self.sc_sync(tid);
        }
        let floor = self.floor(tid, loc);
        let n = self.atomics[loc as usize].stores.len() - floor;
        let pick = floor + (n - 1 - self.choice(n));
        let (val, sync) = {
            let s = &self.atomics[loc as usize].stores[pick];
            (s.val, s.sync)
        };
        self.threads[tid].set_floor(loc, pick);
        if is_acquire(ord) {
            self.threads[tid].causality.join(&sync);
        } else {
            self.threads[tid].acq_pending.join(&sync);
        }
        val
    }

    pub(crate) fn atomic_store(&mut self, tid: usize, loc: u32, val: u64, ord: Ordering) {
        if matches!(ord, Ordering::SeqCst) {
            self.sc_sync(tid);
        }
        let sync = if is_release(ord) {
            self.threads[tid].causality
        } else {
            self.threads[tid].released
        };
        let clock = self.threads[tid].causality.0[tid];
        let stores = &mut self.atomics[loc as usize].stores;
        stores.push(StoreRec {
            val,
            sync,
            tid,
            clock,
        });
        let idx = stores.len() - 1;
        self.threads[tid].set_floor(loc, idx);
    }

    /// Read-modify-write: reads the newest store (RMWs are never stale)
    /// and appends, continuing the release sequence.
    pub(crate) fn atomic_rmw(
        &mut self,
        tid: usize,
        loc: u32,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        if matches!(ord, Ordering::SeqCst) {
            self.sc_sync(tid);
        }
        let (prev, prev_sync) = {
            let s = self.atomics[loc as usize]
                .stores
                .last()
                .expect("atomic locations always hold their initial store");
            (s.val, s.sync)
        };
        if is_acquire(ord) {
            self.threads[tid].causality.join(&prev_sync);
        } else {
            self.threads[tid].acq_pending.join(&prev_sync);
        }
        let mut sync = prev_sync;
        sync.join(if is_release(ord) {
            &self.threads[tid].causality
        } else {
            &self.threads[tid].released
        });
        let clock = self.threads[tid].causality.0[tid];
        let stores = &mut self.atomics[loc as usize].stores;
        stores.push(StoreRec {
            val: f(prev),
            sync,
            tid,
            clock,
        });
        let idx = stores.len() - 1;
        self.threads[tid].set_floor(loc, idx);
        prev
    }

    pub(crate) fn fence(&mut self, tid: usize, ord: Ordering) {
        if is_acquire(ord) {
            let pending = self.threads[tid].acq_pending;
            self.threads[tid].causality.join(&pending);
        }
        if matches!(ord, Ordering::SeqCst) {
            self.sc_sync(tid);
        }
        if is_release(ord) {
            self.threads[tid].released = self.threads[tid].causality;
        }
    }

    /// Race-checks and records a non-atomic write. Returns a
    /// description of the race when one exists.
    pub(crate) fn cell_write(&mut self, tid: usize, cell: u32) -> Result<(), String> {
        self.threads[tid].causality.0[tid] += 1;
        let clock = self.threads[tid].causality.0[tid];
        let causality = self.threads[tid].causality;
        let c = &mut self.cells[cell as usize];
        if let Some((wt, wc)) = c.write {
            if wt != tid && !causality.knows(wt, wc) {
                return Err(format!(
                    "data race: write to c{cell} by t{tid} not ordered after write by t{wt}"
                ));
            }
        }
        for &(rt, rc) in &c.reads {
            if rt != tid && !causality.knows(rt, rc) {
                return Err(format!(
                    "data race: write to c{cell} by t{tid} not ordered after read by t{rt}"
                ));
            }
        }
        c.write = Some((tid, clock));
        c.reads.clear();
        Ok(())
    }

    /// Race-checks and records a non-atomic read.
    pub(crate) fn cell_read(&mut self, tid: usize, cell: u32) -> Result<(), String> {
        self.threads[tid].causality.0[tid] += 1;
        let clock = self.threads[tid].causality.0[tid];
        let causality = self.threads[tid].causality;
        let c = &mut self.cells[cell as usize];
        if let Some((wt, wc)) = c.write {
            if wt != tid && !causality.knows(wt, wc) {
                return Err(format!(
                    "data race: read of c{cell} by t{tid} not ordered after write by t{wt}"
                ));
            }
        }
        c.reads.push((tid, clock));
        Ok(())
    }
}
