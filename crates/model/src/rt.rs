//! The deterministic DFS scheduler: one global execution at a time,
//! real OS worker threads handed the CPU one at a time, a replayable
//! path of branch decisions (thread choices and load-value choices),
//! sleep-set pruning, and an optional seeded bounded mode.

use crate::memory::{independent, AtomicLoc, CellLoc, MutexLoc, Op, StoreRec, VersionVec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Maximum concurrently-live threads per execution (the root closure is
/// thread 0). Sized for the ring's scenarios: producer, consumer, and a
/// supervisor or second observer.
pub(crate) const MAX_THREADS: usize = 4;

// ---------------------------------------------------------------------------
// Public report types
// ---------------------------------------------------------------------------

/// Why an exploration stopped with a counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The checked closure panicked (a violated assertion).
    Panic,
    /// Every unfinished thread was blocked — the lost-wakeup shape.
    Deadlock,
    /// A non-atomic access without happens-before ordering.
    DataRace,
    /// The state space outgrew the configured bounds.
    Explosion,
}

/// A counterexample: what went wrong and the interleaving that did it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// The schedule prefix of the failing execution, one line per
    /// scheduled op (`t<id>: <op>`), most recent last.
    pub trace: Vec<String>,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions run (including the failing one, if any).
    pub executions: u64,
    /// Executions cut short by sleep-set pruning (their remainders are
    /// covered by sibling branches).
    pub pruned: u64,
    pub failure: Option<Failure>,
}

/// Exploration configuration. Default: exhaustive DFS with sleep-set
/// pruning, no preemption bound.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Cap on involuntary context switches per execution (CHESS-style
    /// preemption bounding); `None` explores all interleavings.
    pub preemption_bound: Option<u32>,
    /// Sleep-set (DPOR-lite) pruning. Soundness of the conservative
    /// conflict relation is itself regression-tested by running the
    /// litmus suite with pruning on and off.
    pub pruning: bool,
    /// DFS guard: give up (as [`FailureKind::Explosion`]) past this
    /// many executions.
    pub max_executions: u64,
    /// Per-execution guard against divergence under the model (e.g. an
    /// unbounded spin loop, which can never terminate in a fairness-free
    /// exhaustive search).
    pub max_steps: u64,
    /// `Some((seed, n))`: seeded random exploration of `n` executions
    /// instead of exhaustive DFS — for state spaces too large to
    /// exhaust, with a pinned schedule count for reproducibility.
    pub bounded: Option<(u64, u64)>,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: None,
            pruning: true,
            max_executions: 2_000_000,
            max_steps: 100_000,
            bounded: None,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn preemption_bound(mut self, bound: u32) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    pub fn pruning(mut self, on: bool) -> Self {
        self.pruning = on;
        self
    }

    pub fn bounded(mut self, seed: u64, executions: u64) -> Self {
        self.bounded = Some((seed, executions));
        self
    }

    /// Runs `f` under every explored interleaving; panics with the
    /// failing trace if a counterexample is found.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let report = self.explore(f);
        if let Some(failure) = report.failure {
            panic!(
                "maps-model: {:?} after {} executions: {}\nschedule:\n  {}",
                failure.kind,
                report.executions,
                failure.message,
                failure.trace.join("\n  ")
            );
        }
    }

    /// Runs `f` under every explored interleaving and reports the
    /// outcome without panicking.
    pub fn explore<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            !is_active(),
            "maps-model: nested check() inside a model execution"
        );
        let _serial = lock_poison_ok(check_lock());
        let _quiet = HookGuard::install();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let rt = rt();
        let mut path = Path::default();
        let mut executions = 0u64;
        let mut pruned = 0u64;
        let mut failure = None;
        loop {
            executions += 1;
            let mode = match self.bounded {
                None => ModeState::Dfs {
                    path: std::mem::take(&mut path),
                },
                Some((seed, _)) => ModeState::Bounded {
                    rng: splitmix(seed ^ executions.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                },
            };
            rt.begin(self, mode);
            rt.spawn_root(Arc::clone(&f));
            rt.wait_done();
            let (exec_failure, exec_pruned, mode_out) = rt.end();
            if exec_pruned {
                pruned += 1;
            }
            if let Some(fx) = exec_failure {
                failure = Some(fx);
                break;
            }
            match (self.bounded, mode_out) {
                (None, ModeState::Dfs { path: p }) => {
                    path = p;
                    if !path.backtrack() {
                        break;
                    }
                    if executions >= self.max_executions {
                        failure = Some(Failure {
                            kind: FailureKind::Explosion,
                            message: format!(
                                "state space not exhausted after {executions} executions; \
                                 shrink the scenario or use bounded exploration"
                            ),
                            trace: Vec::new(),
                        });
                        break;
                    }
                }
                (Some((_, n)), _) => {
                    if executions >= n {
                        break;
                    }
                }
                _ => unreachable!("mode survives an execution"),
            }
        }
        Report {
            executions,
            pruned,
            failure,
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local identity & passthrough detection
// ---------------------------------------------------------------------------

thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    /// Set while unwinding out of an aborted execution: tracked ops
    /// become passthrough no-ops so drop glue cannot re-panic.
    static UNWINDING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The current model thread id, or `None` when this thread is not part
/// of an active execution (the passthrough case).
pub(crate) fn cur_tid() -> Option<usize> {
    if UNWINDING.with(|u| u.get()) {
        None
    } else {
        TID.with(|t| t.get())
    }
}

/// Is the calling thread inside an active model execution? Shipping
/// facades use this to pick model vs. real behavior (spin bounds,
/// frozen time).
pub fn is_active() -> bool {
    cur_tid().is_some()
}

/// Sentinel panic payload used to unwind threads of an aborted
/// execution; never surfaces to user code.
struct AbortSignal;

/// Silences the default panic hook for model worker threads while a
/// check runs, restoring the previous hook on drop. Worker panics are
/// captured into [`Failure::message`] (and [`AbortSignal`] unwinds are
/// pure control flow), so the default hook would only spam one
/// backtrace per aborted execution. Installation is safe to scope to
/// `explore` because checks are serialized by the check lock.
struct HookGuard;

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

impl HookGuard {
    fn install() -> Self {
        let prev: Arc<PanicHook> = Arc::new(std::panic::take_hook());
        let fwd = Arc::clone(&prev);
        PREV_HOOK.with(|p| p.set(Some(prev)));
        std::panic::set_hook(Box::new(move |info| {
            if TID.with(|t| t.get()).is_none() && !UNWINDING.with(|u| u.get()) {
                fwd(info);
            }
        }));
        Self
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        drop(std::panic::take_hook());
        if let Some(prev) = PREV_HOOK.with(|p| p.take()) {
            // `Err` means a worker still holds a clone (cannot happen
            // once the execution has drained, but don't panic in drop).
            if let Ok(hook) = Arc::try_unwrap(prev) {
                std::panic::set_hook(hook);
            }
        }
    }
}

thread_local! {
    /// The hook displaced by [`HookGuard::install`], parked here so
    /// `Drop` can restore it by value.
    static PREV_HOOK: std::cell::Cell<Option<Arc<PanicHook>>> =
        const { std::cell::Cell::new(None) };
}

fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

fn lock_poison_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn check_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

// ---------------------------------------------------------------------------
// The replayable decision path
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Branch {
    /// A scheduling decision among the eligible (enabled, non-sleeping)
    /// threads at one step.
    Schedule { choices: Vec<u8>, chosen: usize },
    /// A value-ish decision below a schedule step (which coherent store
    /// a load reads, which waiter a notify_one wakes).
    Choice { n: usize, chosen: usize },
}

#[derive(Debug, Default)]
struct Path {
    branches: Vec<Branch>,
    pos: usize,
}

impl Path {
    fn choice(&mut self, n: usize) -> usize {
        if self.pos < self.branches.len() {
            let Branch::Choice { n: rec_n, chosen } = &self.branches[self.pos] else {
                panic!(
                    "maps-model: nondeterministic execution (schedule point became a value point)"
                );
            };
            assert_eq!(
                *rec_n, n,
                "maps-model: nondeterministic execution (value choice arity changed on replay)"
            );
            self.pos += 1;
            *chosen
        } else {
            self.branches.push(Branch::Choice { n, chosen: 0 });
            self.pos += 1;
            0
        }
    }

    /// Returns the chosen thread and the bitmask of already-explored
    /// siblings at this branch (for the sleep-set update).
    fn schedule(&mut self, eligible: Vec<u8>) -> (usize, u8) {
        if self.pos < self.branches.len() {
            let Branch::Schedule { choices, chosen } = &self.branches[self.pos] else {
                panic!(
                    "maps-model: nondeterministic execution (value point became a schedule point)"
                );
            };
            assert_eq!(
                *choices, eligible,
                "maps-model: nondeterministic execution (eligible set changed on replay)"
            );
            let mut explored = 0u8;
            for &c in &choices[..*chosen] {
                explored |= 1 << c;
            }
            let tid = choices[*chosen] as usize;
            self.pos += 1;
            (tid, explored)
        } else {
            let tid = eligible[0] as usize;
            self.branches.push(Branch::Schedule {
                choices: eligible,
                chosen: 0,
            });
            self.pos += 1;
            (tid, 0)
        }
    }

    /// Advances to the next unexplored execution; `false` when the
    /// whole tree has been visited.
    fn backtrack(&mut self) -> bool {
        while let Some(last) = self.branches.last_mut() {
            match last {
                Branch::Schedule { choices, chosen } if *chosen + 1 < choices.len() => {
                    *chosen += 1;
                    self.pos = 0;
                    return true;
                }
                Branch::Choice { n, chosen } if *chosen + 1 < *n => {
                    *chosen += 1;
                    self.pos = 0;
                    return true;
                }
                _ => {
                    self.branches.pop();
                }
            }
        }
        false
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum ModeState {
    Dfs { path: Path },
    Bounded { rng: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Config {
    preemption_bound: Option<u32>,
    pruning: bool,
    max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: None,
            pruning: true,
            max_steps: 100_000,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Run {
    Unused,
    /// Announced an op; waiting to be scheduled to perform it.
    Ready(OpSlot),
    /// Scheduled and running user code up to its next op.
    Active,
    /// Asleep in a condvar wait; resumes by re-locking `m`.
    Waiting {
        cv: u32,
        m: u32,
        notified: bool,
    },
    Finished,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct OpSlot(pub(crate) Op);

#[derive(Debug)]
pub(crate) struct ThreadState {
    run: Run,
    pub(crate) causality: VersionVec,
    pub(crate) released: VersionVec,
    pub(crate) acq_pending: VersionVec,
    floors: Vec<usize>,
}

impl ThreadState {
    fn unused() -> Self {
        Self {
            run: Run::Unused,
            causality: VersionVec::default(),
            released: VersionVec::default(),
            acq_pending: VersionVec::default(),
            floors: Vec::new(),
        }
    }

    pub(crate) fn floor(&self, loc: u32) -> usize {
        self.floors.get(loc as usize).copied().unwrap_or(0)
    }

    pub(crate) fn set_floor(&mut self, loc: u32, v: usize) {
        let i = loc as usize;
        if self.floors.len() <= i {
            self.floors.resize(i + 1, 0);
        }
        self.floors[i] = v;
    }
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadState>,
    n_threads: usize,
    active: Option<usize>,
    pub(crate) atomics: Vec<AtomicLoc>,
    pub(crate) cells: Vec<CellLoc>,
    pub(crate) mutexes: Vec<MutexLoc>,
    n_condvars: u32,
    pub(crate) global_sc: VersionVec,
    /// Process-monotonic execution counter; object ids are stamped with
    /// it so objects from past executions re-register instead of
    /// aliasing.
    exec_id: u64,
    running: bool,
    aborting: bool,
    failure: Option<Failure>,
    pruned: bool,
    trace: Vec<(usize, Op)>,
    sleep: u8,
    last_run: Option<usize>,
    preemptions: u32,
    steps: u64,
    finished: usize,
    mode: ModeState,
    cfg: Config,
}

impl ExecState {
    fn new() -> Self {
        Self {
            threads: (0..MAX_THREADS).map(|_| ThreadState::unused()).collect(),
            n_threads: 0,
            active: None,
            atomics: Vec::new(),
            cells: Vec::new(),
            mutexes: Vec::new(),
            n_condvars: 0,
            global_sc: VersionVec::default(),
            exec_id: 0,
            running: false,
            aborting: false,
            failure: None,
            pruned: false,
            trace: Vec::new(),
            sleep: 0,
            last_run: None,
            preemptions: 0,
            steps: 0,
            finished: 0,
            mode: ModeState::Bounded { rng: 0 },
            cfg: Config::default(),
        }
    }

    /// A value-ish branch point: which of `n` outcomes happens.
    pub(crate) fn choice(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        match &mut self.mode {
            ModeState::Dfs { path } => path.choice(n),
            ModeState::Bounded { rng } => {
                *rng = splitmix(*rng);
                (*rng % n as u64) as usize
            }
        }
    }

    fn schedule_choice(&mut self, eligible: Vec<u8>) -> (usize, u8) {
        match &mut self.mode {
            ModeState::Dfs { path } => path.schedule(eligible),
            ModeState::Bounded { rng } => {
                *rng = splitmix(*rng);
                (
                    eligible[(*rng % eligible.len() as u64) as usize] as usize,
                    0,
                )
            }
        }
    }

    fn is_enabled(&self, i: usize) -> bool {
        match self.threads[i].run {
            Run::Ready(OpSlot(op)) => match op {
                Op::Lock { m } => self.mutexes[m as usize].owner.is_none(),
                Op::Join { target } => {
                    matches!(self.threads[target as usize].run, Run::Finished)
                }
                _ => true,
            },
            Run::Waiting { m, notified, .. } => {
                notified && self.mutexes[m as usize].owner.is_none()
            }
            _ => false,
        }
    }

    fn pending_op(&self, i: usize) -> Op {
        match self.threads[i].run {
            Run::Ready(OpSlot(op)) => op,
            Run::Waiting { cv, m, .. } => Op::Wait { cv, m },
            _ => Op::Yield,
        }
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            let trace = self
                .trace
                .iter()
                .rev()
                .take(200)
                .map(|(tid, op)| format!("t{tid}: {}", op.describe()))
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            self.failure = Some(Failure {
                kind,
                message,
                trace,
            });
        }
        self.aborting = true;
    }
}

// ---------------------------------------------------------------------------
// The runtime singleton
// ---------------------------------------------------------------------------

pub(crate) struct Rt {
    state: Mutex<ExecState>,
    cvs: [Condvar; MAX_THREADS],
    done: Condvar,
}

pub(crate) fn rt() -> &'static Rt {
    static RT: OnceLock<Rt> = OnceLock::new();
    RT.get_or_init(|| Rt {
        state: Mutex::new(ExecState::new()),
        cvs: std::array::from_fn(|_| Condvar::new()),
        done: Condvar::new(),
    })
}

impl Rt {
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        lock_poison_ok(&self.state)
    }

    fn wake_all(&self, st: &ExecState) {
        let _ = st;
        for cv in &self.cvs {
            cv.notify_all();
        }
        self.done.notify_all();
    }

    fn abort_unwind(&self) -> ! {
        UNWINDING.with(|u| u.set(true));
        std::panic::panic_any(AbortSignal)
    }

    /// Blocks until the scheduler hands `tid` the CPU; unwinds if the
    /// execution aborts first.
    fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if st.aborting {
                drop(st);
                self.abort_unwind();
            }
            if st.active == Some(tid) {
                return st;
            }
            st = self.cvs[tid]
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The heart of every tracked operation: announce `op`, let the
    /// scheduler pick who runs next, block until it is this thread
    /// again, then return with the state locked so the caller can apply
    /// the op's semantics.
    pub(crate) fn op_point(&self, tid: usize, op: Op) -> MutexGuard<'_, ExecState> {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            self.abort_unwind();
        }
        debug_assert_eq!(st.active, Some(tid), "op from a descheduled thread");
        st.threads[tid].run = Run::Ready(OpSlot(op));
        st.active = None;
        self.advance(&mut st);
        st = self.wait_for_turn(st, tid);
        st.threads[tid].run = Run::Active;
        st.threads[tid].causality.0[tid] += 1;
        st
    }

    /// Picks and wakes the next thread. Called with `active == None`.
    fn advance(&self, st: &mut ExecState) {
        if st.aborting || !st.running {
            return;
        }
        let mut enabled: Vec<u8> = Vec::with_capacity(MAX_THREADS);
        for i in 0..st.n_threads {
            if st.is_enabled(i) {
                enabled.push(i as u8);
            }
        }
        if enabled.is_empty() {
            if st.finished == st.n_threads {
                return; // completion is handled by `finish`
            }
            let blocked: Vec<String> = (0..st.n_threads)
                .filter(|&i| !matches!(st.threads[i].run, Run::Finished | Run::Unused))
                .map(|i| format!("t{i} blocked at {}", st.pending_op(i).describe()))
                .collect();
            st.fail(
                FailureKind::Deadlock,
                format!("deadlock: {}", blocked.join("; ")),
            );
            self.wake_all(st);
            return;
        }
        let pruning = st.cfg.pruning && matches!(st.mode, ModeState::Dfs { .. });
        let eligible: Vec<u8> = if pruning {
            enabled
                .iter()
                .copied()
                .filter(|&t| st.sleep & (1 << t) == 0)
                .collect()
        } else {
            enabled.clone()
        };
        if eligible.is_empty() {
            // Every enabled thread is in the sleep set: this execution's
            // remainder is covered by already-explored siblings.
            st.pruned = true;
            st.aborting = true;
            self.wake_all(st);
            return;
        }
        let eligible = match (st.cfg.preemption_bound, st.last_run) {
            (Some(bound), Some(lr))
                if st.preemptions >= bound && eligible.contains(&(lr as u8)) =>
            {
                vec![lr as u8]
            }
            _ => eligible,
        };
        let (tid, explored) = st.schedule_choice(eligible);
        if pruning {
            let op_t = st.pending_op(tid);
            let mut sleep = st.sleep | explored;
            sleep &= !(1 << tid);
            let mut new_sleep = 0u8;
            for u in 0..st.n_threads {
                if sleep & (1 << u) != 0 && independent(&st.pending_op(u), &op_t) {
                    new_sleep |= 1 << u;
                }
            }
            st.sleep = new_sleep;
        }
        if let Some(lr) = st.last_run {
            if lr != tid && enabled.contains(&(lr as u8)) {
                st.preemptions += 1;
            }
        }
        st.last_run = Some(tid);
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            st.fail(
                FailureKind::Explosion,
                format!(
                    "execution exceeded {} scheduled ops (divergent loop under the model?)",
                    st.cfg.max_steps
                ),
            );
            self.wake_all(st);
            return;
        }
        let op = st.pending_op(tid);
        st.trace.push((tid, op));
        st.active = Some(tid);
        self.cvs[tid].notify_all();
    }

    fn finish(&self, tid: usize, outcome: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock();
        st.threads[tid].run = Run::Finished;
        st.finished += 1;
        if let Err(p) = outcome {
            if !p.is::<AbortSignal>() {
                let msg = payload_to_string(p);
                st.fail(FailureKind::Panic, msg);
            }
        }
        if st.active == Some(tid) {
            st.active = None;
        }
        if st.finished == st.n_threads {
            st.running = false;
            self.done.notify_all();
        } else if st.aborting {
            self.wake_all(&st);
        } else if st.active.is_none() {
            self.advance(&mut st);
        }
    }

    // -- driver side --------------------------------------------------------

    fn begin(&self, b: &Builder, mode: ModeState) {
        let mut st = self.lock();
        assert!(!st.running, "overlapping model executions");
        st.exec_id += 1;
        st.atomics.clear();
        st.cells.clear();
        st.mutexes.clear();
        st.n_condvars = 0;
        st.global_sc = VersionVec::default();
        st.trace.clear();
        st.sleep = 0;
        st.last_run = None;
        st.preemptions = 0;
        st.steps = 0;
        st.finished = 0;
        st.aborting = false;
        st.pruned = false;
        st.failure = None;
        st.mode = mode;
        st.cfg = Config {
            preemption_bound: b.preemption_bound,
            pruning: b.pruning,
            max_steps: b.max_steps,
        };
        for t in &mut st.threads {
            *t = ThreadState::unused();
        }
        st.n_threads = 0;
        st.active = None;
    }

    fn spawn_root(&'static self, f: Arc<dyn Fn() + Send + Sync>) {
        {
            let mut st = self.lock();
            st.n_threads = 1;
            st.threads[0].run = Run::Ready(OpSlot(Op::Start));
            st.running = true;
            self.advance(&mut st);
        }
        pool()[0].submit(Box::new(move || thread_main(self, 0, move || f())));
    }

    fn wait_done(&self) {
        let mut st = self.lock();
        while st.running {
            st = self
                .done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn end(&self) -> (Option<Failure>, bool, ModeState) {
        let mut st = self.lock();
        (
            st.failure.take(),
            st.pruned,
            std::mem::replace(&mut st.mode, ModeState::Bounded { rng: 0 }),
        )
    }
}

/// Body run by a pool worker for one model thread of one execution.
fn thread_main(rt: &'static Rt, tid: usize, body: impl FnOnce()) {
    TID.with(|t| t.set(Some(tid)));
    UNWINDING.with(|u| u.set(false));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut st = rt.lock();
        st = rt.wait_for_turn(st, tid);
        st.threads[tid].run = Run::Active;
        st.threads[tid].causality.0[tid] += 1;
        drop(st);
        body()
    }));
    rt.finish(tid, outcome.map(|_| ()));
    TID.with(|t| t.set(None));
    UNWINDING.with(|u| u.set(false));
}

// ---------------------------------------------------------------------------
// Worker pool: MAX_THREADS long-lived OS threads reused across
// executions (spawning per execution would dominate the runtime of a
// DFS over tens of thousands of executions).
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Worker {
    slot: Mutex<Option<Job>>,
    cv: Condvar,
}

impl Worker {
    fn submit(&self, job: Job) {
        let mut s = lock_poison_ok(&self.slot);
        debug_assert!(s.is_none(), "worker already has a job");
        *s = Some(job);
        self.cv.notify_all();
    }
}

fn pool() -> &'static [Worker; MAX_THREADS] {
    static POOL: OnceLock<&'static [Worker; MAX_THREADS]> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers: &'static [Worker; MAX_THREADS] =
            Box::leak(Box::new(std::array::from_fn(|_| Worker {
                slot: Mutex::new(None),
                cv: Condvar::new(),
            })));
        for w in workers.iter() {
            std::thread::Builder::new()
                .name("maps-model-worker".to_string())
                .spawn(move || loop {
                    let job = {
                        let mut s = lock_poison_ok(&w.slot);
                        loop {
                            if let Some(job) = s.take() {
                                break job;
                            }
                            s =
                                w.cv.wait(s)
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    job();
                })
                .expect("spawn model worker");
        }
        workers
    })
}

// ---------------------------------------------------------------------------
// Object registration (lazy, per-execution) and op entry points used by
// the public sync types.
// ---------------------------------------------------------------------------

/// Per-object registration slot: packs `(exec_id << 24) | (index + 1)`
/// so an object created in a past execution re-registers instead of
/// aliasing a location of the current one.
#[derive(Debug, Default)]
pub(crate) struct ObjId(std::sync::atomic::AtomicU64);

impl ObjId {
    pub(crate) const fn new() -> Self {
        Self(std::sync::atomic::AtomicU64::new(0))
    }
}

const IDX_BITS: u32 = 24;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;

fn resolve(st: &mut ExecState, id: &ObjId, alloc: impl FnOnce(&mut ExecState) -> u32) -> u32 {
    let packed = id.0.load(Ordering::Relaxed);
    if packed != 0 && packed >> IDX_BITS == st.exec_id {
        return (packed & IDX_MASK) as u32 - 1;
    }
    let idx = alloc(st);
    assert!((idx as u64) < IDX_MASK, "too many tracked objects");
    id.0.store(
        (st.exec_id << IDX_BITS) | (idx as u64 + 1),
        Ordering::Relaxed,
    );
    idx
}

impl Rt {
    fn resolve_atomic(&self, id: &ObjId, init: u64, tid: usize) -> u32 {
        let mut st = self.lock();
        resolve(&mut st, id, |st| {
            let clock = st.threads[tid].causality.0[tid];
            st.atomics.push(AtomicLoc {
                stores: vec![StoreRec {
                    val: init,
                    sync: VersionVec::default(),
                    tid,
                    clock,
                }],
            });
            (st.atomics.len() - 1) as u32
        })
    }

    fn resolve_cells(&self, id: &ObjId, n: usize) -> u32 {
        let mut st = self.lock();
        resolve(&mut st, id, |st| {
            let base = st.cells.len() as u32;
            st.cells.extend((0..n).map(|_| CellLoc::default()));
            base
        })
    }

    fn resolve_mutex(&self, id: &ObjId) -> u32 {
        let mut st = self.lock();
        resolve(&mut st, id, |st| {
            st.mutexes.push(MutexLoc::default());
            (st.mutexes.len() - 1) as u32
        })
    }

    fn resolve_condvar(&self, id: &ObjId) -> u32 {
        let mut st = self.lock();
        resolve(&mut st, id, |st| {
            st.n_condvars += 1;
            st.n_condvars - 1
        })
    }
}

pub(crate) fn atomic_load(id: &ObjId, init: u64, ord: Ordering) -> Option<u64> {
    let tid = cur_tid()?;
    let rt = rt();
    let loc = rt.resolve_atomic(id, init, tid);
    let mut st = rt.op_point(tid, Op::Load { loc, ord });
    Some(st.atomic_load(tid, loc, ord))
}

pub(crate) fn atomic_store(id: &ObjId, init: u64, val: u64, ord: Ordering) -> bool {
    let Some(tid) = cur_tid() else { return false };
    let rt = rt();
    let loc = rt.resolve_atomic(id, init, tid);
    let mut st = rt.op_point(tid, Op::Store { loc, ord });
    st.atomic_store(tid, loc, val, ord);
    true
}

pub(crate) fn atomic_rmw(
    id: &ObjId,
    init: u64,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> Option<u64> {
    let tid = cur_tid()?;
    let rt = rt();
    let loc = rt.resolve_atomic(id, init, tid);
    let mut st = rt.op_point(tid, Op::Rmw { loc });
    Some(st.atomic_rmw(tid, loc, ord, f))
}

pub(crate) fn fence(ord: Ordering) -> bool {
    let Some(tid) = cur_tid() else { return false };
    let rt = rt();
    let mut st = rt.op_point(tid, Op::Fence { ord });
    st.fence(tid, ord);
    true
}

pub(crate) fn mutex_lock(id: &ObjId) -> bool {
    let Some(tid) = cur_tid() else { return false };
    let rt = rt();
    let m = rt.resolve_mutex(id);
    let mut st = rt.op_point(tid, Op::Lock { m });
    debug_assert!(st.mutexes[m as usize].owner.is_none());
    st.mutexes[m as usize].owner = Some(tid);
    let sync = st.mutexes[m as usize].sync;
    st.threads[tid].causality.join(&sync);
    true
}

pub(crate) fn mutex_unlock(id: &ObjId) -> bool {
    let Some(tid) = cur_tid() else { return false };
    let rt = rt();
    let m = rt.resolve_mutex(id);
    let mut st = rt.op_point(tid, Op::Unlock { m });
    debug_assert_eq!(st.mutexes[m as usize].owner, Some(tid));
    let causality = st.threads[tid].causality;
    st.mutexes[m as usize].sync.join(&causality);
    st.mutexes[m as usize].owner = None;
    true
}

/// The model side of `Condvar::wait`: atomically release the mutex and
/// sleep; the scheduler only resumes this thread once it has been
/// notified *and* the mutex is free, and resumption re-locks the mutex.
/// No spurious wakeups, no timeouts: a lost wakeup is a deadlock.
pub(crate) fn condvar_wait(cv_id: &ObjId, m_id: &ObjId) -> bool {
    let Some(tid) = cur_tid() else { return false };
    let rt = rt();
    let cv = rt.resolve_condvar(cv_id);
    let m = rt.resolve_mutex(m_id);
    let mut st = rt.op_point(tid, Op::Wait { cv, m });
    debug_assert_eq!(st.mutexes[m as usize].owner, Some(tid));
    let causality = st.threads[tid].causality;
    st.mutexes[m as usize].sync.join(&causality);
    st.mutexes[m as usize].owner = None;
    st.threads[tid].run = Run::Waiting {
        cv,
        m,
        notified: false,
    };
    st.active = None;
    rt.advance(&mut st);
    st = rt.wait_for_turn(st, tid);
    st.threads[tid].run = Run::Active;
    st.threads[tid].causality.0[tid] += 1;
    st.mutexes[m as usize].owner = Some(tid);
    let sync = st.mutexes[m as usize].sync;
    st.threads[tid].causality.join(&sync);
    true
}

pub(crate) fn condvar_notify(cv_id: &ObjId, all: bool) -> bool {
    let Some(tid) = cur_tid() else { return false };
    let rt = rt();
    let cv = rt.resolve_condvar(cv_id);
    let mut st = rt.op_point(tid, Op::Notify { cv, all });
    let waiters: Vec<usize> = (0..st.threads.len())
        .filter(|&i| {
            matches!(
                st.threads[i].run,
                Run::Waiting { cv: c, notified: false, .. } if c == cv
            )
        })
        .collect();
    if waiters.is_empty() {
        return true; // a missed signal — exactly what lost-wakeup bugs are made of
    }
    let targets: Vec<usize> = if all {
        waiters
    } else {
        let k = st.choice(waiters.len());
        vec![waiters[k]]
    };
    for t in targets {
        if let Run::Waiting { notified, .. } = &mut st.threads[t].run {
            *notified = true;
        }
    }
    true
}

/// Race-tracks a read of cell `base + i`; aborts the execution on a
/// race.
pub(crate) fn cell_read(id: &ObjId, n: usize, i: usize) {
    let Some(tid) = cur_tid() else { return };
    let rt = rt();
    let base = rt.resolve_cells(id, n);
    let mut st = rt.lock();
    if st.aborting {
        drop(st);
        rt.abort_unwind();
    }
    if let Err(msg) = st.cell_read(tid, base + i as u32) {
        st.fail(FailureKind::DataRace, msg);
        rt.wake_all(&st);
        drop(st);
        rt.abort_unwind();
    }
}

/// Race-tracks a write of cell `base + i`; aborts the execution on a
/// race.
pub(crate) fn cell_write(id: &ObjId, n: usize, i: usize) {
    let Some(tid) = cur_tid() else { return };
    let rt = rt();
    let base = rt.resolve_cells(id, n);
    let mut st = rt.lock();
    if st.aborting {
        drop(st);
        rt.abort_unwind();
    }
    if let Err(msg) = st.cell_write(tid, base + i as u32) {
        st.fail(FailureKind::DataRace, msg);
        rt.wake_all(&st);
        drop(st);
        rt.abort_unwind();
    }
}

/// A pure scheduling point with no memory effect (`yield_now`).
pub(crate) fn yield_point() -> bool {
    let Some(tid) = cur_tid() else { return false };
    let rt = rt();
    drop(rt.op_point(tid, Op::Yield));
    true
}

/// Spawns a model thread; the child inherits the parent's causal view.
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send>) -> usize {
    let tid = cur_tid().expect("maps_model::thread::spawn outside a model execution");
    let rt = rt();
    let mut st = rt.op_point(tid, Op::Spawn { child: 0 });
    let child = st.n_threads;
    assert!(
        child < MAX_THREADS,
        "maps-model supports at most {MAX_THREADS} threads per execution"
    );
    st.n_threads += 1;
    let parent_view = st.threads[tid].causality;
    st.threads[child] = ThreadState::unused();
    st.threads[child].causality = parent_view;
    st.threads[child].run = Run::Ready(OpSlot(Op::Start));
    drop(st);
    pool()[child].submit(Box::new(move || thread_main(rt, child, body)));
    child
}

/// Blocks until `target` finishes, joining its causal view.
pub(crate) fn join_thread(target: usize) {
    let tid = cur_tid().expect("maps_model JoinHandle::join outside a model execution");
    let rt = rt();
    let mut st = rt.op_point(
        tid,
        Op::Join {
            target: target as u32,
        },
    );
    debug_assert!(matches!(st.threads[target].run, Run::Finished));
    let view = st.threads[target].causality;
    st.threads[tid].causality.join(&view);
}
