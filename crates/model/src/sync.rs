//! Tracked drop-in replacements for the `std::sync` primitives the
//! ingestion ring uses. Inside an active model execution every
//! operation is a scheduling point evaluated against the simulated C11
//! memory model; outside one (including while unwinding out of an
//! aborted execution) every operation passes through to the real `std`
//! primitive each type wraps. That passthrough is what lets shipping
//! code compile against these types permanently and still run normally
//! when no checker is driving.

use crate::rt::{self, ObjId};
use std::sync::PoisonError;
use std::time::Duration;

pub use std::sync::atomic::Ordering;
pub use std::sync::LockResult;

/// A tracked [`std::sync::atomic::AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicU64 {
    real: std::sync::atomic::AtomicU64,
    id: ObjId,
}

impl AtomicU64 {
    pub const fn new(v: u64) -> Self {
        Self {
            real: std::sync::atomic::AtomicU64::new(v),
            id: ObjId::new(),
        }
    }

    pub fn load(&self, ord: Ordering) -> u64 {
        match rt::atomic_load(&self.id, self.real.load(Ordering::Relaxed), ord) {
            Some(v) => v,
            None => self.real.load(ord),
        }
    }

    pub fn store(&self, val: u64, ord: Ordering) {
        if rt::atomic_store(&self.id, self.real.load(Ordering::Relaxed), val, ord) {
            // Keep the wrapped value loosely current so a passthrough
            // read after the execution sees the final state.
            self.real.store(val, Ordering::Relaxed);
        } else {
            self.real.store(val, ord);
        }
    }

    pub fn fetch_add(&self, val: u64, ord: Ordering) -> u64 {
        match rt::atomic_rmw(&self.id, self.real.load(Ordering::Relaxed), ord, |v| {
            v.wrapping_add(val)
        }) {
            Some(prev) => {
                self.real.store(prev.wrapping_add(val), Ordering::Relaxed);
                prev
            }
            None => self.real.fetch_add(val, ord),
        }
    }

    pub fn fetch_sub(&self, val: u64, ord: Ordering) -> u64 {
        match rt::atomic_rmw(&self.id, self.real.load(Ordering::Relaxed), ord, |v| {
            v.wrapping_sub(val)
        }) {
            Some(prev) => {
                self.real.store(prev.wrapping_sub(val), Ordering::Relaxed);
                prev
            }
            None => self.real.fetch_sub(val, ord),
        }
    }
}

/// A tracked [`std::sync::atomic::AtomicBool`].
#[derive(Debug, Default)]
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
    id: ObjId,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            real: std::sync::atomic::AtomicBool::new(v),
            id: ObjId::new(),
        }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        match rt::atomic_load(&self.id, self.real.load(Ordering::Relaxed) as u64, ord) {
            Some(v) => v != 0,
            None => self.real.load(ord),
        }
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        if rt::atomic_store(
            &self.id,
            self.real.load(Ordering::Relaxed) as u64,
            val as u64,
            ord,
        ) {
            self.real.store(val, Ordering::Relaxed);
        } else {
            self.real.store(val, ord);
        }
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match rt::atomic_rmw(
            &self.id,
            self.real.load(Ordering::Relaxed) as u64,
            ord,
            |_| val as u64,
        ) {
            Some(prev) => {
                self.real.store(val, Ordering::Relaxed);
                prev != 0
            }
            None => self.real.swap(val, ord),
        }
    }
}

/// A tracked [`std::sync::atomic::fence`].
pub fn fence(ord: Ordering) {
    if !rt::fence(ord) {
        std::sync::atomic::fence(ord);
    }
}

/// A tracked [`std::cell::Cell`]. Accesses are **not** scheduling
/// points — they are plain memory — but each one is race-checked
/// against the happens-before order: two unordered accesses (one a
/// write) fail the execution as a data race.
#[derive(Default)]
pub struct Cell<T> {
    inner: std::cell::Cell<T>,
    id: ObjId,
}

impl<T: Copy> Cell<T> {
    pub const fn new(v: T) -> Self {
        Self {
            inner: std::cell::Cell::new(v),
            id: ObjId::new(),
        }
    }

    pub fn get(&self) -> T {
        rt::cell_read(&self.id, 1, 0);
        self.inner.get()
    }

    pub fn set(&self, v: T) {
        rt::cell_write(&self.id, 1, 0);
        self.inner.set(v);
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for Cell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Diagnostic peek, deliberately untracked: formatting state for
        // an error message must not itself flag a race.
        f.debug_tuple("Cell").field(&self.inner.get()).finish()
    }
}

/// Race-tracking for a block of `n` non-atomic locations that the model
/// cannot wrap directly — the ring buffer's slots, whose layout must
/// stay `UnsafeCell<MaybeUninit<T>>` for the zero-copy
/// `from_raw_parts` borrow. The ring records a `write(i)` where the
/// producer fills a slot and a `read(i)` where the consumer claims it;
/// the model race-checks those records exactly like [`Cell`] accesses.
/// Outside a model execution every call is a no-op.
#[derive(Debug, Default)]
pub struct CellGroup {
    n: usize,
    id: ObjId,
}

impl CellGroup {
    pub const fn new(n: usize) -> Self {
        Self {
            n,
            id: ObjId::new(),
        }
    }

    pub fn write(&self, i: usize) {
        debug_assert!(i < self.n);
        rt::cell_write(&self.id, self.n, i);
    }

    pub fn read(&self, i: usize) {
        debug_assert!(i < self.n);
        rt::cell_read(&self.id, self.n, i);
    }

    pub fn read_range(&self, lo: usize, hi: usize) {
        for i in lo..hi {
            self.read(i);
        }
    }
}

/// A tracked [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T> {
    real: std::sync::Mutex<T>,
    id: ObjId,
}

/// Guard for a [`Mutex`]; in model mode, dropping it is the tracked
/// unlock scheduling point.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    mx: &'a Mutex<T>,
    model: bool,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            real: std::sync::Mutex::new(t),
            id: ObjId::new(),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if rt::mutex_lock(&self.id) {
            // The scheduler enforces mutual exclusion, so the wrapped
            // mutex must be free by the time the lock op is granted.
            let inner = self
                .real
                .try_lock()
                .expect("model mutex out of sync with wrapped std mutex");
            Ok(MutexGuard {
                inner: Some(inner),
                mx: self,
                model: true,
            })
        } else {
            match self.real.lock() {
                Ok(inner) => Ok(MutexGuard {
                    inner: Some(inner),
                    mx: self,
                    model: false,
                }),
                Err(pe) => Err(PoisonError::new(MutexGuard {
                    inner: Some(pe.into_inner()),
                    mx: self,
                    model: false,
                })),
            }
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the wrapped lock *before* the tracked unlock op: the
        // unlock op is a scheduling point, and the next thread granted
        // the model lock immediately try_locks the wrapped mutex.
        drop(self.inner.take());
        if self.model {
            rt::mutex_unlock(&self.mx.id);
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// Result of a [`Condvar::wait_timeout`]; in model mode the timeout
/// never fires (a lost wakeup must surface as a deadlock, not be
/// papered over by a timeout).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A tracked [`std::sync::Condvar`]. Model semantics: no spurious
/// wakeups, `notify_one` with several waiters is a branch point, a
/// notify with no waiter is silently lost (exactly the raw material of
/// lost-wakeup bugs).
#[derive(Debug, Default)]
pub struct Condvar {
    real: std::sync::Condvar,
    id: ObjId,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            real: std::sync::Condvar::new(),
            id: ObjId::new(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (inner, mx, model) = dismantle(guard);
        if model {
            drop(inner); // release the wrapped lock; no schedule point until the Wait op
            rt::condvar_wait(&self.id, &mx.id);
            let inner = mx
                .real
                .try_lock()
                .expect("model mutex out of sync with wrapped std mutex");
            Ok(MutexGuard {
                inner: Some(inner),
                mx,
                model: true,
            })
        } else {
            match self.real.wait(inner.expect("guard holds the lock")) {
                Ok(inner) => Ok(MutexGuard {
                    inner: Some(inner),
                    mx,
                    model: false,
                }),
                Err(pe) => Err(PoisonError::new(MutexGuard {
                    inner: Some(pe.into_inner()),
                    mx,
                    model: false,
                })),
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (inner, mx, model) = dismantle(guard);
        if model {
            drop(inner);
            rt::condvar_wait(&self.id, &mx.id);
            let inner = mx
                .real
                .try_lock()
                .expect("model mutex out of sync with wrapped std mutex");
            Ok((
                MutexGuard {
                    inner: Some(inner),
                    mx,
                    model: true,
                },
                WaitTimeoutResult(false),
            ))
        } else {
            match self
                .real
                .wait_timeout(inner.expect("guard holds the lock"), dur)
            {
                Ok((inner, wtr)) => Ok((
                    MutexGuard {
                        inner: Some(inner),
                        mx,
                        model: false,
                    },
                    WaitTimeoutResult(wtr.timed_out()),
                )),
                Err(pe) => {
                    let (inner, wtr) = pe.into_inner();
                    Err(PoisonError::new((
                        MutexGuard {
                            inner: Some(inner),
                            mx,
                            model: false,
                        },
                        WaitTimeoutResult(wtr.timed_out()),
                    )))
                }
            }
        }
    }

    pub fn notify_one(&self) {
        if !rt::condvar_notify(&self.id, false) {
            self.real.notify_one();
        }
    }

    pub fn notify_all(&self) {
        if !rt::condvar_notify(&self.id, true) {
            self.real.notify_all();
        }
    }
}

/// Takes a guard apart without running its `Drop` (the caller is
/// transferring the lock into a condvar wait, which performs the unlock
/// itself as part of the atomic wait op).
fn dismantle<T>(
    guard: MutexGuard<'_, T>,
) -> (Option<std::sync::MutexGuard<'_, T>>, &Mutex<T>, bool) {
    let mut guard = std::mem::ManuallyDrop::new(guard);
    (guard.inner.take(), guard.mx, guard.model)
}
