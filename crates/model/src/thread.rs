//! Tracked thread lifecycle: inside a model execution, `spawn` creates
//! a model thread (the child inherits the parent's causal view, `join`
//! acquires the child's); outside one, both delegate to `std::thread`.

use crate::rt;
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Model {
        target: usize,
        result: Arc<Mutex<Option<T>>>,
    },
    Std(std::thread::JoinHandle<T>),
}

pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Model { target, result } => {
                rt::join_thread(target);
                let v = result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("joined model thread finished without a result");
                Ok(v)
            }
            Inner::Std(h) => h.join(),
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if crate::is_active() {
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let target = rt::spawn_thread(Box::new(move || {
            let v = f();
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
        }));
        JoinHandle(Inner::Model { target, result })
    } else {
        JoinHandle(Inner::Std(std::thread::spawn(f)))
    }
}

/// A pure scheduling point in the model; `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    if !rt::yield_point() {
        std::thread::yield_now();
    }
}
