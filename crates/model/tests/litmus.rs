//! Litmus tests for the checker's own simulated memory model: the
//! classic store-buffering / message-passing / load-buffering shapes
//! with pinned allowed/forbidden outcome sets, plus fence pairing,
//! condvar semantics, and failure-kind detection. These regression-test
//! `maps-model`'s semantics so ring results can be trusted.

use maps_model::sync::{AtomicBool, AtomicU64, Cell, Condvar, Mutex};
use maps_model::{explore, thread, Builder, FailureKind};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

/// Runs `f` under every interleaving and returns the set of observed
/// outcomes; panics if any execution fails (deadlock/race/assert).
fn outcomes<F>(b: &Builder, f: F) -> BTreeSet<(u64, u64)>
where
    F: Fn() -> (u64, u64) + Send + Sync + 'static,
{
    let seen = Arc::new(std::sync::Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&seen);
    b.check(move || {
        let o = f();
        sink.lock().unwrap().insert(o);
    });
    let o = seen.lock().unwrap().clone();
    o
}

/// Store buffering: both threads store their own flag, then read the
/// other's.
fn sb(store: std::sync::atomic::Ordering, load: std::sync::atomic::Ordering) -> (u64, u64) {
    let x = Arc::new(AtomicU64::new(0));
    let y = Arc::new(AtomicU64::new(0));
    let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
    let t = thread::spawn(move || {
        x2.store(1, store);
        y2.load(load)
    });
    y.store(1, store);
    let r1 = x.load(load);
    let r2 = t.join().unwrap();
    (r1, r2)
}

#[test]
fn store_buffering_relaxed_allows_both_zero() {
    let o = outcomes(&Builder::new(), || sb(Relaxed, Relaxed));
    let expected: BTreeSet<_> = [(0, 0), (0, 1), (1, 0), (1, 1)].into_iter().collect();
    assert_eq!(
        o, expected,
        "relaxed SB must expose the store-buffered (0,0)"
    );
}

#[test]
fn store_buffering_release_acquire_still_allows_both_zero() {
    // Release/acquire alone does NOT forbid (0,0): that needs SC.
    let o = outcomes(&Builder::new(), || sb(Release, Acquire));
    assert!(
        o.contains(&(0, 0)),
        "rel/acq SB still allows (0,0), got {o:?}"
    );
}

#[test]
fn store_buffering_seqcst_forbids_both_zero() {
    let o = outcomes(&Builder::new(), || sb(SeqCst, SeqCst));
    let expected: BTreeSet<_> = [(0, 1), (1, 0), (1, 1)].into_iter().collect();
    assert_eq!(o, expected, "SeqCst SB must forbid (0,0)");
}

/// Dekker with relaxed accesses ordered by SeqCst *fences* — the exact
/// shape of the ring's park/wake handshake.
#[test]
fn store_buffering_seqcst_fences_forbid_both_zero() {
    let o = outcomes(&Builder::new(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Relaxed);
            maps_model::sync::fence(SeqCst);
            y2.load(Relaxed)
        });
        y.store(1, Relaxed);
        maps_model::sync::fence(SeqCst);
        let r1 = x.load(Relaxed);
        (r1, t.join().unwrap())
    });
    assert!(
        !o.contains(&(0, 0)),
        "SC fences must forbid (0,0), got {o:?}"
    );
    assert!(
        o.len() == 3,
        "all other SB outcomes remain reachable: {o:?}"
    );
}

/// Message passing through an atomic payload.
fn mp(store: std::sync::atomic::Ordering, load: std::sync::atomic::Ordering) -> (u64, u64) {
    let data = Arc::new(AtomicU64::new(0));
    let flag = Arc::new(AtomicU64::new(0));
    let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
    let t = thread::spawn(move || {
        d2.store(42, Relaxed);
        f2.store(1, store);
    });
    let seen = flag.load(load);
    let payload = data.load(Relaxed);
    t.join().unwrap();
    (seen, payload)
}

#[test]
fn message_passing_release_acquire_forbids_stale_payload() {
    let o = outcomes(&Builder::new(), || mp(Release, Acquire));
    assert!(
        !o.contains(&(1, 0)),
        "rel/acq MP must forbid flag=1,data=0: {o:?}"
    );
    assert!(o.contains(&(0, 0)) && o.contains(&(1, 42)), "sanity: {o:?}");
}

#[test]
fn message_passing_relaxed_allows_stale_payload() {
    let o = outcomes(&Builder::new(), || mp(Relaxed, Relaxed));
    assert!(
        o.contains(&(1, 0)),
        "relaxed MP must expose the stale-payload (1,0) this host's \
         hardware would rarely produce: {o:?}"
    );
}

/// Load buffering: the (1,1) outcome needs out-of-thin-air-adjacent
/// speculation that an operational simulator (ours, loom's, and real
/// x86/ARM hardware without compiler reordering) does not produce.
/// Pinned as *forbidden* to document the approximation.
#[test]
fn load_buffering_speculative_outcome_not_produced() {
    let o = outcomes(&Builder::new(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            let r2 = y2.load(Relaxed);
            x2.store(1, Relaxed);
            r2
        });
        let r1 = x.load(Relaxed);
        y.store(1, Relaxed);
        (r1, t.join().unwrap())
    });
    let expected: BTreeSet<_> = [(0, 0), (0, 1), (1, 0)].into_iter().collect();
    assert_eq!(o, expected, "LB (1,1) requires speculation the model omits");
}

/// Fence pairing orders a non-atomic payload across a relaxed flag —
/// race-detection must stay quiet.
#[test]
fn fence_pairing_orders_nonatomic_payload() {
    struct Shared(Cell<u64>);
    // SAFETY: shared single-writer/hand-off use, exactly like the
    // ring's slots; the race detector, not the type system, enforces
    // the discipline.
    unsafe impl Sync for Shared {}
    Builder::new().check(|| {
        let data = Arc::new(Shared(Cell::new(0)));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.0.set(42);
            maps_model::sync::fence(Release);
            f2.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            maps_model::sync::fence(Acquire);
            assert_eq!(data.0.get(), 42);
        }
        t.join().unwrap();
    });
}

/// The same shape without the fences is a data race, and the checker
/// must say so.
#[test]
fn unfenced_nonatomic_payload_is_reported_as_race() {
    struct Shared(Cell<u64>);
    // SAFETY: deliberately racy — the checker must catch the race.
    unsafe impl Sync for Shared {}
    let report = explore(|| {
        let data = Arc::new(Shared(Cell::new(0)));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.0.set(42);
            f2.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            let _ = data.0.get();
        }
        t.join().unwrap();
    });
    let failure = report.failure.expect("race must be detected");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure:?}");
}

/// Flag-under-mutex condvar rendezvous: correct in every interleaving.
#[test]
fn condvar_rendezvous_has_no_lost_wakeup() {
    Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    });
}

/// The classic lost wakeup — flag checked outside the mutex — must
/// surface as a deadlock (the model has no timeout to paper over it).
#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    let report = explore(|| {
        let state = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (_m, cv, flag) = &*s2;
            flag.store(true, SeqCst);
            cv.notify_all();
        });
        let (m, cv, flag) = &*state;
        if !flag.load(SeqCst) {
            // Window: the notify can land between this check and the
            // wait, and then nobody ever wakes us.
            let g = m.lock().unwrap();
            let _g = cv.wait(g).unwrap();
        }
        t.join().unwrap();
    });
    let failure = report.failure.expect("lost wakeup must be detected");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure:?}");
    assert!(!failure.trace.is_empty(), "failing schedule is reported");
}

/// Sleep-set pruning must not change the reachable outcome set — run
/// the raciest litmus shapes with pruning on and off and compare.
#[test]
fn pruning_preserves_outcome_sets() {
    for (name, f) in [
        (
            "sb-relaxed",
            (|| sb(Relaxed, Relaxed)) as fn() -> (u64, u64),
        ),
        ("sb-seqcst", || sb(SeqCst, SeqCst)),
        ("mp-relaxed", || mp(Relaxed, Relaxed)),
        ("mp-rel-acq", || mp(Release, Acquire)),
    ] {
        let pruned = outcomes(&Builder::new().pruning(true), f);
        let full = outcomes(&Builder::new().pruning(false), f);
        assert_eq!(pruned, full, "pruning changed outcomes of {name}");
    }
}

/// Bounded exploration with a pinned seed visits a pinned number of
/// executions and still finds the easy outcomes.
#[test]
fn bounded_mode_is_deterministic() {
    let b = Builder::new().bounded(0xC0FFEE, 64);
    let o1 = outcomes(&b, || sb(Relaxed, Relaxed));
    let o2 = outcomes(&b, || sb(Relaxed, Relaxed));
    assert_eq!(o1, o2, "same seed, same outcomes");
    assert!(
        o1.contains(&(1, 1)),
        "SC-ish outcomes are found immediately: {o1:?}"
    );
}

/// An assertion violated only in some interleavings is found, and the
/// report counts executions.
#[test]
fn interleaving_dependent_assert_is_found() {
    let report = explore(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, SeqCst);
        });
        let before = x.load(SeqCst);
        t.join().unwrap();
        assert_eq!(before, 0, "load can also interleave after the add");
    });
    let failure = report.failure.expect("assert must fail in some schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(report.executions >= 2, "needs exploration, not luck");
}

/// RMWs never read stale values (they act on the newest store).
#[test]
fn rmw_reads_newest_store() {
    Builder::new().check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, Relaxed);
        });
        x.fetch_add(1, Relaxed);
        t.join().unwrap();
        assert_eq!(x.load(Relaxed), 2, "increments never get lost");
    });
}
