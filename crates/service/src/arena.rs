//! Dense generational slot arena for the shard staging hot path.
//!
//! The arrive/depart/cancel path used to resolve "is this admission id
//! still a staged arrival?" through a per-shard `HashMap<u32, u32>` —
//! a hash + probe per event, and a rehash whenever a churn burst grew
//! the table. [`SlotArena`] replaces it with plain array indexing:
//! slots live in one dense `Vec`, insertion pops a free slot (or
//! appends), and the caller keeps the returned [`SlotHandle`] wherever
//! it already keeps per-worker state (the service stores it in the
//! worker's lifecycle record).
//!
//! Stale handles are rejected by a **generation check that holds in
//! release builds**: every slot carries a generation counter that is
//! bumped each time the slot is freed, and a handle only dereferences
//! while its recorded generation matches the slot's current one. A
//! handle kept across a free-and-reuse (the classic ABA hazard of slot
//! reuse — in the service, a worker departing in a *later* window than
//! it arrived in) misses the check and reads as "not present" instead
//! of silently aliasing whatever lives in the slot now. This replaces
//! the `debug_assert_eq!` the map-based staging relied on, which
//! compiled away exactly where it mattered.

/// A handle to a value inserted into a [`SlotArena`].
///
/// Copyable and freely storable; dereferencing through a stale handle
/// (the slot was freed, and possibly reused, since the handle was
/// issued) is safe and returns `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHandle {
    index: u32,
    generation: u32,
}

impl SlotHandle {
    /// A handle that never resolves: its index is out of range for any
    /// arena (and its generation is below any slot's). Useful as the
    /// "not currently staged" default in records that embed a handle.
    pub const DEAD: SlotHandle = SlotHandle {
        index: u32::MAX,
        generation: 0,
    };
}

#[derive(Debug, Clone)]
struct Slot<T> {
    /// Bumped on every free; a handle resolves only while its recorded
    /// generation equals this. Starts at 1 so `SlotHandle::DEAD`
    /// (generation 0) can never match even index-colliding slots.
    generation: u32,
    value: Option<T>,
}

/// A dense generational slot arena: O(1) insert / remove / lookup with
/// no hashing, and ABA-safe handle invalidation on slot reuse.
#[derive(Debug, Clone, Default)]
pub struct SlotArena<T> {
    slots: Vec<Slot<T>>,
    /// Indices of freed slots, reused LIFO.
    free: Vec<u32>,
    live: usize,
}

impl<T> SlotArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (occupied) slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `value`, reusing a freed slot if one exists, and returns
    /// the handle under which it can be read back or removed.
    pub fn insert(&mut self, value: T) -> SlotHandle {
        self.live += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.value.is_none(), "free list held an occupied slot");
                slot.value = Some(value);
                SlotHandle {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("arena outgrew u32 indexing");
                self.slots.push(Slot {
                    generation: 1,
                    value: Some(value),
                });
                SlotHandle {
                    index,
                    generation: 1,
                }
            }
        }
    }

    /// The value behind `handle`, or `None` if the handle is stale (its
    /// slot was freed — and possibly reused — since it was issued).
    pub fn get(&self, handle: SlotHandle) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Removes and returns the value behind `handle`, bumping the
    /// slot's generation so every outstanding copy of the handle goes
    /// stale. Returns `None` (arena untouched) if the handle is stale.
    pub fn remove(&mut self, handle: SlotHandle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation += 1;
        self.free.push(handle.index);
        self.live -= 1;
        Some(value)
    }

    /// Drains every live value into `out` (cleared first) in ascending
    /// slot order, freeing all slots. After the drain the arena is
    /// empty, every outstanding handle is stale, and the free list is
    /// rebuilt so the next fill allocates slots `0, 1, 2, …` densely in
    /// insertion order again.
    pub fn drain_dense(&mut self, out: &mut Vec<T>) {
        out.clear();
        out.reserve(self.live);
        self.free.clear();
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if let Some(value) = slot.value.take() {
                out.push(value);
                slot.generation += 1;
            }
            self.free.push(index as u32);
        }
        // LIFO free list: reversed so slot 0 is popped first.
        self.free.reverse();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = SlotArena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&"a"));
        assert_eq!(arena.get(b), Some(&"b"));
        assert_eq!(arena.remove(a), Some("a"));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(a), None, "freed handle is stale");
        assert_eq!(arena.remove(a), None, "double remove is a no-op");
        assert_eq!(arena.remove(b), Some("b"));
        assert!(arena.is_empty());
    }

    #[test]
    fn reused_slot_rejects_the_old_handle() {
        let mut arena = SlotArena::new();
        let old = arena.insert(1u32);
        assert_eq!(arena.remove(old), Some(1));
        let new = arena.insert(2u32);
        // Same dense slot, different generation.
        assert_eq!(arena.get(old), None);
        assert_eq!(arena.get(new), Some(&2));
        assert_eq!(
            arena.remove(old),
            None,
            "stale handle cannot evict the reuser"
        );
        assert_eq!(arena.get(new), Some(&2));
    }

    #[test]
    fn dead_handle_never_resolves() {
        let mut arena = SlotArena::new();
        assert_eq!(arena.get(SlotHandle::DEAD), None);
        assert_eq!(arena.remove(SlotHandle::DEAD), None);
        arena.insert(7u32);
        assert_eq!(arena.get(SlotHandle::DEAD), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn drain_dense_empties_and_invalidates() {
        let mut arena = SlotArena::new();
        let handles: Vec<SlotHandle> = (0..5u32).map(|i| arena.insert(i)).collect();
        arena.remove(handles[2]);
        let mut out = Vec::new();
        arena.drain_dense(&mut out);
        assert_eq!(out, vec![0, 1, 3, 4], "ascending slot order, hole skipped");
        assert!(arena.is_empty());
        for h in handles {
            assert_eq!(arena.get(h), None, "all pre-drain handles are stale");
        }
        // The next window refills slots densely from 0 again.
        let a = arena.insert(10u32);
        let b = arena.insert(11u32);
        assert_eq!(arena.get(a), Some(&10));
        assert_eq!(arena.get(b), Some(&11));
        let mut out2 = Vec::new();
        arena.drain_dense(&mut out2);
        assert_eq!(
            out2,
            vec![10, 11],
            "insertion order when nothing was cancelled"
        );
    }
}
