//! The sharded service engine: event ingestion, per-shard state, and
//! the deterministic tick reducer.
//!
//! See the crate docs for the architecture picture. The inline comments
//! here focus on the invariants each step must preserve for the
//! replay-equals-batch contract (`replay` module) to hold bitwise.

use maps_core::{
    paper_default_strategy, Observation, PeriodGraphCache, PeriodInput, PricingStrategy,
    StrategyKind, TaskInput, WorkerChurn, WorkerInput,
};
use maps_matching::{BipartiteGraph, BipartiteGraphBuilder, MatchScratch};
use maps_simulator::{
    settle_period, GroundTask, GroundWorker, MatchPolicy, Outcome, RunningMoments,
};
use maps_spatial::{BucketIndex, GridSpec, Point, ShardMap};
use maps_telemetry::LatencyTelemetry;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use crate::arena::{SlotArena, SlotHandle};

use crate::journal::{
    write_checkpoint_file, JournalConfig, JournalError, JournalRecord, JournalWriter, TICK_PRODUCER,
};

/// One event of the online stream.
#[derive(Debug, Clone, Copy)]
pub enum ServiceEvent {
    /// A worker comes online. Ids are assigned by the service in stream
    /// order (global admission order — the same numbering the batch
    /// simulator uses), and the worker's `duration` schedules its own
    /// expiry; send [`ServiceEvent::WorkerDepart`] for earlier exits.
    WorkerArrive {
        /// Location, range radius and availability window.
        worker: GroundWorker,
    },
    /// The worker with the given admission id leaves the platform now
    /// (takes effect at the next tick, like all staged churn). A no-op
    /// for workers already gone or ids never admitted.
    WorkerDepart {
        /// Admission id (position in the arrival stream).
        id: u32,
    },
    /// A requester submits a task for the current period. Carries the
    /// ground-truth task because the service also simulates the
    /// requester's accept/reject decision against the posted price.
    TaskRequest {
        /// The task, including its private valuation.
        task: GroundTask,
    },
    /// Closes the current period: applies staged churn, prices, clears
    /// the market and advances the period counter.
    PeriodTick,
}

/// Why the service refused to admit an event
/// ([`ServiceEvent::validate`]).
///
/// Every variant is a *client* data error: the event references
/// geometry or economics the market cannot represent. The service drops
/// such events (counting them in
/// [`ShardedService::rejected_events`]) rather than panicking — one bad
/// client event must not take the stream down — and rather than
/// admitting them: a NaN coordinate, for instance, has no grid cell
/// (`Grid::cell_of` would silently file it under a boundary cell) and
/// would corrupt per-cell pricing state invisibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventRejection {
    /// Worker location has a non-finite coordinate.
    NonFiniteWorkerLocation,
    /// Worker range radius is NaN, infinite or negative.
    InvalidWorkerRadius,
    /// Task origin or destination has a non-finite coordinate.
    NonFiniteTaskEndpoint,
    /// Task travel distance is NaN, infinite, zero or negative.
    InvalidTaskDistance,
    /// Task valuation is NaN or infinite.
    NonFiniteTaskValuation,
}

impl std::fmt::Display for EventRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EventRejection::NonFiniteWorkerLocation => "non-finite worker location",
            EventRejection::InvalidWorkerRadius => "invalid worker radius",
            EventRejection::NonFiniteTaskEndpoint => "non-finite task origin/destination",
            EventRejection::InvalidTaskDistance => "invalid task travel distance",
            EventRejection::NonFiniteTaskValuation => "non-finite task valuation",
        })
    }
}

impl std::error::Error for EventRejection {}

/// A panic caught inside one shard's parallel tick work
/// ([`catch_unwind`] isolation). The service is **poisoned** afterwards:
/// shard state may be mid-mutation, so every further push returns
/// [`ServiceError::Poisoned`] instead of risking silent corruption —
/// the typed-error analogue of a crashed process, recoverable through
/// the journal ([`crate::recovery`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// Index of the shard whose closure panicked.
    pub shard: usize,
    /// Period whose tick was poisoned.
    pub period: u32,
    /// Stringified panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} panicked during tick {}: {}",
            self.shard, self.period, self.message
        )
    }
}

impl std::error::Error for ShardPanic {}

/// Why [`ShardedService::try_push`] (or the stamped/journaled admission
/// paths) refused an event. All variants are `?`-able
/// ([`std::error::Error`] + [`std::fmt::Display`]).
#[derive(Debug)]
pub enum ServiceError {
    /// Admission validation refused the event (client data error; the
    /// stream keeps flowing).
    Rejected(EventRejection),
    /// A shard panicked during an earlier (or this) tick; the service
    /// is poisoned and must be recovered from its journal.
    Poisoned(ShardPanic),
    /// The write-ahead journal failed (I/O); without durability the
    /// event cannot be admitted under the recovery contract.
    Journal(JournalError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected(r) => write!(f, "event rejected: {r}"),
            ServiceError::Poisoned(p) => write!(f, "service poisoned: {p}"),
            ServiceError::Journal(e) => write!(f, "journal failure: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Rejected(r) => Some(r),
            ServiceError::Poisoned(p) => Some(p),
            ServiceError::Journal(e) => Some(e),
        }
    }
}

impl From<EventRejection> for ServiceError {
    fn from(r: EventRejection) -> Self {
        ServiceError::Rejected(r)
    }
}

impl From<JournalError> for ServiceError {
    fn from(e: JournalError) -> Self {
        ServiceError::Journal(e)
    }
}

/// Renders a caught panic payload for [`ShardPanic::message`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work` over every shard in parallel under [`catch_unwind`]
/// isolation, returning the per-shard outputs in shard-id order or the
/// first (lowest-shard-id) typed [`ShardPanic`]. All per-shard parallel
/// phases of the tick go through here so *no* shard closure can tear
/// down the sequencer thread with a raw unwind.
fn par_shards<T: Send>(
    shards: &mut [Shard],
    period: u32,
    work: impl Fn(usize, &mut Shard) -> T + Sync,
) -> Result<Vec<T>, ShardPanic> {
    let mut indexed: Vec<(usize, &mut Shard)> = shards.iter_mut().enumerate().collect();
    let results: Vec<Result<T, ShardPanic>> = indexed
        .par_iter_mut()
        .map(|entry| {
            let i = entry.0;
            let shard: &mut Shard = entry.1;
            catch_unwind(AssertUnwindSafe(|| work(i, shard))).map_err(|payload| ShardPanic {
                shard: i,
                period,
                message: panic_message(payload),
            })
        })
        .collect();
    results.into_iter().collect()
}

impl ServiceEvent {
    /// Admission-time validation: checks that the event's geometry and
    /// economics are representable before any state is touched.
    ///
    /// `WorkerDepart` and `PeriodTick` are always valid (a stale or
    /// unknown departure id is a semantic no-op, not a data error).
    pub fn validate(&self) -> Result<(), EventRejection> {
        let finite = |p: Point| p.x.is_finite() && p.y.is_finite();
        match self {
            ServiceEvent::WorkerArrive { worker } => {
                if !finite(worker.location) {
                    return Err(EventRejection::NonFiniteWorkerLocation);
                }
                if !(worker.radius.is_finite() && worker.radius >= 0.0) {
                    return Err(EventRejection::InvalidWorkerRadius);
                }
                Ok(())
            }
            ServiceEvent::TaskRequest { task } => {
                if !finite(task.origin) || !finite(task.destination) {
                    return Err(EventRejection::NonFiniteTaskEndpoint);
                }
                if !(task.distance.is_finite() && task.distance > 0.0) {
                    return Err(EventRejection::InvalidTaskDistance);
                }
                if !task.valuation.is_finite() {
                    return Err(EventRejection::NonFiniteTaskValuation);
                }
                Ok(())
            }
            ServiceEvent::WorkerDepart { .. } | ServiceEvent::PeriodTick => Ok(()),
        }
    }
}

/// Configuration of a [`ShardedService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shards (≥ 1). Any value yields bit-identical outcomes;
    /// it only controls how the per-tick spatial work is partitioned.
    pub shards: usize,
    /// Per-task edge cap of the period graph (the batch simulator's
    /// [`maps_simulator::SimOptions::max_edges_per_task`]).
    pub max_edges_per_task: usize,
    /// Sizing hint for the per-shard spatial indexes.
    pub expected_workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let sim = maps_simulator::SimOptions::default();
        Self {
            shards: 4,
            max_edges_per_task: sim.max_edges_per_task,
            expected_workers: 1024,
        }
    }
}

/// Where a worker currently is in its lifecycle (mirrors the batch
/// simulator's event-queue engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// In its owning shard's live set — can be matched.
    Available,
    /// Matched under the relocate policy; re-enters at its scheduled
    /// release.
    Busy,
    /// Left permanently (consumed, expired, departed).
    Gone,
}

/// Global per-worker record. The spatial state lives in the owning
/// shard's cache; this is the routing + lifecycle view.
#[derive(Debug, Clone, Copy)]
struct Record {
    /// First period in which the worker no longer exists.
    expires_at: u32,
    status: Status,
    /// Shard currently owning the worker's location. Updated when a
    /// relocation release lands the worker in another shard's cells.
    shard: u32,
    /// Handle of the worker's most recent staged arrival in the owning
    /// shard's staging arena. Only meaningful while that staging window
    /// is open; the arena's generation check rejects it afterwards, so
    /// it never needs clearing (and restores as [`SlotHandle::DEAD`],
    /// since checkpoints are cut at tick boundaries where nothing is
    /// staged).
    staged: SlotHandle,
}

/// A scheduled lifecycle transition, fired at the start of its tick.
#[derive(Debug, Clone, Copy)]
enum Timed {
    /// The worker's availability window ends this period.
    Expire(u32),
    /// A busy worker re-enters this period at its relocation target.
    Release(u32, WorkerInput),
}

/// One shard: the spatial state for its cells plus the churn staged
/// since the last tick. All mutation between ticks is staging; the
/// cache is only touched inside the tick's parallel phases, which also
/// fill the per-tick scratch buffers below (reused across the stream,
/// so the hot path stops allocating once warm).
#[derive(Debug)]
struct Shard {
    cache: PeriodGraphCache,
    /// Staged arrivals of the current inter-tick window in a dense
    /// generational [`SlotArena`]: staging is an O(1) slot write, a
    /// same-window departure cancels in O(1) through the handle stored
    /// in the worker's [`Record`], and no hashing happens anywhere on
    /// the arrive/depart/cancel path. Handles from earlier windows are
    /// rejected by the arena's generation check (which holds in
    /// release builds), so the tick drain doubles as bulk handle
    /// invalidation. Safe because `PeriodGraphCache::apply` is
    /// arrival-order-independent: cancellation holes and slot reuse
    /// can reorder the drained batch without moving a single bit.
    staged: SlotArena<(u32, WorkerInput)>,
    /// Tick-time drain buffer for `staged` (reused across ticks).
    arrivals: Vec<(u32, WorkerInput)>,
    departures: Vec<u32>,
    /// Capped path: this tick's candidate lists, flattened;
    /// `candidate_starts[t]..candidate_starts[t+1]` indexes task `t`'s.
    candidates: Vec<(f64, u32)>,
    candidate_starts: Vec<u32>,
    /// Uncapped fallback: this tick's `(task, worker-id)` edge slice.
    edges: Vec<(u32, u32)>,
    /// Per-query scratch for the k-nearest candidate queries.
    query: Vec<(f64, u32)>,
}

impl Shard {
    fn new(cache: PeriodGraphCache) -> Self {
        Self {
            cache,
            staged: SlotArena::new(),
            arrivals: Vec::new(),
            departures: Vec::new(),
            candidates: Vec::new(),
            candidate_starts: Vec::new(),
            edges: Vec::new(),
            query: Vec::new(),
        }
    }

    /// Stages an arrival; the returned handle (stored in the worker's
    /// [`Record`]) is the O(1) cancellation token.
    fn stage_arrival(&mut self, id: u32, input: WorkerInput) -> SlotHandle {
        self.staged.insert((id, input))
    }

    /// Cancels a staged arrival through the handle issued when it was
    /// staged. Returns whether it was still staged in the current
    /// window: a handle from a pre-drain window fails the arena's
    /// generation check — in release builds too — instead of aliasing
    /// whatever later arrival reused the slot.
    fn cancel_staged(&mut self, id: u32, handle: SlotHandle) -> bool {
        match self.staged.remove(handle) {
            Some((staged_id, _)) => {
                // The generation check already proves the slot is the
                // one the handle was issued for; an id mismatch here
                // would mean the record table itself is corrupt.
                assert_eq!(staged_id, id, "staging arena returned a foreign id");
                true
            }
            None => false,
        }
    }

    /// Applies the staged churn and reports `(live_count, max_radius)`
    /// for the global reduction. Pure per-shard work: safe to run on
    /// any thread.
    fn apply_staged(&mut self) -> (usize, f64) {
        // One dense pass: drain the arena into the reused batch buffer
        // (O(staged) once per tick — amortized O(1) per event) and
        // invalidate every outstanding staging handle via the
        // generation bump.
        self.staged.drain_dense(&mut self.arrivals);
        self.cache.apply(WorkerChurn {
            arrivals: &self.arrivals,
            departures: &self.departures,
            relocations: &[],
        });
        self.arrivals.clear();
        self.departures.clear();
        (self.cache.live_count(), self.cache.max_live_radius())
    }

    /// Capped path: answers every task's k-nearest query against this
    /// shard's index into the reused flat buffers.
    fn collect_candidates(&mut self, tasks: &[TaskInput], max_radius: f64, k: usize) {
        self.candidates.clear();
        self.candidate_starts.clear();
        self.candidate_starts.reserve(tasks.len() + 1);
        self.candidate_starts.push(0);
        for task in tasks {
            self.cache
                .k_nearest_candidates_into(task.origin, max_radius, k, &mut self.query);
            self.candidates.extend_from_slice(&self.query);
            self.candidate_starts.push(self.candidates.len() as u32);
        }
    }

    /// This tick's candidates for task `t_idx` (after
    /// [`Shard::collect_candidates`]), sorted by `(distance, id)`.
    fn task_candidates(&self, t_idx: usize) -> &[(f64, u32)] {
        let lo = self.candidate_starts[t_idx] as usize;
        let hi = self.candidate_starts[t_idx + 1] as usize;
        &self.candidates[lo..hi]
    }

    /// Uncapped fallback: enumerates this shard's slice of the full
    /// edge set into the reused buffer.
    fn collect_edges(&mut self, task_index: &BucketIndex<u32>) {
        self.edges.clear();
        let edges = &mut self.edges;
        self.cache
            .for_each_task_edge(task_index, |t_idx, id| edges.push((t_idx, id)));
    }
}

/// The grid-sharded online pricing engine.
///
/// Feed it [`ServiceEvent`]s via [`ShardedService::push`]; read the
/// accumulated [`Outcome`] any time via [`ShardedService::outcome`] (or
/// consume it with [`ShardedService::into_outcome`]).
pub struct ShardedService {
    grid: GridSpec,
    router: ShardMap,
    match_policy: MatchPolicy,
    strategy: Box<dyn PricingStrategy>,
    shards: Vec<Shard>,
    /// Per-worker lifecycle records, indexed by admission id.
    records: Vec<Record>,
    /// Scheduled expiries/releases, keyed by the period they fire in.
    /// A `BTreeMap` (not per-period buckets) because the service has no
    /// horizon: a `u32::MAX` expiry must be schedulable without
    /// allocating 2³² buckets — it simply never fires.
    schedule: BTreeMap<u32, Vec<Timed>>,
    /// Tasks submitted since the last tick, in stream order (the order
    /// pricing feedback and price moments are fed in — load-bearing for
    /// bit-identity with the batch loop).
    pending_tasks: Vec<GroundTask>,
    /// Current period (number of ticks processed so far).
    period: u32,
    k: usize,
    // ---- tick scratch, reused across the stream ----
    task_inputs: Vec<TaskInput>,
    live_ids: Vec<u32>,
    worker_inputs: Vec<WorkerInput>,
    observations: Vec<Observation>,
    keep: Vec<bool>,
    weights: Vec<f64>,
    clearing: MatchScratch,
    /// Per-task cross-shard candidate merge scratch (capped path).
    merge_scratch: Vec<(f64, u32)>,
    /// Recycled edge arena threaded through every graph build.
    edge_arena: Vec<(u32, u32)>,
    // ---- outcome accumulation ----
    /// Kept fully finalized after every tick (price moments included),
    /// so observing the live service is a borrow, not a clone.
    outcome: Outcome,
    price_moments: RunningMoments,
    // ---- durability & fault tolerance (PR 6) ----
    /// Per-producer high-water mark `(epoch, seq)` of the last admitted
    /// event: the idempotence filter for at-least-once producer resends
    /// after a reconnect. Rejected events advance it too (they *were*
    /// delivered); suppressed resends count into
    /// `outcome.suppressed_duplicates` and are not re-journaled.
    watermarks: Vec<Option<(u64, u64)>>,
    /// Sequence counter for the serial [`ShardedService::try_push`]
    /// path (producer 0), reset at each tick so serial stamps mirror
    /// the ingest layer's per-epoch numbering.
    serial_seq: u64,
    /// Attached write-ahead journal, if any.
    journal: Option<JournalState>,
    /// Set once a shard closure panicked: the typed-error analogue of a
    /// crash. Every later push fails with this until recovery.
    poisoned: Option<ShardPanic>,
    /// Deterministic fault injection: `(shard, period)` at which the
    /// shard's next parallel closure panics (testkit `FaultPlan`).
    shard_fault: Option<(u32, u32)>,
}

/// The engine's view of an attached journal.
#[derive(Debug)]
struct JournalState {
    writer: JournalWriter,
    dir: PathBuf,
    checkpoint_every: u32,
}

impl ShardedService {
    /// A service for one of the five paper strategies with paper-default
    /// parameters (same factory as the batch simulator).
    pub fn new(
        grid: GridSpec,
        match_policy: MatchPolicy,
        kind: StrategyKind,
        config: ServiceConfig,
    ) -> Self {
        Self::with_strategy(
            grid,
            match_policy,
            paper_default_strategy(kind, grid.num_cells()),
            config,
        )
    }

    /// A service around a custom strategy instance.
    pub fn with_strategy(
        grid: GridSpec,
        match_policy: MatchPolicy,
        strategy: Box<dyn PricingStrategy>,
        config: ServiceConfig,
    ) -> Self {
        let router = ShardMap::new(config.shards);
        let per_shard = config.expected_workers.div_ceil(config.shards).max(16);
        let shards = (0..config.shards)
            .map(|_| Shard::new(PeriodGraphCache::new(&grid, per_shard)))
            .collect();
        let outcome = Outcome {
            strategy: strategy.name().to_string(),
            total_revenue: 0.0,
            issued_tasks: 0,
            accepted_tasks: 0,
            matched_tasks: 0,
            pricing_secs: 0.0,
            clearing_secs: 0.0,
            calibration_secs: 0.0,
            peak_memory_mib: None,
            revenue_per_period: Vec::new(),
            mean_posted_price: 0.0,
            posted_price_std: 0.0,
            matched_distance: 0.0,
            rejected_events: 0,
            suppressed_duplicates: 0,
            latency: LatencyTelemetry::new(),
        };
        Self {
            grid,
            router,
            match_policy,
            strategy,
            shards,
            records: Vec::new(),
            schedule: BTreeMap::new(),
            pending_tasks: Vec::new(),
            period: 0,
            k: config.max_edges_per_task,
            task_inputs: Vec::new(),
            live_ids: Vec::new(),
            worker_inputs: Vec::new(),
            observations: Vec::new(),
            keep: Vec::new(),
            weights: Vec::new(),
            clearing: MatchScratch::new(),
            merge_scratch: Vec::new(),
            edge_arena: Vec::new(),
            outcome,
            price_moments: RunningMoments::new(),
            watermarks: Vec::new(),
            serial_seq: 0,
            journal: None,
            poisoned: None,
            shard_fault: None,
        }
    }

    /// Runs the strategy's one-off Algorithm-1 calibration against
    /// `probe` (before the first tick, like the batch simulator).
    pub fn calibrate(&mut self, probe: &mut dyn maps_core::DemandProbe) {
        // lint-allow(det-wallclock): calibration_secs is timing telemetry, excluded from deterministic_bits
        let start = Instant::now();
        self.strategy.calibrate(probe);
        self.outcome.calibration_secs += start.elapsed().as_secs_f64();
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Periods closed so far.
    pub fn periods_served(&self) -> u32 {
        self.period
    }

    /// Workers admitted over the service's lifetime.
    pub fn admitted_workers(&self) -> usize {
        self.records.len()
    }

    /// Workers currently in the live (matchable) set, summed over
    /// shards. Staged churn applies at the next tick.
    pub fn live_workers(&self) -> usize {
        self.shards.iter().map(|s| s.cache.live_count()).sum()
    }

    /// Ingests one event, dropping it (and counting it in
    /// [`ShardedService::rejected_events`]) if admission validation
    /// refuses it — the fire-and-forget shape of
    /// [`ShardedService::try_push`]. Arrivals, departures and task
    /// requests stage state; [`ServiceEvent::PeriodTick`] closes the
    /// period.
    ///
    /// # Panics
    /// Panics on a poisoned service or a journal I/O failure — the two
    /// faults fire-and-forget cannot report. Use
    /// [`ShardedService::try_push`] where those must be handled.
    pub fn push(&mut self, event: ServiceEvent) {
        if let Err(e @ (ServiceError::Poisoned(_) | ServiceError::Journal(_))) =
            self.try_push(event)
        {
            panic!("push on a failed service: {e}");
        }
    }

    /// Ingests one event, reporting *why* it was refused when admission
    /// refuses it. A [`ServiceError::Rejected`] event mutates nothing
    /// (in particular, a rejected `WorkerArrive` does **not** consume
    /// an admission id) but is counted in
    /// [`ShardedService::rejected_events`]; the stream keeps flowing.
    /// [`ServiceError::Poisoned`] and [`ServiceError::Journal`] are
    /// fatal: the service refuses all further events until recovered.
    ///
    /// Events are stamped `(producer 0, epoch = current period, seq)`
    /// with a per-period serial counter, mirroring the ingest layer's
    /// numbering, so a journaled serial stream recovers exactly like a
    /// multi-producer one.
    pub fn try_push(&mut self, event: ServiceEvent) -> Result<(), ServiceError> {
        match event {
            ServiceEvent::PeriodTick => {
                self.push_stamped(TICK_PRODUCER, u64::from(self.period), 0, event)
            }
            event => {
                let seq = self.serial_seq;
                // The slot is consumed even when admission rejects the
                // event: the stamp identifies the *delivery*, and a
                // rejected delivery must not be re-deliverable.
                self.serial_seq += 1;
                self.push_stamped(0, u64::from(self.period), seq, event)
            }
        }
    }

    /// Ingests one event carrying explicit `(producer, epoch, seq)`
    /// coordinates (the ingest sequencer's entry point — serial callers
    /// want [`ShardedService::try_push`]).
    ///
    /// Ordering contract: calls must arrive in the total
    /// `(epoch, producer, seq)` order. Re-deliveries at or below the
    /// producer's watermark are suppressed idempotently (counted in
    /// [`maps_simulator::Outcome::suppressed_duplicates`]) — the
    /// mechanism that makes at-least-once producer reconnects safe.
    /// Admitted events are journaled **before** validation, so recovery
    /// re-counts rejections deterministically.
    pub fn push_stamped(
        &mut self,
        producer: u32,
        epoch: u64,
        seq: u64,
        event: ServiceEvent,
    ) -> Result<(), ServiceError> {
        if let Some(panic) = &self.poisoned {
            return Err(ServiceError::Poisoned(panic.clone()));
        }
        if producer == TICK_PRODUCER {
            debug_assert!(
                matches!(event, ServiceEvent::PeriodTick),
                "TICK_PRODUCER is reserved for PeriodTick records"
            );
            return self.close_period();
        }
        if matches!(event, ServiceEvent::PeriodTick) {
            return self.close_period();
        }
        let lane = producer as usize;
        if self.watermarks.len() <= lane {
            self.watermarks.resize(lane + 1, None);
        }
        if self.watermarks[lane] >= Some((epoch, seq)) {
            self.outcome.suppressed_duplicates += 1;
            return Ok(());
        }
        self.watermarks[lane] = Some((epoch, seq));
        if let Some(journal) = &mut self.journal {
            journal.writer.append(&JournalRecord {
                producer,
                epoch,
                seq,
                event,
            })?;
        }
        self.admit(event)
    }

    /// Ingests a **contiguous run** of events from one producer:
    /// `events[k]` carries the coordinates `(producer, epoch,
    /// first_seq + k)`. Observably equivalent to calling
    /// [`ShardedService::push_stamped`] once per event — same watermark
    /// state, same journal byte stream, same rejection and suppression
    /// counts — but the per-event stamping overhead (poisoned check,
    /// tick dispatch, watermark compare-and-store) is hoisted out of
    /// the loop: the at-least-once resend prefix is suppressed
    /// arithmetically against the watermark, and the watermark is
    /// stored once for the whole run. This is the ingest sequencer's
    /// batched admission path.
    ///
    /// The same ordering contract as [`ShardedService::push_stamped`]
    /// applies across runs, and runs must not contain
    /// [`ServiceEvent::PeriodTick`] (ticks travel alone).
    ///
    /// # Errors
    /// Only fatal faults ([`ServiceError::Poisoned`] /
    /// [`ServiceError::Journal`]). Per-event *rejections* are counted
    /// in [`ShardedService::rejected_events`] and the run keeps going —
    /// the same net effect as the sequencer swallowing per-event
    /// `Rejected` errors.
    pub fn push_stamped_run(
        &mut self,
        producer: u32,
        epoch: u64,
        first_seq: u64,
        events: &[ServiceEvent],
    ) -> Result<(), ServiceError> {
        if events.is_empty() {
            return Ok(());
        }
        if let Some(panic) = &self.poisoned {
            return Err(ServiceError::Poisoned(panic.clone()));
        }
        debug_assert_ne!(producer, TICK_PRODUCER, "ticks travel via push_stamped");
        debug_assert!(
            !events.iter().any(|e| matches!(e, ServiceEvent::PeriodTick)),
            "runs must not contain PeriodTick"
        );
        let lane = producer as usize;
        if self.watermarks.len() <= lane {
            self.watermarks.resize(lane + 1, None);
        }
        let last_seq = first_seq + (events.len() as u64 - 1);
        // The already-delivered resend prefix, computed arithmetically:
        // per event, `watermark >= Some((epoch, seq))` suppresses.
        let skip = match self.watermarks[lane] {
            Some((we, _)) if we > epoch => events.len(),
            Some((we, ws)) if we == epoch && ws >= last_seq => events.len(),
            Some((we, ws)) if we == epoch && ws >= first_seq => (ws - first_seq + 1) as usize,
            _ => 0,
        };
        self.outcome.suppressed_duplicates += skip as u64;
        if skip == events.len() {
            return Ok(()); // fully suppressed: watermark unchanged
        }
        // Journal **before** validation, like `push_stamped`, so
        // recovery re-counts rejections deterministically. The journal
        // branch is hoisted out of the hot loop: the unjournaled run
        // path pays no per-event `Option` check at all.
        if self.journal.is_some() {
            for (k, &event) in events[skip..].iter().enumerate() {
                let seq = first_seq + (skip + k) as u64;
                let journal = self.journal.as_mut().expect("checked above");
                if let Err(e) = journal.writer.append(&JournalRecord {
                    producer,
                    epoch,
                    seq,
                    event,
                }) {
                    // The watermark the per-event path would leave on a
                    // mid-run journal fault: the failing event's stamp.
                    self.watermarks[lane] = Some((epoch, seq));
                    return Err(e.into());
                }
                self.admit_run_event(event);
            }
        } else {
            for &event in &events[skip..] {
                self.admit_run_event(event);
            }
        }
        self.watermarks[lane] = Some((epoch, last_seq));
        Ok(())
    }

    /// Validation + dispatch of one event inside a batched run: like
    /// [`ShardedService::admit`] but rejections only bump the counter
    /// (the run keeps going; no error value is built).
    #[inline]
    fn admit_run_event(&mut self, event: ServiceEvent) {
        if event.validate().is_err() {
            self.outcome.rejected_events += 1;
            return;
        }
        match event {
            ServiceEvent::WorkerArrive { worker } => self.worker_arrive(worker),
            ServiceEvent::WorkerDepart { id } => self.worker_depart(id),
            ServiceEvent::TaskRequest { task } => self.pending_tasks.push(task),
            ServiceEvent::PeriodTick => unreachable!("runs must not contain PeriodTick"),
        }
    }

    /// Validation + dispatch of an already-journaled event.
    fn admit(&mut self, event: ServiceEvent) -> Result<(), ServiceError> {
        if let Err(rejection) = event.validate() {
            self.outcome.rejected_events += 1;
            return Err(ServiceError::Rejected(rejection));
        }
        match event {
            ServiceEvent::WorkerArrive { worker } => self.worker_arrive(worker),
            ServiceEvent::WorkerDepart { id } => self.worker_depart(id),
            ServiceEvent::TaskRequest { task } => self.pending_tasks.push(task),
            ServiceEvent::PeriodTick => unreachable!("ticks close via close_period"),
        }
        Ok(())
    }

    /// Closes the current period: journals the epoch barrier (making
    /// the whole epoch durable — flush + fsync — *before* the reducer
    /// mutates state, the write-ahead ordering), runs the tick, and
    /// writes an epoch checkpoint on the configured cadence.
    fn close_period(&mut self) -> Result<(), ServiceError> {
        let t = self.period;
        if let Some(journal) = &mut self.journal {
            journal.writer.append(&JournalRecord {
                producer: TICK_PRODUCER,
                epoch: u64::from(t),
                seq: 0,
                event: ServiceEvent::PeriodTick,
            })?;
            journal.writer.sync()?;
        }
        if let Err(panic) = self.run_tick() {
            self.poisoned = Some(panic.clone());
            return Err(ServiceError::Poisoned(panic));
        }
        self.serial_seq = 0;
        if let Some(journal) = &self.journal {
            if self.period.is_multiple_of(journal.checkpoint_every) {
                self.write_checkpoint()?;
            }
        }
        Ok(())
    }

    /// Attaches a write-ahead journal, creating (truncating) its file
    /// and immediately writing a baseline checkpoint of the *current*
    /// state — including calibrated strategy state, which the journal
    /// itself never carries. Attach after [`ShardedService::calibrate`]
    /// and at an epoch boundary (normally: before the first event).
    pub fn attach_journal(&mut self, config: &JournalConfig) -> Result<(), ServiceError> {
        std::fs::create_dir_all(&config.dir).map_err(JournalError::Io)?;
        let writer = JournalWriter::create(&config.journal_path())?;
        self.journal = Some(JournalState {
            writer,
            dir: config.dir.clone(),
            checkpoint_every: config.checkpoint_every.max(1),
        });
        self.write_checkpoint()?;
        Ok(())
    }

    /// Re-attaches a journal writer after recovery: the file already
    /// holds the durable prefix (torn tail truncated by the caller via
    /// [`JournalWriter::open_append`]); appending continues from there.
    pub(crate) fn resume_journal(&mut self, writer: JournalWriter, config: &JournalConfig) {
        self.journal = Some(JournalState {
            writer,
            dir: config.dir.clone(),
            checkpoint_every: config.checkpoint_every.max(1),
        });
    }

    /// Writes `checkpoint_<period>.bin` durably (temp + fsync + rename).
    fn write_checkpoint(&mut self) -> Result<(), ServiceError> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        let words = self.checkpoint_words();
        write_checkpoint_file(&journal.dir, u64::from(self.period), &words)?;
        Ok(())
    }

    /// Arms a deterministic shard panic: the shard's parallel closure
    /// for the given period panics, exercising the `catch_unwind`
    /// poisoning path. Testkit `FaultPlan` hook — not a public API
    /// commitment.
    #[doc(hidden)]
    pub fn inject_shard_fault(&mut self, shard: u32, period: u32) {
        self.shard_fault = Some((shard, period));
    }

    /// The shard panic that poisoned this service, if any.
    pub fn poisoned_by(&self) -> Option<&ShardPanic> {
        self.poisoned.as_ref()
    }

    /// Events dropped by admission validation over the service's
    /// lifetime (non-finite locations, NaN valuations, …). Also
    /// available as [`maps_simulator::Outcome::rejected_events`].
    pub fn rejected_events(&self) -> u64 {
        self.outcome.rejected_events
    }

    /// Producer resends suppressed by the per-producer watermark (see
    /// [`ShardedService::push_stamped`]).
    pub fn suppressed_duplicates(&self) -> u64 {
        self.outcome.suppressed_duplicates
    }

    /// The `(epoch, seq)` of the last event admitted (or suppressed
    /// past) on `producer`'s lane — the coordinate an at-least-once
    /// producer must resume after. `None` for a lane that never sent.
    pub fn watermark(&self, producer: u32) -> Option<(u64, u64)> {
        self.watermarks.get(producer as usize).copied().flatten()
    }

    /// Aligns the serial [`ShardedService::try_push`] counter with
    /// producer 0's durable watermark after recovery, so serial callers
    /// resume stamping exactly past what the journal already holds
    /// instead of colliding with (and being suppressed by) their own
    /// pre-crash sends.
    pub(crate) fn sync_serial_seq(&mut self) {
        self.serial_seq = match self.watermark(0) {
            Some((epoch, seq)) if epoch == u64::from(self.period) => seq + 1,
            _ => 0,
        };
    }

    /// Borrowing snapshot of the outcome accumulated so far — **O(1)**,
    /// no allocation: the reducer keeps every field (price moments
    /// included) finalized at each tick, so monitoring a live service
    /// mid-stream costs a borrow instead of cloning the O(periods)
    /// `revenue_per_period` series the way [`ShardedService::outcome`]
    /// does.
    pub fn outcome_snapshot(&self) -> &Outcome {
        &self.outcome
    }

    /// The outcome accumulated so far, as an owned clone (O(periods)).
    /// Prefer [`ShardedService::outcome_snapshot`] for repeated
    /// mid-stream observation and [`ShardedService::into_outcome`] for
    /// the final result.
    pub fn outcome(&self) -> Outcome {
        self.outcome.clone()
    }

    /// Consumes the service, returning the final outcome. Move-only: no
    /// clone happens on this path.
    pub fn into_outcome(self) -> Outcome {
        self.outcome
    }

    fn worker_arrive(&mut self, worker: GroundWorker) {
        let id = self.records.len() as u32;
        let t = self.period;
        let expires_at = t.saturating_add(worker.duration);
        // Mirrors the batch lifecycle: a worker whose window is already
        // over still consumes an id (so later ids keep their batch-path
        // positions) but never enters any live set.
        if expires_at <= t {
            self.records.push(Record {
                expires_at,
                status: Status::Gone,
                shard: 0,
                staged: SlotHandle::DEAD,
            });
            return;
        }
        let input = WorkerInput::new(&self.grid, worker.location, worker.radius);
        let shard = self.router.shard_of(input.cell) as u32;
        let staged = self.shards[shard as usize].stage_arrival(id, input);
        self.records.push(Record {
            expires_at,
            status: Status::Available,
            shard,
            staged,
        });
        self.schedule
            .entry(expires_at)
            .or_default()
            .push(Timed::Expire(id));
    }

    fn worker_depart(&mut self, id: u32) {
        // Unknown ids are ignored like already-gone workers: an online
        // stream can carry duplicate or stale departure events, and one
        // bad client event must not take the whole service down.
        let Some(record) = self.records.get_mut(id as usize) else {
            return;
        };
        if record.status == Status::Available {
            let shard = &mut self.shards[record.shard as usize];
            // A worker departing in the same inter-tick window it
            // arrived in is still a staged arrival: cancel it (O(1)
            // through the record's arena handle) instead of staging a
            // departure the cache has never seen. A handle from an
            // already-applied window fails the generation check and
            // falls through to a normal departure.
            if !shard.cancel_staged(id, record.staged) {
                shard.departures.push(id);
            }
        }
        record.status = Status::Gone;
    }

    /// Fires the lifecycle events scheduled for period `t`, staging the
    /// resulting churn into the owning shards.
    fn fire_scheduled(&mut self, t: u32) {
        let Some(events) = self.schedule.remove(&t) else {
            return;
        };
        for event in events {
            match event {
                Timed::Expire(id) => {
                    let record = &mut self.records[id as usize];
                    if record.status == Status::Available {
                        self.shards[record.shard as usize].departures.push(id);
                    }
                    record.status = Status::Gone;
                }
                Timed::Release(id, input) => {
                    let record = &mut self.records[id as usize];
                    if record.status == Status::Busy && t < record.expires_at {
                        record.status = Status::Available;
                        // Relocation can migrate the worker to another
                        // shard's cells: re-route by the new location.
                        let shard = self.router.shard_of(input.cell) as u32;
                        record.shard = shard;
                        record.staged = self.shards[shard as usize].stage_arrival(id, input);
                    } else {
                        record.status = Status::Gone;
                    }
                }
            }
        }
    }

    /// Builds the period's capped bipartite graph from the per-shard
    /// caches, bit-identical to the batch builder on the merged live
    /// set. `stats` are the shards' post-churn `(live, max_radius)`.
    /// Per-shard query work is panic-isolated like the churn phase.
    fn build_graph(&mut self, stats: &[(usize, f64)]) -> Result<BipartiteGraph, ShardPanic> {
        let live_total: usize = stats.iter().map(|s| s.0).sum();
        // Merge the shards' ascending (and mutually disjoint) live-id
        // lists into the global ascending order — identical to the
        // batch engine's single live list because ids are global
        // admission order regardless of shard.
        self.live_ids.clear();
        self.live_ids.reserve(live_total);
        {
            let mut cursors: Vec<(&[u32], usize)> = self
                .shards
                .iter()
                .map(|s| (s.cache.live_ids(), 0))
                .collect();
            loop {
                let mut best: Option<(u32, usize)> = None;
                for (si, &(ids, pos)) in cursors.iter().enumerate() {
                    if pos < ids.len() && best.is_none_or(|(b, _)| ids[pos] < b) {
                        best = Some((ids[pos], si));
                    }
                }
                let Some((id, si)) = best else { break };
                cursors[si].1 += 1;
                self.live_ids.push(id);
            }
        }
        self.worker_inputs.clear();
        self.worker_inputs.reserve(live_total);
        for &id in &self.live_ids {
            let shard = self.records[id as usize].shard as usize;
            self.worker_inputs.push(
                *self.shards[shard]
                    .cache
                    .worker(id)
                    .expect("live id is in its owning shard"),
            );
        }

        let k = self.k;
        let mut builder = BipartiteGraphBuilder::with_arena(
            self.task_inputs.len(),
            live_total,
            self.task_inputs.len() * k.min(live_total.max(1)),
            std::mem::take(&mut self.edge_arena),
        );
        if live_total <= k {
            // Fallback mirror of the batch builder: with no cap to
            // enforce, enumerate every in-range (task, worker) pair.
            // Shards emit their slices of the edge set in parallel; the
            // builder canonicalizes order, so a union is enough.
            let items: Vec<(maps_spatial::Point, u32)> = self
                .task_inputs
                .iter()
                .enumerate()
                .map(|(i, t)| (t.origin, i as u32))
                .collect();
            let task_index = BucketIndex::build(self.grid.region(), &items);
            par_shards(&mut self.shards, self.period, |_, shard| {
                shard.collect_edges(&task_index)
            })?;
            let live_ids = &self.live_ids;
            for shard in &self.shards {
                for &(t_idx, id) in &shard.edges {
                    let dense = live_ids.binary_search(&id).expect("edge worker is live");
                    builder.add_edge(t_idx as usize, dense);
                }
            }
        } else {
            // Capped path: every task takes its k nearest in-range
            // workers under the total (distance, id) order. Each shard
            // answers from its own index with the *global* max radius
            // into reused flat buffers; merging the per-shard top-k
            // lists and truncating to k is exactly the one-index query
            // (the order is total and layout-independent).
            let max_radius = stats.iter().map(|s| s.1).fold(0.0f64, f64::max);
            let tasks = &self.task_inputs;
            par_shards(&mut self.shards, self.period, |_, shard| {
                shard.collect_candidates(tasks, max_radius, k)
            })?;
            let live_ids = &self.live_ids;
            let merged = &mut self.merge_scratch;
            for t_idx in 0..tasks.len() {
                merged.clear();
                for shard in &self.shards {
                    merged.extend_from_slice(shard.task_candidates(t_idx));
                }
                merged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for &(_, id) in merged.iter().take(k) {
                    let dense = live_ids.binary_search(&id).expect("candidate is live");
                    builder.add_edge(t_idx, dense);
                }
            }
        }
        let (graph, arena) = builder.build_recycling();
        self.edge_arena = arena;
        Ok(graph)
    }

    /// Closes the current period: the deterministic reduce step.
    ///
    /// Per-shard parallel closures run under [`catch_unwind`], so a
    /// panicking shard (index bug, poisoned cache, injected fault)
    /// surfaces as a typed [`ShardPanic`] instead of tearing down the
    /// sequencer thread or hanging producers; the caller poisons the
    /// service. The *strategy*'s own panics are deliberately **not**
    /// caught here — a strategy is caller-supplied code, and its panic
    /// propagates like any callback's (see `SequencerHandle::join`).
    fn run_tick(&mut self) -> Result<(), ShardPanic> {
        let t = self.period;
        // 1. Scheduled lifecycle transitions stage their churn.
        self.fire_scheduled(t);

        // 2. Materialize the period's task list in stream order.
        self.task_inputs.clear();
        self.task_inputs
            .extend(self.pending_tasks.iter().map(|task| TaskInput {
                origin: task.origin,
                distance: task.distance,
                cell: task.cell,
            }));
        self.outcome.issued_tasks += self.task_inputs.len() as u64;

        // 3. Parallel shard phase: apply staged churn, report live
        //    counts and radii. `collect` preserves shard-id order.
        let fault = match self.shard_fault {
            Some((shard, period)) if period == t => {
                self.shard_fault = None;
                Some(shard)
            }
            _ => None,
        };
        let stats: Vec<(usize, f64)> = par_shards(&mut self.shards, t, |i, shard| {
            if fault == Some(i as u32) {
                panic!("injected shard fault");
            }
            shard.apply_staged()
        })?;

        // 4. Shard-merged graph + global period view.
        let graph = self.build_graph(&stats)?;
        // Event-time telemetry, the same call the batch loop makes with
        // the same replay-contract-equal inputs (queued tasks, merged
        // live pool), so the histograms land bit-identical to
        // `Simulation::run` at any shard/thread/producer count.
        self.outcome.latency.record_period(
            self.task_inputs.len() as u64,
            self.worker_inputs.len() as u64,
        );
        let input = PeriodInput {
            grid: &self.grid,
            tasks: &self.task_inputs,
            workers: &self.worker_inputs,
            graph: &graph,
        };

        // 5. Price the period (the strategy's own rayon fan-out is
        //    bit-stable per the workspace invariant).
        // lint-allow(det-wallclock): pricing_secs is timing telemetry, excluded from deterministic_bits
        let start = Instant::now();
        let schedule = self.strategy.price_period(&input);
        self.outcome.pricing_secs += start.elapsed().as_secs_f64();

        // 6+7. Requesters decide and the market clears — literally the
        //    batch loop's code: `settle_period` is shared with
        //    `Simulation::run`, so the two cannot drift.
        let settlement = settle_period(
            &self.pending_tasks,
            &self.task_inputs,
            &schedule,
            &graph,
            &mut self.price_moments,
            &mut self.observations,
            &mut self.keep,
            &mut self.weights,
            &mut self.clearing,
        );
        self.outcome.accepted_tasks += settlement.accepted;
        self.outcome.clearing_secs += settlement.clearing_secs;
        self.outcome.total_revenue += settlement.revenue;
        self.outcome.revenue_per_period.push(settlement.revenue);

        // 8. Lifecycle for matched pairs, staged for the next tick.
        for (l, dense) in self.clearing.matched_pairs() {
            self.outcome.matched_tasks += 1;
            let task = &self.pending_tasks[l];
            self.outcome.matched_distance += task.distance;
            let id = self.live_ids[dense as usize];
            let record_shard = self.records[id as usize].shard as usize;
            match self.match_policy {
                MatchPolicy::Consume => {
                    self.records[id as usize].status = Status::Gone;
                    self.shards[record_shard].departures.push(id);
                }
                MatchPolicy::Relocate { speed } => {
                    let travel = (task.distance / speed).ceil().max(1.0) as u32;
                    let radius = self.shards[record_shard]
                        .cache
                        .worker(id)
                        .expect("matched worker is live")
                        .radius;
                    self.shards[record_shard].departures.push(id);
                    let busy_until = t.saturating_add(travel);
                    let record = &mut self.records[id as usize];
                    if busy_until < record.expires_at {
                        record.status = Status::Busy;
                        let input = WorkerInput::new(&self.grid, task.destination, radius);
                        self.schedule
                            .entry(busy_until)
                            .or_default()
                            .push(Timed::Release(id, input));
                    } else {
                        record.status = Status::Gone;
                    }
                }
            }
        }

        // 9. Feedback to the learning strategy, then advance the clock.
        self.strategy.observe(&self.observations);
        self.pending_tasks.clear();
        // Finalize the price moments into the outcome: moments only
        // change inside a tick, so refreshing them here keeps
        // `outcome_snapshot` a plain borrow at every observation point.
        self.outcome.mean_posted_price = self.price_moments.mean();
        self.outcome.posted_price_std = self.price_moments.population_std();
        self.period = t + 1;
        Ok(())
    }

    // ---- checkpoint serialization (see `crate::recovery`) ----

    /// Serializes the complete post-tick state as a flat word stream
    /// (floats as IEEE-754 bits). Taken at epoch boundaries only, when
    /// staged *arrivals* are empty by construction; staged departures
    /// (step 8 of the closing tick) and everything else the next tick
    /// reads are captured. The layout is private to this crate —
    /// [`crate::recovery`] is the reader.
    ///
    /// Shard-count agnosticism: per-worker shard assignment is **not**
    /// persisted; live workers and staged departures are re-routed
    /// through the restoring service's own router, so a checkpoint
    /// taken at 4 shards restores bit-identically into 1/2/8 shards.
    pub(crate) fn checkpoint_words(&self) -> Vec<u64> {
        // Dominated by the per-record and per-live-worker sections;
        // reserving up front avoids growth copies on ~MB snapshots.
        let live_total: usize = self.shards.iter().map(|s| s.cache.live_count()).sum();
        let mut w = Vec::with_capacity(64 + self.records.len() * 2 + live_total * 4);
        // -- validation header --
        w.push(self.grid.num_cells() as u64);
        w.push(self.k as u64);
        match self.match_policy {
            MatchPolicy::Consume => {
                w.push(0);
                w.push(0);
            }
            MatchPolicy::Relocate { speed } => {
                w.push(1);
                w.push(speed.to_bits());
            }
        }
        let name = self.strategy.name();
        w.push(name.len() as u64);
        w.extend(name.bytes().map(u64::from));
        w.push(u64::from(self.period));
        // -- lifecycle records --
        w.push(self.records.len() as u64);
        for r in &self.records {
            w.push(u64::from(r.expires_at));
            w.push(match r.status {
                Status::Available => 0,
                Status::Busy => 1,
                Status::Gone => 2,
            });
        }
        // -- live workers, global ascending id order --
        w.push(live_total as u64);
        let mut live: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.cache.live_ids().iter().copied())
            .collect();
        live.sort_unstable();
        for id in live {
            let shard = self.records[id as usize].shard as usize;
            let input = self.shards[shard]
                .cache
                .worker(id)
                .expect("live id is in its owning shard");
            w.push(u64::from(id));
            w.push(input.location.x.to_bits());
            w.push(input.location.y.to_bits());
            w.push(input.radius.to_bits());
        }
        // -- staged churn (arrivals empty at a boundary; departures =
        //    the closing tick's matched pairs) --
        let staged_arrivals: usize = self.shards.iter().map(|s| s.staged.len()).sum();
        debug_assert_eq!(staged_arrivals, 0, "checkpoint off an epoch boundary");
        w.push(
            self.shards
                .iter()
                .map(|s| s.departures.len())
                .sum::<usize>() as u64,
        );
        for shard in &self.shards {
            for &id in &shard.departures {
                w.push(u64::from(id));
            }
        }
        // -- timed schedule --
        w.push(self.schedule.len() as u64);
        for (&t, entries) in &self.schedule {
            w.push(u64::from(t));
            w.push(entries.len() as u64);
            for e in entries {
                match e {
                    Timed::Expire(id) => {
                        w.push(0);
                        w.push(u64::from(*id));
                    }
                    Timed::Release(id, input) => {
                        w.push(1);
                        w.push(u64::from(*id));
                        w.push(input.location.x.to_bits());
                        w.push(input.location.y.to_bits());
                        w.push(input.radius.to_bits());
                    }
                }
            }
        }
        // -- pending tasks (non-empty only if a checkpoint is forced
        //    mid-window; kept for completeness) --
        w.push(self.pending_tasks.len() as u64);
        for t in &self.pending_tasks {
            w.push(t.origin.x.to_bits());
            w.push(t.origin.y.to_bits());
            w.push(t.destination.x.to_bits());
            w.push(t.destination.y.to_bits());
            w.push(t.distance.to_bits());
            w.push(t.valuation.to_bits());
            w.push(t.cell.0 as u64);
        }
        // -- producer watermarks + serial counter --
        w.push(self.watermarks.len() as u64);
        for wm in &self.watermarks {
            match wm {
                None => {
                    w.push(0);
                    w.push(0);
                    w.push(0);
                }
                Some((epoch, seq)) => {
                    w.push(1);
                    w.push(*epoch);
                    w.push(*seq);
                }
            }
        }
        w.push(self.serial_seq);
        // -- outcome accumulator (wall-clock columns excluded: they are
        //    excluded from `deterministic_bits` and restart at zero) --
        w.push(self.outcome.total_revenue.to_bits());
        w.push(self.outcome.issued_tasks);
        w.push(self.outcome.accepted_tasks);
        w.push(self.outcome.matched_tasks);
        w.push(self.outcome.revenue_per_period.len() as u64);
        for r in &self.outcome.revenue_per_period {
            w.push(r.to_bits());
        }
        w.push(self.outcome.mean_posted_price.to_bits());
        w.push(self.outcome.posted_price_std.to_bits());
        w.push(self.outcome.matched_distance.to_bits());
        w.push(self.outcome.rejected_events);
        w.push(self.outcome.suppressed_duplicates);
        self.outcome.latency.extend_words(&mut w);
        let (count, mean_bits, m2_bits) = self.price_moments.to_raw();
        w.push(count);
        w.push(mean_bits);
        w.push(m2_bits);
        // -- strategy learning state --
        let mut strategy_words = Vec::new();
        self.strategy.save_state(&mut strategy_words);
        w.push(strategy_words.len() as u64);
        w.extend_from_slice(&strategy_words);
        w
    }

    /// Restores state written by [`ShardedService::checkpoint_words`]
    /// into this freshly constructed service. The service must have
    /// been built with the same grid, edge cap, match policy and
    /// strategy as the checkpointed one (validated against the header);
    /// shard count may differ freely.
    pub(crate) fn restore_from_words(&mut self, words: &[u64]) -> Result<(), &'static str> {
        let mut r = WordReader { words, pos: 0 };
        // -- validation header --
        if r.take()? != self.grid.num_cells() as u64 {
            return Err("checkpoint grid size mismatch");
        }
        if r.take()? != self.k as u64 {
            return Err("checkpoint edge-cap mismatch");
        }
        let (policy_tag, speed_bits) = (r.take()?, r.take()?);
        let policy_ok = match self.match_policy {
            MatchPolicy::Consume => policy_tag == 0,
            MatchPolicy::Relocate { speed } => policy_tag == 1 && speed_bits == speed.to_bits(),
        };
        if !policy_ok {
            return Err("checkpoint match-policy mismatch");
        }
        let name_len = r.take()? as usize;
        let name: Vec<u8> = (0..name_len)
            .map(|_| r.take().map(|w| w as u8))
            .collect::<Result<_, _>>()?;
        if name != self.strategy.name().as_bytes() {
            return Err("checkpoint strategy mismatch");
        }
        self.period = r.take()? as u32;
        // -- lifecycle records --
        let n_records = r.take()? as usize;
        self.records.clear();
        self.records.reserve(n_records);
        for _ in 0..n_records {
            let expires_at = r.take()? as u32;
            let status = match r.take()? {
                0 => Status::Available,
                1 => Status::Busy,
                2 => Status::Gone,
                _ => return Err("checkpoint has invalid worker status"),
            };
            self.records.push(Record {
                expires_at,
                status,
                shard: 0,
                staged: SlotHandle::DEAD,
            });
        }
        // -- live workers: re-route by cell into this service's shards
        //    and rebuild each shard's cache with one batch apply (the
        //    PR 3 cache contract makes query behavior depend only on
        //    the live *set*, so this equals the original build) --
        let live_total = r.take()? as usize;
        let mut per_shard: Vec<Vec<(u32, WorkerInput)>> = vec![Vec::new(); self.shards.len()];
        for _ in 0..live_total {
            let id = r.take()? as u32;
            let x = r.take_f64()?;
            let y = r.take_f64()?;
            let radius = r.take_f64()?;
            let input = WorkerInput::new(&self.grid, Point::new(x, y), radius);
            let shard = self.router.shard_of(input.cell) as u32;
            self.records
                .get_mut(id as usize)
                .ok_or("checkpoint live id out of range")?
                .shard = shard;
            per_shard[shard as usize].push((id, input));
        }
        for (shard, arrivals) in self.shards.iter_mut().zip(&per_shard) {
            shard.cache.apply(WorkerChurn {
                arrivals,
                departures: &[],
                relocations: &[],
            });
        }
        // -- staged departures: re-route via the live records --
        let n_departures = r.take()? as usize;
        for _ in 0..n_departures {
            let id = r.take()? as u32;
            let shard = self
                .records
                .get(id as usize)
                .ok_or("checkpoint departure id out of range")?
                .shard as usize;
            self.shards[shard].departures.push(id);
        }
        // -- timed schedule --
        let n_keys = r.take()? as usize;
        self.schedule.clear();
        for _ in 0..n_keys {
            let t = r.take()? as u32;
            let n_entries = r.take()? as usize;
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                entries.push(match r.take()? {
                    0 => Timed::Expire(r.take()? as u32),
                    1 => {
                        let id = r.take()? as u32;
                        let x = r.take_f64()?;
                        let y = r.take_f64()?;
                        let radius = r.take_f64()?;
                        Timed::Release(id, WorkerInput::new(&self.grid, Point::new(x, y), radius))
                    }
                    _ => return Err("checkpoint has invalid schedule entry"),
                });
            }
            self.schedule.insert(t, entries);
        }
        // -- pending tasks --
        let n_pending = r.take()? as usize;
        self.pending_tasks.clear();
        for _ in 0..n_pending {
            self.pending_tasks.push(GroundTask {
                origin: Point::new(r.take_f64()?, r.take_f64()?),
                destination: Point::new(r.take_f64()?, r.take_f64()?),
                distance: r.take_f64()?,
                valuation: r.take_f64()?,
                cell: maps_spatial::CellId(r.take()? as u32),
            });
        }
        // -- watermarks + serial counter --
        let n_watermarks = r.take()? as usize;
        self.watermarks.clear();
        for _ in 0..n_watermarks {
            let flag = r.take()?;
            let epoch = r.take()?;
            let seq = r.take()?;
            self.watermarks.push((flag == 1).then_some((epoch, seq)));
        }
        self.serial_seq = r.take()?;
        // -- outcome accumulator --
        self.outcome.total_revenue = r.take_f64()?;
        self.outcome.issued_tasks = r.take()?;
        self.outcome.accepted_tasks = r.take()?;
        self.outcome.matched_tasks = r.take()?;
        let n_periods = r.take()? as usize;
        self.outcome.revenue_per_period.clear();
        for _ in 0..n_periods {
            self.outcome.revenue_per_period.push(r.take_f64()?);
        }
        self.outcome.mean_posted_price = r.take_f64()?;
        self.outcome.posted_price_std = r.take_f64()?;
        self.outcome.matched_distance = r.take_f64()?;
        self.outcome.rejected_events = r.take()?;
        self.outcome.suppressed_duplicates = r.take()?;
        self.outcome.latency = LatencyTelemetry::from_words(r.take_n(LatencyTelemetry::WORDS)?)
            .ok_or("checkpoint latency telemetry corrupt")?;
        let (count, mean_bits, m2_bits) = (r.take()?, r.take()?, r.take()?);
        self.price_moments = RunningMoments::from_raw(count, mean_bits, m2_bits);
        // -- strategy learning state --
        let n_strategy = r.take()? as usize;
        let state_words = r.rest();
        if state_words.len() != n_strategy {
            return Err("checkpoint strategy state length mismatch");
        }
        let mut state = maps_core::StateWords::new(state_words);
        self.strategy
            .load_state(&mut state)
            .map_err(|_| "checkpoint strategy state rejected")?;
        if state.remaining() != 0 {
            return Err("checkpoint strategy state has trailing words");
        }
        Ok(())
    }
}

/// Bounds-checked cursor over a checkpoint word stream.
struct WordReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordReader<'a> {
    fn take(&mut self) -> Result<u64, &'static str> {
        let w = *self.words.get(self.pos).ok_or("checkpoint truncated")?;
        self.pos += 1;
        Ok(w)
    }

    fn take_f64(&mut self) -> Result<f64, &'static str> {
        self.take().map(f64::from_bits)
    }

    fn take_n(&mut self, n: usize) -> Result<&'a [u64], &'static str> {
        let end = self.pos.checked_add(n).ok_or("checkpoint truncated")?;
        let s = self
            .words
            .get(self.pos..end)
            .ok_or("checkpoint truncated")?;
        self.pos = end;
        Ok(s)
    }

    fn rest(&self) -> &'a [u64] {
        &self.words[self.pos..]
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("strategy", &self.outcome.strategy)
            .field("shards", &self.shards.len())
            .field("period", &self.period)
            .field("admitted", &self.records.len())
            .field("live", &self.live_workers())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_spatial::{Point, Rect};

    fn grid() -> GridSpec {
        GridSpec::square(Rect::square(10.0), 2)
    }

    fn config(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }

    fn worker(x: f64, y: f64, duration: u32) -> GroundWorker {
        GroundWorker {
            location: Point::new(x, y),
            radius: 4.0,
            duration,
        }
    }

    fn task(x: f64, y: f64) -> GroundTask {
        let grid = grid();
        let origin = Point::new(x, y);
        GroundTask {
            origin,
            destination: Point::new(9.0, 9.0),
            distance: 1.0,
            valuation: 4.9, // accepts any ladder price
            cell: grid.cell_of(origin),
        }
    }

    fn service(shards: usize, policy: MatchPolicy) -> ShardedService {
        ShardedService::new(grid(), policy, StrategyKind::BaseP, config(shards))
    }

    #[test]
    fn arrivals_route_by_cell_and_expire_on_schedule() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, 2),
        });
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(9.0, 9.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 2);
        assert_eq!(svc.admitted_workers(), 2);
        // Different cells on a 2-shard router: one worker per shard.
        assert_eq!(svc.shards[0].cache.live_count(), 1);
        assert_eq!(svc.shards[1].cache.live_count(), 1);
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 2, "duration 2 spans periods 0–1");
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 1, "expiry fired at period 2");
    }

    #[test]
    fn zero_duration_arrival_takes_an_id_but_never_lives() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, 0),
        });
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(2.0, 2.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.admitted_workers(), 2);
        assert_eq!(svc.live_workers(), 1);
    }

    #[test]
    fn depart_before_first_tick_cancels_the_staged_arrival() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::WorkerDepart { id: 0 });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0);
        // Departing again — or a stale id the service never admitted —
        // is a no-op, not a panic: one bad client event must not take
        // the stream down.
        svc.push(ServiceEvent::WorkerDepart { id: 0 });
        svc.push(ServiceEvent::WorkerDepart { id: 42 });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0);
    }

    #[test]
    fn explicit_departure_after_ticks_leaves_at_next_tick() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 1);
        svc.push(ServiceEvent::WorkerDepart { id: 0 });
        assert_eq!(svc.live_workers(), 1, "staged until the tick");
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0);
    }

    #[test]
    fn matched_consume_worker_is_gone_next_period() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::TaskRequest {
            task: task(1.5, 1.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        let out = svc.outcome();
        assert_eq!(out.issued_tasks, 1);
        assert_eq!(out.matched_tasks, 1);
        assert!(out.total_revenue > 0.0);
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0, "consumed worker departed");
    }

    #[test]
    fn relocation_migrates_worker_to_its_new_shard() {
        // Task destination (9,9) lies in cell 3 (shard 1 of 2); the
        // worker starts at (1,1), cell 0 (shard 0). distance 1 at speed
        // 1 → busy 1 period, back in period 1... released at period 1.
        let mut svc = service(2, MatchPolicy::Relocate { speed: 1.0 });
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::TaskRequest {
            task: task(1.5, 1.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.outcome().matched_tasks, 1);
        svc.push(ServiceEvent::PeriodTick); // release fires at period 1
        assert_eq!(svc.live_workers(), 1);
        assert_eq!(svc.shards[0].cache.live_count(), 0, "left shard 0");
        assert_eq!(svc.shards[1].cache.live_count(), 1, "entered shard 1");
        assert_eq!(
            svc.shards[1].cache.worker(0).unwrap().location,
            Point::new(9.0, 9.0)
        );
    }

    /// Non-finite geometry/economics is refused at admission — before
    /// any state (in particular the admission-id counter) is touched.
    /// Without this, `Grid::cell_of` files NaN under a boundary cell
    /// and pricing is corrupted invisibly; a zero-distance task would
    /// even panic the tick reducer (`TaskInput::new`).
    #[test]
    fn non_finite_events_are_rejected_at_admission() {
        let mut svc = service(2, MatchPolicy::Consume);
        let rejection = |result: Result<(), ServiceError>| match result {
            Err(ServiceError::Rejected(r)) => r,
            other => panic!("expected a rejection, got {other:?}"),
        };
        let mut w = worker(1.0, 1.0, u32::MAX);
        w.location = Point::new(f64::NAN, 1.0);
        assert_eq!(
            rejection(svc.try_push(ServiceEvent::WorkerArrive { worker: w })),
            EventRejection::NonFiniteWorkerLocation
        );
        assert_eq!(svc.admitted_workers(), 0, "no admission id consumed");

        let mut w = worker(1.0, 1.0, u32::MAX);
        w.radius = f64::INFINITY;
        assert_eq!(
            rejection(svc.try_push(ServiceEvent::WorkerArrive { worker: w })),
            EventRejection::InvalidWorkerRadius
        );

        let mut t = task(1.5, 1.0);
        t.origin = Point::new(1.0, f64::NAN);
        assert_eq!(
            rejection(svc.try_push(ServiceEvent::TaskRequest { task: t })),
            EventRejection::NonFiniteTaskEndpoint
        );
        let mut t = task(1.5, 1.0);
        t.distance = 0.0;
        assert_eq!(
            rejection(svc.try_push(ServiceEvent::TaskRequest { task: t })),
            EventRejection::InvalidTaskDistance
        );
        let mut t = task(1.5, 1.0);
        t.valuation = f64::NAN;
        assert_eq!(
            rejection(svc.try_push(ServiceEvent::TaskRequest { task: t })),
            EventRejection::NonFiniteTaskValuation
        );
        assert_eq!(svc.rejected_events(), 5);
        assert_eq!(svc.outcome_snapshot().rejected_events, 5);

        // The stream keeps flowing: valid events after the rejects work.
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::TaskRequest {
            task: task(1.5, 1.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        let out = svc.outcome_snapshot();
        assert_eq!(out.issued_tasks, 1, "rejected tasks were never issued");
        assert_eq!(out.matched_tasks, 1);
        assert_eq!(svc.admitted_workers(), 1);
    }

    /// Regression for the O(n²) same-window cancellation: departing a
    /// staged arrival used to `position()`-scan the whole staging
    /// buffer. Arriving n workers and departing them newest-first put
    /// every target at the end of the scan — ~n²/2 tuple compares per
    /// window (minutes at this size in a debug test run). With the
    /// id→slot staging map the window is O(n).
    #[test]
    fn high_churn_same_window_cancellation_is_linear() {
        let n: u32 = 50_000;
        let start = Instant::now();
        let mut svc = service(2, MatchPolicy::Consume);
        for i in 0..n {
            svc.push(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + (i % 8) as f64, 1.0, u32::MAX),
            });
        }
        for id in (0..n).rev() {
            svc.push(ServiceEvent::WorkerDepart { id });
        }
        // One survivor proves cancellation didn't eat the wrong slots.
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.admitted_workers(), n as usize + 1);
        assert_eq!(svc.live_workers(), 1);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "same-window cancellation took {:?} for {n} pairs — quadratic again?",
            start.elapsed()
        );
    }

    /// The O(1) snapshot view must agree with the owned clone at every
    /// observation point (including mid-stream, between ticks), and
    /// `into_outcome` must hand back the same final value.
    #[test]
    fn snapshot_borrow_matches_cloned_outcome() {
        let mut svc = service(2, MatchPolicy::Consume);
        assert_eq!(svc.outcome_snapshot(), &svc.outcome(), "pre-first-tick");
        for i in 0..3u32 {
            svc.push(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + i as f64, 1.0, u32::MAX),
            });
            svc.push(ServiceEvent::TaskRequest {
                task: task(1.5 + i as f64, 1.0),
            });
            assert_eq!(svc.outcome_snapshot(), &svc.outcome(), "mid-window");
            svc.push(ServiceEvent::PeriodTick);
            let snapshot = svc.outcome_snapshot();
            assert_eq!(snapshot, &svc.outcome(), "post-tick");
            assert!(snapshot.mean_posted_price > 0.0, "moments are finalized");
        }
        let bits = svc.outcome_snapshot().deterministic_bits();
        assert_eq!(svc.into_outcome().deterministic_bits(), bits);
    }

    /// An injected shard panic must surface as a typed
    /// [`ServiceError::Poisoned`] from the tick — and poison every
    /// subsequent push — rather than unwinding through the caller.
    #[test]
    fn injected_shard_panic_poisons_with_typed_error() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.inject_shard_fault(1, 0);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(9.0, 9.0, u32::MAX),
        });
        let err = svc.try_push(ServiceEvent::PeriodTick).unwrap_err();
        let ServiceError::Poisoned(panic) = err else {
            panic!("expected Poisoned, got {err:?}");
        };
        assert_eq!(panic.shard, 1);
        assert_eq!(panic.period, 0);
        assert_eq!(panic.message, "injected shard fault");
        assert_eq!(svc.poisoned_by(), Some(&panic));
        // Poisoned services refuse everything, loudly.
        assert!(matches!(
            svc.try_push(ServiceEvent::WorkerArrive {
                worker: worker(1.0, 1.0, u32::MAX)
            }),
            Err(ServiceError::Poisoned(_))
        ));
    }

    /// At-least-once resends at or below a producer's `(epoch, seq)`
    /// watermark are suppressed idempotently and audited.
    #[test]
    fn duplicate_resends_are_suppressed_by_watermark() {
        let mut svc = service(2, MatchPolicy::Consume);
        let arrive = ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        };
        svc.push_stamped(0, 0, 0, arrive).unwrap();
        svc.push_stamped(0, 0, 1, arrive).unwrap();
        assert_eq!(svc.admitted_workers(), 2);
        // Re-delivery of both, plus a stale lower seq: all suppressed.
        svc.push_stamped(0, 0, 0, arrive).unwrap();
        svc.push_stamped(0, 0, 1, arrive).unwrap();
        assert_eq!(svc.admitted_workers(), 2, "duplicates not re-admitted");
        assert_eq!(svc.suppressed_duplicates(), 2);
        assert_eq!(svc.outcome_snapshot().suppressed_duplicates, 2);
        // A fresh seq on the same lane is admitted.
        svc.push_stamped(0, 0, 2, arrive).unwrap();
        assert_eq!(svc.admitted_workers(), 3);
        // Other lanes have independent watermarks.
        svc.push_stamped(3, 0, 0, arrive).unwrap();
        assert_eq!(svc.admitted_workers(), 4);
    }

    /// Checkpoint words must capture the *complete* post-tick state: a
    /// restored service continues bit-identically to the original —
    /// including staged matched-pair departures, the timed schedule,
    /// busy relocations and learned strategy state — even when restored
    /// into a different shard count.
    #[test]
    fn checkpoint_words_restore_bit_identically() {
        let drive = |svc: &mut ShardedService, from: u32, to: u32| {
            for t in from..to {
                svc.push(ServiceEvent::WorkerArrive {
                    worker: worker(1.0 + (t % 7) as f64, 1.0 + (t % 3) as f64, 3),
                });
                svc.push(ServiceEvent::WorkerArrive {
                    worker: worker(8.0 - (t % 5) as f64, 8.0, u32::MAX),
                });
                svc.push(ServiceEvent::TaskRequest {
                    task: task(1.5 + (t % 4) as f64, 1.0),
                });
                if t % 3 == 2 {
                    svc.push(ServiceEvent::WorkerDepart { id: t });
                }
                svc.push(ServiceEvent::PeriodTick);
            }
        };
        for policy in [MatchPolicy::Consume, MatchPolicy::Relocate { speed: 0.5 }] {
            let mut reference = service(2, policy);
            drive(&mut reference, 0, 4);
            let words = reference.checkpoint_words();
            drive(&mut reference, 4, 8);
            let expected = reference.into_outcome().deterministic_bits();
            for shards in [1usize, 2, 4] {
                let mut restored = service(shards, policy);
                restored.restore_from_words(&words).unwrap();
                assert_eq!(restored.periods_served(), 4);
                drive(&mut restored, 4, 8);
                assert_eq!(
                    restored.into_outcome().deterministic_bits(),
                    expected,
                    "restore into {shards} shards diverged ({policy:?})"
                );
            }
        }
    }

    /// The validation header refuses checkpoints from a differently
    /// configured service instead of restoring garbage.
    #[test]
    fn checkpoint_header_mismatches_are_rejected() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::PeriodTick);
        let words = svc.checkpoint_words();
        let mut other_policy = service(2, MatchPolicy::Relocate { speed: 1.0 });
        assert!(other_policy.restore_from_words(&words).is_err());
        let mut other_strategy =
            ShardedService::new(grid(), MatchPolicy::Consume, StrategyKind::Maps, config(2));
        assert!(other_strategy.restore_from_words(&words).is_err());
        let mut truncated = service(2, MatchPolicy::Consume);
        assert!(truncated
            .restore_from_words(&words[..words.len() - 1])
            .is_err());
    }

    #[test]
    fn outcome_snapshot_is_cumulative_and_consistent() {
        let mut svc = service(4, MatchPolicy::Consume);
        for i in 0..6u32 {
            svc.push(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + i as f64, 1.0, u32::MAX),
            });
        }
        for t in 0..4 {
            svc.push(ServiceEvent::TaskRequest {
                task: task(1.0 + t as f64, 1.0),
            });
            svc.push(ServiceEvent::PeriodTick);
            let out = svc.outcome();
            assert!(out.is_consistent());
            assert_eq!(out.issued_tasks, t + 1);
            assert_eq!(out.revenue_per_period.len(), (t + 1) as usize);
        }
        assert_eq!(svc.periods_served(), 4);
    }
}
