//! The sharded service engine: event ingestion, per-shard state, and
//! the deterministic tick reducer.
//!
//! See the crate docs for the architecture picture. The inline comments
//! here focus on the invariants each step must preserve for the
//! replay-equals-batch contract (`replay` module) to hold bitwise.

use maps_core::{
    paper_default_strategy, Observation, PeriodGraphCache, PeriodInput, PricingStrategy,
    StrategyKind, TaskInput, WorkerChurn, WorkerInput,
};
use maps_matching::{BipartiteGraph, BipartiteGraphBuilder, MatchScratch};
use maps_simulator::{
    settle_period, GroundTask, GroundWorker, MatchPolicy, Outcome, RunningMoments,
};
use maps_spatial::{BucketIndex, GridSpec, Point, ShardMap};
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// One event of the online stream.
#[derive(Debug, Clone, Copy)]
pub enum ServiceEvent {
    /// A worker comes online. Ids are assigned by the service in stream
    /// order (global admission order — the same numbering the batch
    /// simulator uses), and the worker's `duration` schedules its own
    /// expiry; send [`ServiceEvent::WorkerDepart`] for earlier exits.
    WorkerArrive {
        /// Location, range radius and availability window.
        worker: GroundWorker,
    },
    /// The worker with the given admission id leaves the platform now
    /// (takes effect at the next tick, like all staged churn). A no-op
    /// for workers already gone or ids never admitted.
    WorkerDepart {
        /// Admission id (position in the arrival stream).
        id: u32,
    },
    /// A requester submits a task for the current period. Carries the
    /// ground-truth task because the service also simulates the
    /// requester's accept/reject decision against the posted price.
    TaskRequest {
        /// The task, including its private valuation.
        task: GroundTask,
    },
    /// Closes the current period: applies staged churn, prices, clears
    /// the market and advances the period counter.
    PeriodTick,
}

/// Why the service refused to admit an event
/// ([`ServiceEvent::validate`]).
///
/// Every variant is a *client* data error: the event references
/// geometry or economics the market cannot represent. The service drops
/// such events (counting them in
/// [`ShardedService::rejected_events`]) rather than panicking — one bad
/// client event must not take the stream down — and rather than
/// admitting them: a NaN coordinate, for instance, has no grid cell
/// (`Grid::cell_of` would silently file it under a boundary cell) and
/// would corrupt per-cell pricing state invisibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventRejection {
    /// Worker location has a non-finite coordinate.
    NonFiniteWorkerLocation,
    /// Worker range radius is NaN, infinite or negative.
    InvalidWorkerRadius,
    /// Task origin or destination has a non-finite coordinate.
    NonFiniteTaskEndpoint,
    /// Task travel distance is NaN, infinite, zero or negative.
    InvalidTaskDistance,
    /// Task valuation is NaN or infinite.
    NonFiniteTaskValuation,
}

impl std::fmt::Display for EventRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EventRejection::NonFiniteWorkerLocation => "non-finite worker location",
            EventRejection::InvalidWorkerRadius => "invalid worker radius",
            EventRejection::NonFiniteTaskEndpoint => "non-finite task origin/destination",
            EventRejection::InvalidTaskDistance => "invalid task travel distance",
            EventRejection::NonFiniteTaskValuation => "non-finite task valuation",
        })
    }
}

impl std::error::Error for EventRejection {}

impl ServiceEvent {
    /// Admission-time validation: checks that the event's geometry and
    /// economics are representable before any state is touched.
    ///
    /// `WorkerDepart` and `PeriodTick` are always valid (a stale or
    /// unknown departure id is a semantic no-op, not a data error).
    pub fn validate(&self) -> Result<(), EventRejection> {
        let finite = |p: Point| p.x.is_finite() && p.y.is_finite();
        match self {
            ServiceEvent::WorkerArrive { worker } => {
                if !finite(worker.location) {
                    return Err(EventRejection::NonFiniteWorkerLocation);
                }
                if !(worker.radius.is_finite() && worker.radius >= 0.0) {
                    return Err(EventRejection::InvalidWorkerRadius);
                }
                Ok(())
            }
            ServiceEvent::TaskRequest { task } => {
                if !finite(task.origin) || !finite(task.destination) {
                    return Err(EventRejection::NonFiniteTaskEndpoint);
                }
                if !(task.distance.is_finite() && task.distance > 0.0) {
                    return Err(EventRejection::InvalidTaskDistance);
                }
                if !task.valuation.is_finite() {
                    return Err(EventRejection::NonFiniteTaskValuation);
                }
                Ok(())
            }
            ServiceEvent::WorkerDepart { .. } | ServiceEvent::PeriodTick => Ok(()),
        }
    }
}

/// Configuration of a [`ShardedService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shards (≥ 1). Any value yields bit-identical outcomes;
    /// it only controls how the per-tick spatial work is partitioned.
    pub shards: usize,
    /// Per-task edge cap of the period graph (the batch simulator's
    /// [`maps_simulator::SimOptions::max_edges_per_task`]).
    pub max_edges_per_task: usize,
    /// Sizing hint for the per-shard spatial indexes.
    pub expected_workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let sim = maps_simulator::SimOptions::default();
        Self {
            shards: 4,
            max_edges_per_task: sim.max_edges_per_task,
            expected_workers: 1024,
        }
    }
}

/// Where a worker currently is in its lifecycle (mirrors the batch
/// simulator's event-queue engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// In its owning shard's live set — can be matched.
    Available,
    /// Matched under the relocate policy; re-enters at its scheduled
    /// release.
    Busy,
    /// Left permanently (consumed, expired, departed).
    Gone,
}

/// Global per-worker record. The spatial state lives in the owning
/// shard's cache; this is the routing + lifecycle view.
#[derive(Debug, Clone, Copy)]
struct Record {
    /// First period in which the worker no longer exists.
    expires_at: u32,
    status: Status,
    /// Shard currently owning the worker's location. Updated when a
    /// relocation release lands the worker in another shard's cells.
    shard: u32,
}

/// A scheduled lifecycle transition, fired at the start of its tick.
#[derive(Debug, Clone, Copy)]
enum Timed {
    /// The worker's availability window ends this period.
    Expire(u32),
    /// A busy worker re-enters this period at its relocation target.
    Release(u32, WorkerInput),
}

/// Tombstone id marking a staged arrival cancelled by a same-window
/// departure. Never collides with a real id: admission ids are assigned
/// sequentially and a service would run out of memory long before
/// admitting 2³² − 1 workers.
const CANCELLED: u32 = u32::MAX;

/// One shard: the spatial state for its cells plus the churn staged
/// since the last tick. All mutation between ticks is staging; the
/// cache is only touched inside the tick's parallel phases, which also
/// fill the per-tick scratch buffers below (reused across the stream,
/// so the hot path stops allocating once warm).
#[derive(Debug)]
struct Shard {
    cache: PeriodGraphCache,
    arrivals: Vec<(u32, WorkerInput)>,
    /// id → slot in `arrivals` for every *live* staged arrival, so a
    /// same-window departure cancels in O(1) instead of scanning the
    /// staging buffer (which is O(n²) over a high-churn inter-tick
    /// window — a real stall under concurrent ingestion, where whole
    /// epochs of arrivals are staged before each barrier tick).
    staged: HashMap<u32, u32>,
    departures: Vec<u32>,
    /// Capped path: this tick's candidate lists, flattened;
    /// `candidate_starts[t]..candidate_starts[t+1]` indexes task `t`'s.
    candidates: Vec<(f64, u32)>,
    candidate_starts: Vec<u32>,
    /// Uncapped fallback: this tick's `(task, worker-id)` edge slice.
    edges: Vec<(u32, u32)>,
    /// Per-query scratch for the k-nearest candidate queries.
    query: Vec<(f64, u32)>,
}

impl Shard {
    fn new(cache: PeriodGraphCache) -> Self {
        Self {
            cache,
            arrivals: Vec::new(),
            staged: HashMap::new(),
            departures: Vec::new(),
            candidates: Vec::new(),
            candidate_starts: Vec::new(),
            edges: Vec::new(),
            query: Vec::new(),
        }
    }

    /// Stages an arrival, recording its slot for O(1) cancellation.
    fn stage_arrival(&mut self, id: u32, input: WorkerInput) {
        self.staged.insert(id, self.arrivals.len() as u32);
        self.arrivals.push((id, input));
    }

    /// Cancels a staged arrival by tombstoning its slot (slots never
    /// move, so the map stays valid). Returns whether `id` was staged.
    fn cancel_staged(&mut self, id: u32) -> bool {
        match self.staged.remove(&id) {
            Some(slot) => {
                debug_assert_eq!(self.arrivals[slot as usize].0, id, "stale staging slot");
                self.arrivals[slot as usize].0 = CANCELLED;
                true
            }
            None => false,
        }
    }

    /// Applies the staged churn and reports `(live_count, max_radius)`
    /// for the global reduction. Pure per-shard work: safe to run on
    /// any thread.
    fn apply_staged(&mut self) -> (usize, f64) {
        // Drop the tombstoned slots before the cache sees the batch
        // (O(staged) once per tick — amortized O(1) per event).
        self.arrivals.retain(|&(id, _)| id != CANCELLED);
        self.staged.clear();
        self.cache.apply(WorkerChurn {
            arrivals: &self.arrivals,
            departures: &self.departures,
            relocations: &[],
        });
        self.arrivals.clear();
        self.departures.clear();
        (self.cache.live_count(), self.cache.max_live_radius())
    }

    /// Capped path: answers every task's k-nearest query against this
    /// shard's index into the reused flat buffers.
    fn collect_candidates(&mut self, tasks: &[TaskInput], max_radius: f64, k: usize) {
        self.candidates.clear();
        self.candidate_starts.clear();
        self.candidate_starts.reserve(tasks.len() + 1);
        self.candidate_starts.push(0);
        for task in tasks {
            self.cache
                .k_nearest_candidates_into(task.origin, max_radius, k, &mut self.query);
            self.candidates.extend_from_slice(&self.query);
            self.candidate_starts.push(self.candidates.len() as u32);
        }
    }

    /// This tick's candidates for task `t_idx` (after
    /// [`Shard::collect_candidates`]), sorted by `(distance, id)`.
    fn task_candidates(&self, t_idx: usize) -> &[(f64, u32)] {
        let lo = self.candidate_starts[t_idx] as usize;
        let hi = self.candidate_starts[t_idx + 1] as usize;
        &self.candidates[lo..hi]
    }

    /// Uncapped fallback: enumerates this shard's slice of the full
    /// edge set into the reused buffer.
    fn collect_edges(&mut self, task_index: &BucketIndex<u32>) {
        self.edges.clear();
        let edges = &mut self.edges;
        self.cache
            .for_each_task_edge(task_index, |t_idx, id| edges.push((t_idx, id)));
    }
}

/// The grid-sharded online pricing engine.
///
/// Feed it [`ServiceEvent`]s via [`ShardedService::push`]; read the
/// accumulated [`Outcome`] any time via [`ShardedService::outcome`] (or
/// consume it with [`ShardedService::into_outcome`]).
pub struct ShardedService {
    grid: GridSpec,
    router: ShardMap,
    match_policy: MatchPolicy,
    strategy: Box<dyn PricingStrategy>,
    shards: Vec<Shard>,
    /// Per-worker lifecycle records, indexed by admission id.
    records: Vec<Record>,
    /// Scheduled expiries/releases, keyed by the period they fire in.
    /// A `BTreeMap` (not per-period buckets) because the service has no
    /// horizon: a `u32::MAX` expiry must be schedulable without
    /// allocating 2³² buckets — it simply never fires.
    schedule: BTreeMap<u32, Vec<Timed>>,
    /// Tasks submitted since the last tick, in stream order (the order
    /// pricing feedback and price moments are fed in — load-bearing for
    /// bit-identity with the batch loop).
    pending_tasks: Vec<GroundTask>,
    /// Current period (number of ticks processed so far).
    period: u32,
    k: usize,
    // ---- tick scratch, reused across the stream ----
    task_inputs: Vec<TaskInput>,
    live_ids: Vec<u32>,
    worker_inputs: Vec<WorkerInput>,
    observations: Vec<Observation>,
    keep: Vec<bool>,
    weights: Vec<f64>,
    clearing: MatchScratch,
    /// Per-task cross-shard candidate merge scratch (capped path).
    merge_scratch: Vec<(f64, u32)>,
    /// Recycled edge arena threaded through every graph build.
    edge_arena: Vec<(u32, u32)>,
    // ---- outcome accumulation ----
    /// Kept fully finalized after every tick (price moments included),
    /// so observing the live service is a borrow, not a clone.
    outcome: Outcome,
    price_moments: RunningMoments,
    /// Events dropped by admission validation ([`ServiceEvent::validate`]).
    rejected_events: u64,
}

impl ShardedService {
    /// A service for one of the five paper strategies with paper-default
    /// parameters (same factory as the batch simulator).
    pub fn new(
        grid: GridSpec,
        match_policy: MatchPolicy,
        kind: StrategyKind,
        config: ServiceConfig,
    ) -> Self {
        Self::with_strategy(
            grid,
            match_policy,
            paper_default_strategy(kind, grid.num_cells()),
            config,
        )
    }

    /// A service around a custom strategy instance.
    pub fn with_strategy(
        grid: GridSpec,
        match_policy: MatchPolicy,
        strategy: Box<dyn PricingStrategy>,
        config: ServiceConfig,
    ) -> Self {
        let router = ShardMap::new(config.shards);
        let per_shard = config.expected_workers.div_ceil(config.shards).max(16);
        let shards = (0..config.shards)
            .map(|_| Shard::new(PeriodGraphCache::new(&grid, per_shard)))
            .collect();
        let outcome = Outcome {
            strategy: strategy.name().to_string(),
            total_revenue: 0.0,
            issued_tasks: 0,
            accepted_tasks: 0,
            matched_tasks: 0,
            pricing_secs: 0.0,
            clearing_secs: 0.0,
            calibration_secs: 0.0,
            peak_memory_mib: None,
            revenue_per_period: Vec::new(),
            mean_posted_price: 0.0,
            posted_price_std: 0.0,
            matched_distance: 0.0,
        };
        Self {
            grid,
            router,
            match_policy,
            strategy,
            shards,
            records: Vec::new(),
            schedule: BTreeMap::new(),
            pending_tasks: Vec::new(),
            period: 0,
            k: config.max_edges_per_task,
            task_inputs: Vec::new(),
            live_ids: Vec::new(),
            worker_inputs: Vec::new(),
            observations: Vec::new(),
            keep: Vec::new(),
            weights: Vec::new(),
            clearing: MatchScratch::new(),
            merge_scratch: Vec::new(),
            edge_arena: Vec::new(),
            outcome,
            price_moments: RunningMoments::new(),
            rejected_events: 0,
        }
    }

    /// Runs the strategy's one-off Algorithm-1 calibration against
    /// `probe` (before the first tick, like the batch simulator).
    pub fn calibrate(&mut self, probe: &mut dyn maps_core::DemandProbe) {
        let start = Instant::now();
        self.strategy.calibrate(probe);
        self.outcome.calibration_secs += start.elapsed().as_secs_f64();
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Periods closed so far.
    pub fn periods_served(&self) -> u32 {
        self.period
    }

    /// Workers admitted over the service's lifetime.
    pub fn admitted_workers(&self) -> usize {
        self.records.len()
    }

    /// Workers currently in the live (matchable) set, summed over
    /// shards. Staged churn applies at the next tick.
    pub fn live_workers(&self) -> usize {
        self.shards.iter().map(|s| s.cache.live_count()).sum()
    }

    /// Ingests one event, dropping it (and counting it in
    /// [`ShardedService::rejected_events`]) if admission validation
    /// refuses it — the fire-and-forget shape of
    /// [`ShardedService::try_push`]. Arrivals, departures and task
    /// requests stage state; [`ServiceEvent::PeriodTick`] closes the
    /// period.
    pub fn push(&mut self, event: ServiceEvent) {
        let _ = self.try_push(event);
    }

    /// Ingests one event, reporting *why* it was refused when admission
    /// validation rejects it. A rejected event mutates nothing (in
    /// particular, a rejected `WorkerArrive` does **not** consume an
    /// admission id) but is counted in
    /// [`ShardedService::rejected_events`].
    pub fn try_push(&mut self, event: ServiceEvent) -> Result<(), EventRejection> {
        if let Err(rejection) = event.validate() {
            self.rejected_events += 1;
            return Err(rejection);
        }
        match event {
            ServiceEvent::WorkerArrive { worker } => self.worker_arrive(worker),
            ServiceEvent::WorkerDepart { id } => self.worker_depart(id),
            ServiceEvent::TaskRequest { task } => self.pending_tasks.push(task),
            ServiceEvent::PeriodTick => self.run_tick(),
        }
        Ok(())
    }

    /// Events dropped by admission validation over the service's
    /// lifetime (non-finite locations, NaN valuations, …).
    pub fn rejected_events(&self) -> u64 {
        self.rejected_events
    }

    /// Borrowing snapshot of the outcome accumulated so far — **O(1)**,
    /// no allocation: the reducer keeps every field (price moments
    /// included) finalized at each tick, so monitoring a live service
    /// mid-stream costs a borrow instead of cloning the O(periods)
    /// `revenue_per_period` series the way [`ShardedService::outcome`]
    /// does.
    pub fn outcome_snapshot(&self) -> &Outcome {
        &self.outcome
    }

    /// The outcome accumulated so far, as an owned clone (O(periods)).
    /// Prefer [`ShardedService::outcome_snapshot`] for repeated
    /// mid-stream observation and [`ShardedService::into_outcome`] for
    /// the final result.
    pub fn outcome(&self) -> Outcome {
        self.outcome.clone()
    }

    /// Consumes the service, returning the final outcome. Move-only: no
    /// clone happens on this path.
    pub fn into_outcome(self) -> Outcome {
        self.outcome
    }

    fn worker_arrive(&mut self, worker: GroundWorker) {
        let id = self.records.len() as u32;
        let t = self.period;
        let expires_at = t.saturating_add(worker.duration);
        // Mirrors the batch lifecycle: a worker whose window is already
        // over still consumes an id (so later ids keep their batch-path
        // positions) but never enters any live set.
        if expires_at <= t {
            self.records.push(Record {
                expires_at,
                status: Status::Gone,
                shard: 0,
            });
            return;
        }
        let input = WorkerInput::new(&self.grid, worker.location, worker.radius);
        let shard = self.router.shard_of(input.cell) as u32;
        self.records.push(Record {
            expires_at,
            status: Status::Available,
            shard,
        });
        self.schedule
            .entry(expires_at)
            .or_default()
            .push(Timed::Expire(id));
        self.shards[shard as usize].stage_arrival(id, input);
    }

    fn worker_depart(&mut self, id: u32) {
        // Unknown ids are ignored like already-gone workers: an online
        // stream can carry duplicate or stale departure events, and one
        // bad client event must not take the whole service down.
        let Some(record) = self.records.get_mut(id as usize) else {
            return;
        };
        if record.status == Status::Available {
            let shard = &mut self.shards[record.shard as usize];
            // A worker departing in the same inter-tick window it
            // arrived in is still a staged arrival: cancel it (O(1) via
            // the staging map) instead of staging a departure the cache
            // has never seen.
            if !shard.cancel_staged(id) {
                shard.departures.push(id);
            }
        }
        record.status = Status::Gone;
    }

    /// Fires the lifecycle events scheduled for period `t`, staging the
    /// resulting churn into the owning shards.
    fn fire_scheduled(&mut self, t: u32) {
        let Some(events) = self.schedule.remove(&t) else {
            return;
        };
        for event in events {
            match event {
                Timed::Expire(id) => {
                    let record = &mut self.records[id as usize];
                    if record.status == Status::Available {
                        self.shards[record.shard as usize].departures.push(id);
                    }
                    record.status = Status::Gone;
                }
                Timed::Release(id, input) => {
                    let record = &mut self.records[id as usize];
                    if record.status == Status::Busy && t < record.expires_at {
                        record.status = Status::Available;
                        // Relocation can migrate the worker to another
                        // shard's cells: re-route by the new location.
                        let shard = self.router.shard_of(input.cell) as u32;
                        record.shard = shard;
                        self.shards[shard as usize].stage_arrival(id, input);
                    } else {
                        record.status = Status::Gone;
                    }
                }
            }
        }
    }

    /// Builds the period's capped bipartite graph from the per-shard
    /// caches, bit-identical to the batch builder on the merged live
    /// set. `stats` are the shards' post-churn `(live, max_radius)`.
    fn build_graph(&mut self, stats: &[(usize, f64)]) -> BipartiteGraph {
        let live_total: usize = stats.iter().map(|s| s.0).sum();
        // Merge the shards' ascending (and mutually disjoint) live-id
        // lists into the global ascending order — identical to the
        // batch engine's single live list because ids are global
        // admission order regardless of shard.
        self.live_ids.clear();
        self.live_ids.reserve(live_total);
        {
            let mut cursors: Vec<(&[u32], usize)> = self
                .shards
                .iter()
                .map(|s| (s.cache.live_ids(), 0))
                .collect();
            loop {
                let mut best: Option<(u32, usize)> = None;
                for (si, &(ids, pos)) in cursors.iter().enumerate() {
                    if pos < ids.len() && best.is_none_or(|(b, _)| ids[pos] < b) {
                        best = Some((ids[pos], si));
                    }
                }
                let Some((id, si)) = best else { break };
                cursors[si].1 += 1;
                self.live_ids.push(id);
            }
        }
        self.worker_inputs.clear();
        self.worker_inputs.reserve(live_total);
        for &id in &self.live_ids {
            let shard = self.records[id as usize].shard as usize;
            self.worker_inputs.push(
                *self.shards[shard]
                    .cache
                    .worker(id)
                    .expect("live id is in its owning shard"),
            );
        }

        let k = self.k;
        let mut builder = BipartiteGraphBuilder::with_arena(
            self.task_inputs.len(),
            live_total,
            self.task_inputs.len() * k.min(live_total.max(1)),
            std::mem::take(&mut self.edge_arena),
        );
        if live_total <= k {
            // Fallback mirror of the batch builder: with no cap to
            // enforce, enumerate every in-range (task, worker) pair.
            // Shards emit their slices of the edge set in parallel; the
            // builder canonicalizes order, so a union is enough.
            let items: Vec<(maps_spatial::Point, u32)> = self
                .task_inputs
                .iter()
                .enumerate()
                .map(|(i, t)| (t.origin, i as u32))
                .collect();
            let task_index = BucketIndex::build(self.grid.region(), &items);
            self.shards
                .par_iter_mut()
                .for_each(|shard| shard.collect_edges(&task_index));
            let live_ids = &self.live_ids;
            for shard in &self.shards {
                for &(t_idx, id) in &shard.edges {
                    let dense = live_ids.binary_search(&id).expect("edge worker is live");
                    builder.add_edge(t_idx as usize, dense);
                }
            }
        } else {
            // Capped path: every task takes its k nearest in-range
            // workers under the total (distance, id) order. Each shard
            // answers from its own index with the *global* max radius
            // into reused flat buffers; merging the per-shard top-k
            // lists and truncating to k is exactly the one-index query
            // (the order is total and layout-independent).
            let max_radius = stats.iter().map(|s| s.1).fold(0.0f64, f64::max);
            let tasks = &self.task_inputs;
            self.shards
                .par_iter_mut()
                .for_each(|shard| shard.collect_candidates(tasks, max_radius, k));
            let live_ids = &self.live_ids;
            let merged = &mut self.merge_scratch;
            for t_idx in 0..tasks.len() {
                merged.clear();
                for shard in &self.shards {
                    merged.extend_from_slice(shard.task_candidates(t_idx));
                }
                merged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for &(_, id) in merged.iter().take(k) {
                    let dense = live_ids.binary_search(&id).expect("candidate is live");
                    builder.add_edge(t_idx, dense);
                }
            }
        }
        let (graph, arena) = builder.build_recycling();
        self.edge_arena = arena;
        graph
    }

    /// Closes the current period: the deterministic reduce step.
    fn run_tick(&mut self) {
        let t = self.period;
        // 1. Scheduled lifecycle transitions stage their churn.
        self.fire_scheduled(t);

        // 2. Materialize the period's task list in stream order.
        self.task_inputs.clear();
        self.task_inputs
            .extend(self.pending_tasks.iter().map(|task| TaskInput {
                origin: task.origin,
                distance: task.distance,
                cell: task.cell,
            }));
        self.outcome.issued_tasks += self.task_inputs.len() as u64;

        // 3. Parallel shard phase: apply staged churn, report live
        //    counts and radii. `collect` preserves shard-id order.
        let stats: Vec<(usize, f64)> = self
            .shards
            .par_iter_mut()
            .map(Shard::apply_staged)
            .collect();

        // 4. Shard-merged graph + global period view.
        let graph = self.build_graph(&stats);
        let input = PeriodInput {
            grid: &self.grid,
            tasks: &self.task_inputs,
            workers: &self.worker_inputs,
            graph: &graph,
        };

        // 5. Price the period (the strategy's own rayon fan-out is
        //    bit-stable per the workspace invariant).
        let start = Instant::now();
        let schedule = self.strategy.price_period(&input);
        self.outcome.pricing_secs += start.elapsed().as_secs_f64();

        // 6+7. Requesters decide and the market clears — literally the
        //    batch loop's code: `settle_period` is shared with
        //    `Simulation::run`, so the two cannot drift.
        let settlement = settle_period(
            &self.pending_tasks,
            &self.task_inputs,
            &schedule,
            &graph,
            &mut self.price_moments,
            &mut self.observations,
            &mut self.keep,
            &mut self.weights,
            &mut self.clearing,
        );
        self.outcome.accepted_tasks += settlement.accepted;
        self.outcome.clearing_secs += settlement.clearing_secs;
        self.outcome.total_revenue += settlement.revenue;
        self.outcome.revenue_per_period.push(settlement.revenue);

        // 8. Lifecycle for matched pairs, staged for the next tick.
        for (l, dense) in self.clearing.matched_pairs() {
            self.outcome.matched_tasks += 1;
            let task = &self.pending_tasks[l];
            self.outcome.matched_distance += task.distance;
            let id = self.live_ids[dense as usize];
            let record_shard = self.records[id as usize].shard as usize;
            match self.match_policy {
                MatchPolicy::Consume => {
                    self.records[id as usize].status = Status::Gone;
                    self.shards[record_shard].departures.push(id);
                }
                MatchPolicy::Relocate { speed } => {
                    let travel = (task.distance / speed).ceil().max(1.0) as u32;
                    let radius = self.shards[record_shard]
                        .cache
                        .worker(id)
                        .expect("matched worker is live")
                        .radius;
                    self.shards[record_shard].departures.push(id);
                    let busy_until = t.saturating_add(travel);
                    let record = &mut self.records[id as usize];
                    if busy_until < record.expires_at {
                        record.status = Status::Busy;
                        let input = WorkerInput::new(&self.grid, task.destination, radius);
                        self.schedule
                            .entry(busy_until)
                            .or_default()
                            .push(Timed::Release(id, input));
                    } else {
                        record.status = Status::Gone;
                    }
                }
            }
        }

        // 9. Feedback to the learning strategy, then advance the clock.
        self.strategy.observe(&self.observations);
        self.pending_tasks.clear();
        // Finalize the price moments into the outcome: moments only
        // change inside a tick, so refreshing them here keeps
        // `outcome_snapshot` a plain borrow at every observation point.
        self.outcome.mean_posted_price = self.price_moments.mean();
        self.outcome.posted_price_std = self.price_moments.population_std();
        self.period = t + 1;
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("strategy", &self.outcome.strategy)
            .field("shards", &self.shards.len())
            .field("period", &self.period)
            .field("admitted", &self.records.len())
            .field("live", &self.live_workers())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maps_spatial::{Point, Rect};

    fn grid() -> GridSpec {
        GridSpec::square(Rect::square(10.0), 2)
    }

    fn config(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }

    fn worker(x: f64, y: f64, duration: u32) -> GroundWorker {
        GroundWorker {
            location: Point::new(x, y),
            radius: 4.0,
            duration,
        }
    }

    fn task(x: f64, y: f64) -> GroundTask {
        let grid = grid();
        let origin = Point::new(x, y);
        GroundTask {
            origin,
            destination: Point::new(9.0, 9.0),
            distance: 1.0,
            valuation: 4.9, // accepts any ladder price
            cell: grid.cell_of(origin),
        }
    }

    fn service(shards: usize, policy: MatchPolicy) -> ShardedService {
        ShardedService::new(grid(), policy, StrategyKind::BaseP, config(shards))
    }

    #[test]
    fn arrivals_route_by_cell_and_expire_on_schedule() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, 2),
        });
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(9.0, 9.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 2);
        assert_eq!(svc.admitted_workers(), 2);
        // Different cells on a 2-shard router: one worker per shard.
        assert_eq!(svc.shards[0].cache.live_count(), 1);
        assert_eq!(svc.shards[1].cache.live_count(), 1);
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 2, "duration 2 spans periods 0–1");
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 1, "expiry fired at period 2");
    }

    #[test]
    fn zero_duration_arrival_takes_an_id_but_never_lives() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, 0),
        });
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(2.0, 2.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.admitted_workers(), 2);
        assert_eq!(svc.live_workers(), 1);
    }

    #[test]
    fn depart_before_first_tick_cancels_the_staged_arrival() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::WorkerDepart { id: 0 });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0);
        // Departing again — or a stale id the service never admitted —
        // is a no-op, not a panic: one bad client event must not take
        // the stream down.
        svc.push(ServiceEvent::WorkerDepart { id: 0 });
        svc.push(ServiceEvent::WorkerDepart { id: 42 });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0);
    }

    #[test]
    fn explicit_departure_after_ticks_leaves_at_next_tick() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 1);
        svc.push(ServiceEvent::WorkerDepart { id: 0 });
        assert_eq!(svc.live_workers(), 1, "staged until the tick");
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0);
    }

    #[test]
    fn matched_consume_worker_is_gone_next_period() {
        let mut svc = service(2, MatchPolicy::Consume);
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::TaskRequest {
            task: task(1.5, 1.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        let out = svc.outcome();
        assert_eq!(out.issued_tasks, 1);
        assert_eq!(out.matched_tasks, 1);
        assert!(out.total_revenue > 0.0);
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.live_workers(), 0, "consumed worker departed");
    }

    #[test]
    fn relocation_migrates_worker_to_its_new_shard() {
        // Task destination (9,9) lies in cell 3 (shard 1 of 2); the
        // worker starts at (1,1), cell 0 (shard 0). distance 1 at speed
        // 1 → busy 1 period, back in period 1... released at period 1.
        let mut svc = service(2, MatchPolicy::Relocate { speed: 1.0 });
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::TaskRequest {
            task: task(1.5, 1.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.outcome().matched_tasks, 1);
        svc.push(ServiceEvent::PeriodTick); // release fires at period 1
        assert_eq!(svc.live_workers(), 1);
        assert_eq!(svc.shards[0].cache.live_count(), 0, "left shard 0");
        assert_eq!(svc.shards[1].cache.live_count(), 1, "entered shard 1");
        assert_eq!(
            svc.shards[1].cache.worker(0).unwrap().location,
            Point::new(9.0, 9.0)
        );
    }

    /// Non-finite geometry/economics is refused at admission — before
    /// any state (in particular the admission-id counter) is touched.
    /// Without this, `Grid::cell_of` files NaN under a boundary cell
    /// and pricing is corrupted invisibly; a zero-distance task would
    /// even panic the tick reducer (`TaskInput::new`).
    #[test]
    fn non_finite_events_are_rejected_at_admission() {
        let mut svc = service(2, MatchPolicy::Consume);
        let mut w = worker(1.0, 1.0, u32::MAX);
        w.location = Point::new(f64::NAN, 1.0);
        assert_eq!(
            svc.try_push(ServiceEvent::WorkerArrive { worker: w }),
            Err(EventRejection::NonFiniteWorkerLocation)
        );
        assert_eq!(svc.admitted_workers(), 0, "no admission id consumed");

        let mut w = worker(1.0, 1.0, u32::MAX);
        w.radius = f64::INFINITY;
        assert_eq!(
            svc.try_push(ServiceEvent::WorkerArrive { worker: w }),
            Err(EventRejection::InvalidWorkerRadius)
        );

        let mut t = task(1.5, 1.0);
        t.origin = Point::new(1.0, f64::NAN);
        assert_eq!(
            svc.try_push(ServiceEvent::TaskRequest { task: t }),
            Err(EventRejection::NonFiniteTaskEndpoint)
        );
        let mut t = task(1.5, 1.0);
        t.distance = 0.0;
        assert_eq!(
            svc.try_push(ServiceEvent::TaskRequest { task: t }),
            Err(EventRejection::InvalidTaskDistance)
        );
        let mut t = task(1.5, 1.0);
        t.valuation = f64::NAN;
        assert_eq!(
            svc.try_push(ServiceEvent::TaskRequest { task: t }),
            Err(EventRejection::NonFiniteTaskValuation)
        );
        assert_eq!(svc.rejected_events(), 5);

        // The stream keeps flowing: valid events after the rejects work.
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::TaskRequest {
            task: task(1.5, 1.0),
        });
        svc.push(ServiceEvent::PeriodTick);
        let out = svc.outcome_snapshot();
        assert_eq!(out.issued_tasks, 1, "rejected tasks were never issued");
        assert_eq!(out.matched_tasks, 1);
        assert_eq!(svc.admitted_workers(), 1);
    }

    /// Regression for the O(n²) same-window cancellation: departing a
    /// staged arrival used to `position()`-scan the whole staging
    /// buffer. Arriving n workers and departing them newest-first put
    /// every target at the end of the scan — ~n²/2 tuple compares per
    /// window (minutes at this size in a debug test run). With the
    /// id→slot staging map the window is O(n).
    #[test]
    fn high_churn_same_window_cancellation_is_linear() {
        let n: u32 = 50_000;
        let start = Instant::now();
        let mut svc = service(2, MatchPolicy::Consume);
        for i in 0..n {
            svc.push(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + (i % 8) as f64, 1.0, u32::MAX),
            });
        }
        for id in (0..n).rev() {
            svc.push(ServiceEvent::WorkerDepart { id });
        }
        // One survivor proves cancellation didn't eat the wrong slots.
        svc.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0, 1.0, u32::MAX),
        });
        svc.push(ServiceEvent::PeriodTick);
        assert_eq!(svc.admitted_workers(), n as usize + 1);
        assert_eq!(svc.live_workers(), 1);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "same-window cancellation took {:?} for {n} pairs — quadratic again?",
            start.elapsed()
        );
    }

    /// The O(1) snapshot view must agree with the owned clone at every
    /// observation point (including mid-stream, between ticks), and
    /// `into_outcome` must hand back the same final value.
    #[test]
    fn snapshot_borrow_matches_cloned_outcome() {
        let mut svc = service(2, MatchPolicy::Consume);
        assert_eq!(svc.outcome_snapshot(), &svc.outcome(), "pre-first-tick");
        for i in 0..3u32 {
            svc.push(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + i as f64, 1.0, u32::MAX),
            });
            svc.push(ServiceEvent::TaskRequest {
                task: task(1.5 + i as f64, 1.0),
            });
            assert_eq!(svc.outcome_snapshot(), &svc.outcome(), "mid-window");
            svc.push(ServiceEvent::PeriodTick);
            let snapshot = svc.outcome_snapshot();
            assert_eq!(snapshot, &svc.outcome(), "post-tick");
            assert!(snapshot.mean_posted_price > 0.0, "moments are finalized");
        }
        let bits = svc.outcome_snapshot().deterministic_bits();
        assert_eq!(svc.into_outcome().deterministic_bits(), bits);
    }

    #[test]
    fn outcome_snapshot_is_cumulative_and_consistent() {
        let mut svc = service(4, MatchPolicy::Consume);
        for i in 0..6u32 {
            svc.push(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + i as f64, 1.0, u32::MAX),
            });
        }
        for t in 0..4 {
            svc.push(ServiceEvent::TaskRequest {
                task: task(1.0 + t as f64, 1.0),
            });
            svc.push(ServiceEvent::PeriodTick);
            let out = svc.outcome();
            assert!(out.is_consistent());
            assert_eq!(out.issued_tasks, t + 1);
            assert_eq!(out.revenue_per_period.len(), (t + 1) as usize);
        }
        assert_eq!(svc.periods_served(), 4);
    }
}
