//! Bounded, multi-producer event ingestion in front of the tick
//! reducer.
//!
//! The paper's setting is fully online: requesters and workers stream
//! in *concurrently*, yet the platform must keep posting one price per
//! grid per period (Sec. 4.2) — and the whole workspace's determinism
//! contract requires the market-clearing epoch to see a **canonical**
//! event order no matter how client threads interleave. This module is
//! that front door:
//!
//! ```text
//!   client threads (N producers)                 sequencer thread
//!   ┌────────────┐  bounded lock-free SPSC ring
//!   │ producer 0 │──[e₀₀ e₀₁ … ‖ epoch-end]──┐
//!   ├────────────┤                           │   merge under the total
//!   │ producer 1 │──[e₁₀ … ‖ epoch-end]──────┼─► (epoch, producer, seq)
//!   ├────────────┤                           │   order, then feed the
//!   │ producer n │──[… ‖ epoch-end]──────────┘   ShardedService; tick
//!   └────────────┘                               fires only after ALL
//!                                                producers closed the
//!                                                epoch (barrier)
//! ```
//!
//! Each [`IngressProducer`] appends its events to its **own** bounded
//! queue (a lock-free single-producer/single-consumer ring — see
//! [`Queue`] — so producers never contend with each other, only with
//! backpressure from their own lane). Ring slots carry **bare events,
//! no stamps**: the `(epoch, seq)` coordinates of every slot are
//! implicit in its position, mirrored by producer-side and
//! consumer-side counters that advance in lock-step (an at-least-once
//! reconnect, the one legal discontinuity, posts an out-of-band
//! [`Rebase`] record). A producer's [`ServiceEvent::PeriodTick`] does
//! *not* tick the market: it closes the producer's current **epoch**
//! (it *is* the in-band epoch-end marker).
//! The sequencer drains every producer's epoch-`e` segment — in
//! producer-id order, each segment already in seq order — into the
//! [`ShardedService`], and only then fires the real global tick. The
//! tick is therefore an **epoch barrier**: the reducer never runs until
//! every producer has flushed the epoch.
//!
//! ## The interleaving-invariance contract
//!
//! The order of events fed to the service is the total
//! `(epoch, producer, seq)` order — a pure function of *what each
//! producer sent*, never of *when* it ran. Hence replaying any
//! [`GroundTruth`](maps_simulator::GroundTruth) split across 1/2/4/8
//! producers — under arbitrary thread interleavings and any queue
//! capacities — yields an outcome **bit-identical** to serial
//! [`ShardedService::push`], and therefore (by the PR 4 contract) to
//! [`Simulation::run`](maps_simulator::Simulation::run). Enforced by
//! the `ingest_oracle` test sweep (producers × shards × strategies ×
//! forced interleavings × queue capacities), the root proptest
//! `ingested_stream_matches_serial_push` (random producer partitions,
//! schedule perturbation, per-epoch outcome checks) and the
//! `ingest_throughput` row `bench_gate` fails CI without.
//!
//! ## Liveness
//!
//! Queues are bounded: a producer ahead of the sequencer blocks in
//! [`IngressProducer::send`] until its lane drains (backpressure, the
//! deliberate memory bound). The sequencer drains producers in id
//! order within an epoch, so total progress requires every producer to
//! eventually close its epoch (or close its handle) — the usual
//! contract of a barrier. External coordination that *holds producers
//! back* (e.g. a test harness serializing sends) must size queues to
//! the held-back volume, or it can deadlock against the barrier.

use crate::engine::{ServiceError, ServiceEvent, ShardedService};
use crate::journal::TICK_PRODUCER;
// All synchronization primitives come through the `crate::sync` facade
// (enforced by the `sync-facade` maps-lint rule): std re-exports in
// normal builds, maps-model tracked types under the `maps_model`
// feature, so the shipping ring code below is exactly what the model
// checker explores.
use crate::sync::{
    fence, spin_limit, thread_yield, yield_limit, AtomicBool, AtomicU64, Cell, Condvar, Instant,
    Mutex, MutexGuard, Ordering, SlotTracker,
};
use maps_simulator::PeriodData;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the ingestion front-end.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Number of producer handles (≥ 1). Any value yields bit-identical
    /// outcomes; it only controls how admission is parallelized.
    pub producers: usize,
    /// Per-producer queue capacity in slots (≥ 1; epoch-end markers
    /// occupy a slot too). Any capacity yields bit-identical outcomes;
    /// it only bounds the memory between a producer and the sequencer.
    pub queue_capacity: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            producers: 4,
            queue_capacity: 1024,
        }
    }
}

/// An out-of-band coordinate record: the slot at ring position `pos`
/// (and everything after it, until the next record) carries explicit
/// `(epoch, seq)` coordinates instead of the consumer's implicit
/// count. Posted only by [`AbandonedLane::reconnect`] — an
/// at-least-once reconnect may rewind `seq` or jump `epoch`, the one
/// discontinuity the lock-step stamping arithmetic cannot see in-band.
#[derive(Debug, Clone, Copy)]
struct Rebase {
    pos: u64,
    epoch: u64,
    seq: u64,
}

/// What one bounded drain of a lane yielded.
enum Chunk {
    /// Drained up to (and consumed) the epoch-`e` end marker.
    Marker(u64),
    /// Drained some events; the epoch is still open.
    Progress,
    /// The producer closed its handle; the lane is empty forever.
    Closed,
}

/// Pads and aligns a value to 128 bytes (two x86 cache lines — adjacent
/// line prefetchers pull pairs) so the producer-owned and consumer-owned
/// ring cursors never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// The consumer's private cursor state (one padded group, touched by no
/// other thread): its snapshot of `tail` plus the implicit stamp
/// counters that mirror the producer's — `epoch` advances at each
/// consumed epoch-end marker, `next_seq` at each event, and a
/// [`Rebase`] record overwrites both at a reconnect discontinuity.
#[derive(Debug, Default)]
struct ReaderState {
    tail_cache: Cell<u64>,
    epoch: Cell<u64>,
    next_seq: Cell<u64>,
}

/// One producer's bounded lane: a **lock-free SPSC ring**.
///
/// Layout: a power-of-two slot buffer indexed by monotonically
/// increasing `head`/`tail` cursors (`pos & mask` is the physical
/// index). The logical capacity is *not* rounded up — `tail - head <
/// capacity` is the backpressure bound, exactly the configured slot
/// count.
///
/// Ordering protocol (the per-lane FIFO the sequencing contract needs):
///
/// * The producer writes slots, then publishes them with **one
///   `Release` store of `tail`** per batch; the consumer's `Acquire`
///   load of `tail` therefore observes fully-written slots — for the
///   whole batch, at the cost of a single fence.
/// * The consumer reads slots, then frees them with **one `Release`
///   store of `head`** per drain; the producer's `Acquire` load of
///   `head` proves the reads finished before it overwrites.
/// * Each side caches the other's cursor (`head_cache` /
///   `reader.tail_cache`, plain [`Cell`]s private to their side) so the
///   fast path touches no shared cache line at all until the cached
///   view runs out.
/// * Slots are **bare [`ServiceEvent`]s** — no per-slot stamps. Both
///   sides count `(epoch, seq)` in lock-step ([`ServiceEvent::PeriodTick`]
///   slots are the epoch-end markers), so the consumer can hand whole
///   runs to admission **zero-copy, straight out of ring memory**.
///   Reconnect discontinuities travel as out-of-band [`Rebase`] records;
///   a record is posted (under its own mutex) *before* the slot it
///   describes is written, so the release store of `tail` that publishes
///   the slot also publishes the record's visibility counter.
///
/// Blocking is a spin → yield → park slow path. Parking uses a shared
/// `park` mutex + per-side condvars and `*_parked` flags: a waiter sets
/// its flag and re-checks state *while holding the mutex* before
/// waiting; a waker publishes state, then `SeqCst`-fences and checks
/// the flag — if set, it locks the (same) mutex before notifying. The
/// fence pairing guarantees the waker either sees the flag or the
/// waiter's re-check sees the new state; the lock-before-notify closes
/// the window between the waiter's re-check and its wait. Shutdown
/// paths (`close`, `close_consumer`) notify unconditionally.
struct Queue {
    /// Logical slot capacity — the backpressure bound.
    capacity: u64,
    /// `buf.len() - 1`; `buf.len()` is `capacity.next_power_of_two()`.
    mask: u64,
    buf: Box<[UnsafeCell<MaybeUninit<ServiceEvent>>]>,
    /// Producer cursor: next position to write (monotonic).
    tail: CachePadded<AtomicU64>,
    /// Consumer cursor: next position to read (monotonic).
    head: CachePadded<AtomicU64>,
    /// Producer-private lower bound of `head`.
    head_cache: CachePadded<Cell<u64>>,
    /// Consumer-private cursors (tail snapshot + implicit stamps).
    reader: CachePadded<ReaderState>,
    /// Reconnect coordinate records, keyed by ring position (posted in
    /// position order by the producer, drained in order by the
    /// consumer).
    rebases: Mutex<std::collections::VecDeque<Rebase>>,
    /// Number of not-yet-consumed [`Rebase`] records: the consumer's
    /// hot path checks this counter and skips the mutex while it is 0.
    rebase_pending: AtomicU64,
    /// The producer closed its handle: no more slots will arrive.
    closed: AtomicBool,
    /// The sequencer is gone (dropped, or its thread panicked): slots
    /// will never drain again, so producers must fail fast instead of
    /// blocking forever on a full ring.
    consumer_gone: AtomicBool,
    park: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    producer_parked: AtomicBool,
    consumer_parked: AtomicBool,
    /// Race-tracking for the raw slot buffer under the model checker
    /// (`maps_model` feature); a zero-sized no-op in shipping builds.
    /// The slots themselves must stay bare `UnsafeCell<MaybeUninit<_>>`
    /// for the zero-copy `from_raw_parts` borrow in
    /// [`Queue::pop_epoch_run`], so the model cannot wrap them — the
    /// producer records each slot write and the consumer each slot
    /// claim, and the model race-checks those records instead.
    slots: SlotTracker,
}

// SAFETY: the `UnsafeCell` slots are transferred between the two sides
// by the release/acquire cursor protocol above, the `rebases` deque is
// mutex-protected, and the `Cell` state is role-private —
// `head_cache`/`tail` are touched only by producer-side methods,
// reachable only through the single `IngressProducer` handle
// (`&mut self`/owned, so one thread at a time; cross-thread handoffs of
// the handle synchronize like any `Send` move), and `reader`/`head`
// only by consumer-side methods, reachable only through the owning
// `IngestService` sequencer.
unsafe impl Send for Queue {}
// SAFETY: shared references expose only the atomics, the mutexes, and
// the role-private `Cell`s; the `Send` justification above covers why
// each `Cell` is reached from at most one thread at a time.
unsafe impl Sync for Queue {}

/// A racy diagnostic snapshot of the ring's cursors and lifecycle
/// flags, taken by [`Queue::debug_snapshot`] for `Debug` formatting.
/// The four loads are independent and can each be stale — `head` may
/// even appear ahead of `tail` if the cursors move mid-snapshot — so
/// the values must only ever feed diagnostics, never control flow.
struct QueueSnapshot {
    head: u64,
    tail: u64,
    closed: bool,
    consumer_gone: bool,
}

impl Queue {
    /// See [`QueueSnapshot`]: the one place the ring reads its shared
    /// state without synchronization, quarantined so every other load
    /// in this file participates in the ordering protocol.
    fn debug_snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            head: self.head.0.load(Ordering::Relaxed), // ordering: racy Debug-only snapshot
            tail: self.tail.0.load(Ordering::Relaxed), // ordering: racy Debug-only snapshot
            closed: self.closed.load(Ordering::Relaxed), // ordering: racy Debug-only snapshot
            consumer_gone: self.consumer_gone.load(Ordering::Relaxed), // ordering: see QueueSnapshot
        }
    }
}

impl std::fmt::Debug for Queue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.debug_snapshot();
        f.debug_struct("Queue")
            .field("capacity", &self.capacity)
            .field("head", &snap.head)
            .field("tail", &snap.tail)
            .field("closed", &snap.closed)
            .field("consumer_gone", &snap.consumer_gone)
            .finish_non_exhaustive()
    }
}

impl Queue {
    fn new(capacity: usize) -> Self {
        let physical = capacity.next_power_of_two();
        Self {
            capacity: capacity as u64,
            mask: physical as u64 - 1,
            buf: (0..physical)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            tail: CachePadded(AtomicU64::new(0)),
            head: CachePadded(AtomicU64::new(0)),
            head_cache: CachePadded(Cell::new(0)),
            reader: CachePadded(ReaderState::default()),
            rebases: Mutex::new(std::collections::VecDeque::new()),
            rebase_pending: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            consumer_gone: AtomicBool::new(false),
            park: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            producer_parked: AtomicBool::new(false),
            consumer_parked: AtomicBool::new(false),
            slots: SlotTracker::new(physical),
        }
    }

    /// Raw pointer to the slot at ring position `pos`.
    #[inline]
    fn slot_ptr(&self, pos: u64) -> *mut ServiceEvent {
        // SAFETY: callers hold the position per the cursor protocol.
        unsafe { (*self.buf[(pos & self.mask) as usize].get()).as_mut_ptr() }
    }

    fn park_lock(&self) -> MutexGuard<'_, ()> {
        // Never poisoned: no user code runs under this lock.
        self.park.lock().expect("ingest park mutex poisoned")
    }

    /// Wakes the consumer if it is parked on an empty ring. Callers
    /// publish `tail` (or `closed`) first; see the type-level ordering
    /// notes for why fence + flag + lock-before-notify cannot miss.
    fn wake_consumer(&self) {
        // ordering: the SeqCst fence orders our tail/closed publish
        // before the flag read below, pairing with the consumer's
        // flag-store → fence → cursor-re-check sequence — one side
        // always sees the other, so a parked consumer cannot be missed.
        fence(Ordering::SeqCst);
        // ordering: the fence above provides the ordering; the load
        // itself needs none.
        if self.consumer_parked.load(Ordering::Relaxed) {
            drop(self.park_lock());
            self.not_empty.notify_all();
        }
    }

    /// Wakes the producer if it is parked on a full ring. Callers
    /// publish `head` (or `consumer_gone`) first.
    fn wake_producer(&self) {
        // ordering: as in `wake_consumer` — fence pairs with the
        // producer's flag-store → fence → cursor-re-check before parking.
        fence(Ordering::SeqCst);
        // ordering: the fence above provides the ordering; the load
        // itself needs none.
        if self.producer_parked.load(Ordering::Relaxed) {
            drop(self.park_lock());
            self.not_full.notify_all();
        }
    }

    /// Producer side: waits until at least one slot is writable at
    /// `tail`, returning how many are. Fails fast with
    /// [`SendError::Disconnected`] when the sequencer is gone — even
    /// with ring room, the slot could never be consumed — and with
    /// [`SendError::Timeout`] past `deadline` (`None` waits forever).
    #[inline]
    fn wait_space(&self, tail: u64, deadline: Option<Instant>) -> Result<u64, SendError> {
        // ordering: monotonic one-way flag, checked again with SeqCst
        // on the slow path before parking; a stale read here only costs
        // one extra loop iteration.
        if self.consumer_gone.load(Ordering::Relaxed) {
            return Err(SendError::Disconnected);
        }
        let cached = self.head_cache.0.get();
        if tail - cached < self.capacity {
            return Ok(self.capacity - (tail - cached));
        }
        let head = self.head.0.load(Ordering::Acquire);
        self.head_cache.0.set(head);
        if tail - head < self.capacity {
            return Ok(self.capacity - (tail - head));
        }
        self.wait_space_slow(tail, deadline)
    }

    #[cold]
    fn wait_space_slow(&self, tail: u64, deadline: Option<Instant>) -> Result<u64, SendError> {
        let mut tries = 0u32;
        loop {
            if self.consumer_gone.load(Ordering::SeqCst) {
                return Err(SendError::Disconnected);
            }
            let head = self.head.0.load(Ordering::Acquire);
            if tail - head < self.capacity {
                self.head_cache.0.set(head);
                return Ok(self.capacity - (tail - head));
            }
            if let Some(d) = deadline {
                // lint-allow(det-wallclock): backpressure timeout on the producer thread, outside the deterministic pipeline
                if Instant::now() >= d {
                    return Err(SendError::Timeout);
                }
            }
            tries += 1;
            let spins = spin_limit();
            if tries <= spins {
                std::hint::spin_loop();
            } else if tries <= spins + yield_limit() {
                thread_yield();
            } else {
                let guard = self.park_lock();
                self.producer_parked.store(true, Ordering::SeqCst);
                // ordering: fence pairs with the waker's fence — either
                // this re-check sees the new head/flag, or the waker
                // sees our parked flag and takes the lock to notify.
                fence(Ordering::SeqCst);
                let head = self.head.0.load(Ordering::SeqCst);
                if tail - head < self.capacity || self.consumer_gone.load(Ordering::SeqCst) {
                    self.producer_parked.store(false, Ordering::SeqCst);
                    continue; // drop the guard; re-check at the top
                }
                match deadline {
                    None => {
                        let _guard = self
                            .not_full
                            .wait(guard)
                            .expect("ingest park mutex poisoned");
                    }
                    Some(d) => {
                        // lint-allow(det-wallclock): converts the caller deadline into a park timeout; never observed by replay
                        let now = Instant::now();
                        let Some(remaining) =
                            d.checked_duration_since(now).filter(|r| !r.is_zero())
                        else {
                            self.producer_parked.store(false, Ordering::SeqCst);
                            return Err(SendError::Timeout);
                        };
                        let _guard = self
                            .not_full
                            .wait_timeout(guard, remaining)
                            .expect("ingest park mutex poisoned")
                            .0;
                    }
                }
                self.producer_parked.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Appends one event, blocking while the ring is at capacity, then
    /// publishes it with a release store of `tail`.
    ///
    /// # Panics
    /// Panics when the sequencer is gone: the slot could never be
    /// consumed, and blocking would hang the producer thread forever —
    /// turning a reducer panic into a silent process hang instead of a
    /// visible failure.
    fn push(&self, event: ServiceEvent) {
        if self.push_deadline_opt(event, None).is_err() {
            panic!("ingestion sequencer is gone (dropped or panicked); cannot send");
        }
    }

    /// Bounded-wait variant of [`Queue::push`]: waits for ring space at
    /// most until `deadline`, and reports a dead sequencer as a typed
    /// error instead of panicking — the building block supervision
    /// loops need for retry/backoff admission.
    fn push_deadline(&self, event: ServiceEvent, deadline: Instant) -> Result<(), SendError> {
        self.push_deadline_opt(event, Some(deadline))
    }

    fn push_deadline_opt(
        &self,
        event: ServiceEvent,
        deadline: Option<Instant>,
    ) -> Result<(), SendError> {
        // ordering: `tail` is producer-owned — this thread is its only
        // writer, so the load cannot be stale.
        let tail = self.tail.0.load(Ordering::Relaxed);
        self.wait_space(tail, deadline)?;
        self.slots.write((tail & self.mask) as usize);
        // SAFETY: `wait_space` proved `tail` is writable; SPSC makes
        // this thread the only writer.
        unsafe { self.slot_ptr(tail).write(event) };
        self.tail.0.store(tail + 1, Ordering::Release);
        self.wake_consumer();
        Ok(())
    }

    /// Appends every event the iterator yields, constructing each one
    /// **directly in its ring slot** and publishing each acquired
    /// window of ring space with a **single** release store of `tail`
    /// (the batched-publish fast path: one fence per window, not per
    /// event, and no intermediate buffer at all).
    ///
    /// # Panics
    /// Like [`Queue::push`], when the sequencer is gone.
    fn push_iter(&self, mut events: impl Iterator<Item = ServiceEvent>) {
        let mut item = events.next();
        while item.is_some() {
            // ordering: `tail` is producer-owned; only this thread
            // stores it.
            let tail = self.tail.0.load(Ordering::Relaxed);
            let Ok(free) = self.wait_space(tail, None) else {
                panic!("ingestion sequencer is gone (dropped or panicked); cannot send");
            };
            let mut wrote = 0u64;
            while wrote < free {
                let Some(event) = item.take() else { break };
                self.slots.write(((tail + wrote) & self.mask) as usize);
                // SAFETY: positions `tail..tail + free` are writable.
                unsafe { self.slot_ptr(tail + wrote).write(event) };
                wrote += 1;
                item = events.next();
            }
            self.tail.0.store(tail + wrote, Ordering::Release);
            self.wake_consumer();
        }
    }

    /// Producer side: records that the slot about to be written at the
    /// current `tail` (and everything after it) carries the explicit
    /// coordinates `(epoch, seq)` — see [`Rebase`]. Must be called
    /// *before* that slot is written: the release store of `tail` that
    /// publishes the slot then also makes the record visible to any
    /// consumer that can reach its position.
    fn post_rebase(&self, epoch: u64, seq: u64) {
        // ordering: `tail` is producer-owned; only this thread stores it.
        let pos = self.tail.0.load(Ordering::Relaxed);
        self.rebases
            .lock()
            .expect("ingest rebase mutex poisoned")
            .push_back(Rebase { pos, epoch, seq });
        // ordering: the counter is only a fast-path hint — the deque
        // itself is mutex-protected, and a consumer that reads a stale
        // zero revisits on the next drain after the release store of
        // `tail` publishes the slot the rebase names.
        self.rebase_pending.fetch_add(1, Ordering::Relaxed);
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Shutdown is rare: skip the parked-flag check and notify
        // unconditionally (lock first — see the type-level notes).
        drop(self.park_lock());
        self.not_empty.notify_all();
    }

    /// Marks the consumer side dead and wakes any producer blocked on
    /// backpressure so it can fail fast (see [`Queue::push`]).
    fn close_consumer(&self) {
        self.consumer_gone.store(true, Ordering::SeqCst);
        drop(self.park_lock());
        self.not_full.notify_all();
    }

    /// Consumer side: waits until the ring is non-empty (returning the
    /// published `tail`, claiming everything visible with one acquire
    /// load) or closed-and-drained (`None`).
    fn wait_events(&self, head: u64) -> Option<u64> {
        let cached = self.reader.0.tail_cache.get();
        if cached != head {
            return Some(cached);
        }
        let mut tries = 0u32;
        loop {
            let tail = self.tail.0.load(Ordering::Acquire);
            if tail != head {
                self.reader.0.tail_cache.set(tail);
                return Some(tail);
            }
            if self.closed.load(Ordering::SeqCst) {
                // The producer publishes its final slots before setting
                // `closed`: one more acquire re-read settles it.
                let tail = self.tail.0.load(Ordering::Acquire);
                if tail == head {
                    return None;
                }
                self.reader.0.tail_cache.set(tail);
                return Some(tail);
            }
            tries += 1;
            let spins = spin_limit();
            if tries <= spins {
                std::hint::spin_loop();
            } else if tries <= spins + yield_limit() {
                thread_yield();
            } else {
                let guard = self.park_lock();
                self.consumer_parked.store(true, Ordering::SeqCst);
                // ordering: fence pairs with the waker's fence — either
                // this re-check sees the new tail/closed, or the waker
                // sees our parked flag and takes the lock to notify.
                fence(Ordering::SeqCst);
                if self.tail.0.load(Ordering::SeqCst) != head || self.closed.load(Ordering::SeqCst)
                {
                    self.consumer_parked.store(false, Ordering::SeqCst);
                    continue; // drop the guard; re-check at the top
                }
                let _guard = self
                    .not_empty
                    .wait(guard)
                    .expect("ingest park mutex poisoned");
                self.consumer_parked.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Drains everything already published — claimed under a single
    /// acquire load, freed under a single release store of `head` —
    /// handing `admit` whole `(epoch, first_seq, events)` runs
    /// **zero-copy, straight out of ring memory**: the slices borrow
    /// the slot buffer, which is sound because the producer cannot
    /// reuse those slots until `head` advances, and `head` only
    /// advances after `admit` returns. Stamps are implicit (the reader
    /// counters mirror the producer's arithmetic; [`Rebase`] records
    /// patch reconnect discontinuities), so runs split only at epoch-end
    /// markers, rebase positions and the physical wrap boundary. Stops
    /// after consuming an epoch-end marker — later slots belong to the
    /// next epoch and must wait for the global tick. Blocks only while
    /// the lane is empty and open.
    ///
    /// A fatal error from `admit` aborts the drain without freeing the
    /// claimed slots — the sequencer is about to die and drop the
    /// consumer side, which is what unblocks the producer.
    fn pop_epoch_run(
        &self,
        mut admit: impl FnMut(u64, u64, &[ServiceEvent]) -> Result<(), ServiceError>,
    ) -> Result<Chunk, ServiceError> {
        // ordering: `head` is consumer-owned — this thread is its only
        // writer, so the load cannot be stale.
        let head = self.head.0.load(Ordering::Relaxed);
        let Some(tail) = self.wait_events(head) else {
            return Ok(Chunk::Closed);
        };
        let reader = &self.reader.0;
        let mut pos = head;
        let mut outcome = Chunk::Progress;
        while pos < tail {
            // Reconnects are rare: the pending counter keeps the mutex
            // off the hot path entirely.
            let mut next_rebase = None;
            // ordering: hint only — any rebase relevant to `pos` was
            // posted before the release store of `tail` that published
            // `pos`, so the acquire load that claimed this batch also
            // made the incremented counter visible.
            if self.rebase_pending.load(Ordering::Relaxed) > 0 {
                let mut rebases = self.rebases.lock().expect("ingest rebase mutex poisoned");
                while rebases.front().is_some_and(|r| r.pos == pos) {
                    let r = rebases.pop_front().expect("front was checked");
                    // ordering: decrement under the deque mutex; the
                    // counter is a fast-path hint, not a synchronizer.
                    self.rebase_pending.fetch_sub(1, Ordering::Relaxed);
                    reader.epoch.set(r.epoch);
                    reader.next_seq.set(r.seq);
                }
                next_rebase = rebases.front().map(|r| r.pos).filter(|&p| p < tail);
            }
            // One physically contiguous, rebase-free segment.
            let wrap = (pos & !self.mask) + self.mask + 1;
            let seg_end = tail.min(wrap).min(next_rebase.unwrap_or(u64::MAX));
            let len = (seg_end - pos) as usize;
            let lo = (pos & self.mask) as usize;
            self.slots.read_range(lo, lo + len);
            // SAFETY: `pos..seg_end` was published by the producer's
            // release store of `tail` (slots initialized), stays claimed
            // until the release store of `head` below, and does not
            // cross the wrap boundary (physically contiguous); SPSC
            // makes this thread the only reader. The cast is sound:
            // `UnsafeCell<MaybeUninit<T>>` has the layout of `T`.
            let events: &[ServiceEvent] = unsafe {
                std::slice::from_raw_parts(
                    self.buf[(pos & self.mask) as usize]
                        .get()
                        .cast::<ServiceEvent>(),
                    len,
                )
            };
            let marker = events
                .iter()
                .position(|e| matches!(e, ServiceEvent::PeriodTick));
            let run_len = marker.unwrap_or(len);
            if run_len > 0 {
                let first_seq = reader.next_seq.get();
                admit(reader.epoch.get(), first_seq, &events[..run_len])?;
                reader.next_seq.set(first_seq + run_len as u64);
                pos += run_len as u64;
            }
            if marker.is_some() {
                pos += 1; // consume the epoch-end marker
                outcome = Chunk::Marker(reader.epoch.get());
                reader.epoch.set(reader.epoch.get() + 1);
                reader.next_seq.set(0);
                break;
            }
        }
        self.head.0.store(pos, Ordering::Release);
        self.wake_producer();
        Ok(outcome)
    }
}

/// Why a bounded-wait send ([`IngressProducer::try_send`]) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The lane stayed full past the deadline (backpressure). The event
    /// was **not** enqueued and the producer's `seq` did not advance;
    /// retrying the same event later is safe and preserves the stream.
    Timeout,
    /// The sequencer is gone (dropped or its thread died); the lane
    /// will never drain again.
    Disconnected,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SendError::Timeout => "ingest lane full past the send deadline",
            SendError::Disconnected => "ingestion sequencer is gone (dropped or panicked)",
        })
    }
}

impl std::error::Error for SendError {}

/// A client-side admission handle: one of the N concurrent front doors.
///
/// Events sent through a producer are stamped `(producer, seq)` and
/// merged by the sequencer under the total `(epoch, producer, seq)`
/// order — so *what* the outcome is depends only on what each producer
/// sent, never on how the producer threads interleaved. Dropping the
/// handle closes the lane; the sequencer finishes once every lane is
/// closed and drained.
#[derive(Debug)]
pub struct IngressProducer {
    queue: Arc<Queue>,
    id: u32,
    epoch: u64,
    seq: u64,
    /// A reconnect happened and its coordinates have not been posted
    /// yet: the next enqueue must [`Queue::post_rebase`] first.
    pending_rebase: bool,
}

impl IngressProducer {
    /// This producer's id — its rank in the canonical merge order.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Sends one event, blocking while this producer's queue is full.
    ///
    /// [`ServiceEvent::PeriodTick`] is the epoch barrier, not a direct
    /// market tick: it closes this producer's current epoch (equivalent
    /// to [`IngressProducer::end_epoch`]); the sequencer fires the one
    /// global tick only after **every** producer has closed the epoch.
    pub fn send(&mut self, event: ServiceEvent) {
        self.flush_rebase();
        self.queue.push(event);
        self.advance(&event);
    }

    /// Sends every event an iterator yields with zero-copy amortized
    /// publication: items are constructed **directly into ring slots**
    /// and each acquired window is published with one release store
    /// ([`Queue::push_iter`]) instead of one fence per event.
    /// [`ServiceEvent::PeriodTick`]s inside the stream close epochs
    /// exactly like [`IngressProducer::send`]. Semantically identical
    /// to sending every event individually — just cheaper.
    ///
    /// # Panics
    /// Like [`IngressProducer::send`]: panics when the sequencer is
    /// gone.
    pub fn send_iter(&mut self, events: impl IntoIterator<Item = ServiceEvent>) {
        self.flush_rebase();
        let epoch = Cell::new(self.epoch);
        let seq = Cell::new(self.seq);
        self.queue
            .push_iter(events.into_iter().inspect(|event| match event {
                ServiceEvent::PeriodTick => {
                    epoch.set(epoch.get() + 1);
                    seq.set(0);
                }
                _ => seq.set(seq.get() + 1),
            }));
        self.epoch = epoch.get();
        self.seq = seq.get();
    }

    /// [`IngressProducer::send_iter`] over a slice.
    pub fn send_batch(&mut self, events: &[ServiceEvent]) {
        self.send_iter(events.iter().copied());
    }

    /// Closes this producer's current epoch: its contribution to the
    /// next tick's barrier. Subsequent sends belong to the next epoch.
    pub fn end_epoch(&mut self) {
        self.send(ServiceEvent::PeriodTick);
    }

    /// Advances the producer-side stamp counters past a sent event,
    /// mirroring the consumer's arithmetic exactly.
    fn advance(&mut self, event: &ServiceEvent) {
        match event {
            ServiceEvent::PeriodTick => {
                self.epoch += 1;
                self.seq = 0;
            }
            _ => self.seq += 1,
        }
    }

    /// Posts the coordinates of a not-yet-announced reconnect, if any,
    /// immediately before the slot they describe is written.
    fn flush_rebase(&mut self) {
        if std::mem::take(&mut self.pending_rebase) {
            self.queue.post_rebase(self.epoch, self.seq);
        }
    }

    /// Closes the lane (also happens on drop). Events sent before the
    /// close are still delivered; an epoch left open contributes its
    /// events to the epoch but not a barrier vote, so a tick fires only
    /// if some *other* producer closed that epoch explicitly.
    pub fn close(self) {}

    /// Bounded-wait send: like [`IngressProducer::send`] but waits for
    /// ring space at most `timeout` and reports a dead sequencer as
    /// [`SendError::Disconnected`] instead of panicking. On any error
    /// the producer's counters are untouched (`seq` only advances on a
    /// successful enqueue), so the caller can back off and retry the
    /// same event without corrupting the stream.
    pub fn try_send(&mut self, event: ServiceEvent, timeout: Duration) -> Result<(), SendError> {
        // Posting the rebase before a send that may time out is safe:
        // the record names the position the next *successful* enqueue
        // will occupy, whatever kind of slot that turns out to be.
        self.flush_rebase();
        // lint-allow(det-wallclock): caller-facing timeout for backpressure; never enters the event stream
        let deadline = Instant::now() + timeout;
        self.queue.push_deadline(event, deadline)?;
        self.advance(&event);
        Ok(())
    }

    /// Simulates a producer crash: consumes the handle **without**
    /// closing its lane (unlike drop). The epoch stays open, so the
    /// barrier waits — exactly a wedged client — until a supervisor
    /// [`AbandonedLane::reconnect`]s and finishes (or re-drives) the
    /// epoch. Testkit `FaultPlan` uses this for seeded producer kills.
    pub fn abandon(self) -> AbandonedLane {
        let this = std::mem::ManuallyDrop::new(self);
        AbandonedLane {
            // SAFETY: `this` is ManuallyDrop and never used again, so
            // the Arc is moved out exactly once and Drop (which would
            // close the lane) never runs.
            queue: unsafe { std::ptr::read(&this.queue) },
            id: this.id,
        }
    }
}

/// The lane of an abandoned ("crashed") producer, still open for a
/// reconnect ([`IngressProducer::abandon`]).
#[derive(Debug)]
pub struct AbandonedLane {
    queue: Arc<Queue>,
    id: u32,
}

impl AbandonedLane {
    /// The abandoned producer's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Resumes the lane at explicit coordinates: the supervisor's
    /// reconnect path. `epoch`/`seq` name the **next** event to send —
    /// resuming at the last acked `(epoch, seq + 1)` replays nothing;
    /// resuming earlier re-sends events the service's per-producer
    /// watermark suppresses idempotently (at-least-once delivery). The
    /// coordinates travel to the sequencer as an out-of-band [`Rebase`]
    /// record posted just before the reconnected producer's first
    /// enqueue — the one discontinuity the ring's implicit stamping
    /// cannot carry in-band.
    pub fn reconnect(self, epoch: u64, seq: u64) -> IngressProducer {
        IngressProducer {
            queue: self.queue,
            id: self.id,
            epoch,
            seq,
            pending_rebase: true,
        }
    }
}

impl Drop for IngressProducer {
    fn drop(&mut self) {
        self.queue.close();
    }
}

/// The sequencer half of the ingestion front-end: merges N producer
/// lanes into the canonical event order and drives a [`ShardedService`].
///
/// Dropping it without (or while) sequencing — including the unwind of
/// a panic inside the reducer — marks every lane's consumer as gone,
/// which wakes blocked producers and makes their next
/// [`IngressProducer::send`] panic with a clear message instead of
/// hanging forever on backpressure no one will ever drain.
#[derive(Debug)]
pub struct IngestService {
    queues: Vec<Arc<Queue>>,
}

impl Drop for IngestService {
    fn drop(&mut self) {
        for queue in &self.queues {
            queue.close_consumer();
        }
    }
}

impl IngestService {
    /// Builds the front-end: the sequencer half plus one
    /// [`IngressProducer`] handle per lane.
    ///
    /// # Panics
    /// Panics if `config.producers` or `config.queue_capacity` is zero.
    pub fn new(config: IngestConfig) -> (Self, Vec<IngressProducer>) {
        assert!(config.producers >= 1, "need at least one producer");
        assert!(config.queue_capacity >= 1, "queues need at least one slot");
        let queues: Vec<Arc<Queue>> = (0..config.producers)
            .map(|_| Arc::new(Queue::new(config.queue_capacity)))
            .collect();
        let producers = queues
            .iter()
            .enumerate()
            .map(|(id, queue)| IngressProducer {
                queue: Arc::clone(queue),
                id: id as u32,
                epoch: 0,
                seq: 0,
                pending_rebase: false,
            })
            .collect();
        (Self { queues }, producers)
    }

    /// Number of producer lanes.
    pub fn producer_count(&self) -> usize {
        self.queues.len()
    }

    /// Runs the sequencer on the calling thread until every producer
    /// closes: merges the lanes under the total `(epoch, producer, seq)`
    /// order into `service`, firing one global `PeriodTick` per epoch
    /// barrier. Returns the number of epochs (ticks) fired.
    ///
    /// The epoch counter starts at the service's
    /// [`periods_served`](ShardedService::periods_served), so a
    /// *recovered* service resumes sequencing where the journal left
    /// off (producers reconnect at their acked coordinates).
    ///
    /// # Errors
    /// [`ServiceError::Poisoned`] / [`ServiceError::Journal`] from the
    /// reducer stop sequencing immediately (the service is left in its
    /// failed state for journal recovery). Per-event *rejections* are
    /// not errors: the reducer counts them and the stream keeps going.
    pub fn sequence(self, service: &mut ShardedService) -> Result<u64, ServiceError> {
        self.sequence_with(service, |_, _| {})
    }

    /// [`IngestService::sequence`] with a per-tick observer, called
    /// right after each epoch's global tick with the epoch index and
    /// the service (e.g. for O(1) [`ShardedService::outcome_snapshot`]
    /// monitoring, or the per-epoch oracle checks in the test suite).
    pub fn sequence_with(
        self,
        service: &mut ShardedService,
        mut on_tick: impl FnMut(u64, &ShardedService),
    ) -> Result<u64, ServiceError> {
        let first_epoch = u64::from(service.periods_served());
        let mut epoch = first_epoch;
        loop {
            // Did any producer close this epoch with a marker (rather
            // than by closing its lane)? Only markers vote for a tick:
            // a fully closed producer set with trailing unmarked events
            // leaves that churn staged, exactly like serial `push`
            // without a final `PeriodTick`.
            let mut epoch_open = false;
            for (producer, queue) in self.queues.iter().enumerate() {
                // A recovered service already holds a watermark inside
                // this epoch; a reconnected producer resuming exactly
                // after its ack is gap-free relative to *it*, not to 0.
                let mut expected_seq = match service.watermark(producer as u32) {
                    Some((e, s)) if e == epoch => s + 1,
                    _ => 0,
                };
                loop {
                    // Runs are admitted zero-copy out of ring memory:
                    // the callback borrows the claimed slots, and the
                    // ring frees them only after it returns.
                    let outcome = queue.pop_epoch_run(|run_epoch, first_seq, events| {
                        debug_assert_eq!(
                            run_epoch, epoch,
                            "producer {producer} leaked an event across its epoch marker"
                        );
                        // `<=` (not `==`): a reconnected producer may
                        // re-send acked events (at-least-once); the
                        // service's watermark suppresses them. Fresh
                        // events must still arrive gap-free in order —
                        // within a run the ring's implicit stamping
                        // guarantees consecutive seqs.
                        debug_assert!(
                            first_seq <= expected_seq,
                            "producer {producer} events arrived with a seq gap"
                        );
                        expected_seq = expected_seq.max(first_seq + events.len() as u64);
                        match service.push_stamped_run(
                            producer as u32,
                            run_epoch,
                            first_seq,
                            events,
                        ) {
                            Ok(()) | Err(ServiceError::Rejected(_)) => Ok(()),
                            Err(fatal) => Err(fatal),
                        }
                    })?;
                    match outcome {
                        Chunk::Marker(e) => {
                            debug_assert_eq!(e, epoch, "epoch markers out of order");
                            epoch_open = true;
                            break;
                        }
                        Chunk::Progress => continue,
                        Chunk::Closed => break,
                    }
                }
            }
            if !epoch_open {
                return Ok(epoch - first_epoch);
            }
            service.push_stamped(TICK_PRODUCER, epoch, 0, ServiceEvent::PeriodTick)?;
            on_tick(epoch, service);
            epoch += 1;
        }
    }

    /// Moves `service` onto a dedicated sequencer thread (the online
    /// deployment shape: producers are client threads, the sequencer
    /// runs in the background). Join the returned handle to get the
    /// service back once every producer has closed.
    pub fn spawn(self, service: ShardedService) -> SequencerHandle {
        let handle = std::thread::spawn(move || {
            let mut service = service;
            let epochs = self.sequence(&mut service)?;
            Ok((service, epochs))
        });
        SequencerHandle { handle }
    }
}

/// Why a background sequencer died ([`SequencerHandle::join`]): either
/// its thread panicked (e.g. a panicking strategy unwound through the
/// reducer — the panic payload is preserved verbatim) or the reducer
/// returned a fatal [`ServiceError`].
pub struct SequencerPanic {
    cause: SequencerCause,
}

enum SequencerCause {
    Panicked(Box<dyn std::any::Any + Send + 'static>),
    Failed(ServiceError),
}

impl SequencerPanic {
    /// Human-readable description of the failure (`&str`/`String`
    /// panic payloads verbatim).
    pub fn message(&self) -> String {
        match &self.cause {
            SequencerCause::Panicked(payload) => {
                if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "sequencer thread panicked with a non-string payload".to_string()
                }
            }
            SequencerCause::Failed(e) => e.to_string(),
        }
    }

    /// The fatal [`ServiceError`], when the reducer failed typed-ly
    /// (as opposed to an unwinding panic).
    pub fn service_error(&self) -> Option<&ServiceError> {
        match &self.cause {
            SequencerCause::Failed(e) => Some(e),
            SequencerCause::Panicked(_) => None,
        }
    }

    /// The original panic payload, when the thread unwound.
    pub fn into_panic_payload(self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        match self.cause {
            SequencerCause::Panicked(payload) => Some(payload),
            SequencerCause::Failed(_) => None,
        }
    }
}

impl std::fmt::Debug for SequencerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequencerPanic")
            .field("message", &self.message())
            .finish()
    }
}

impl std::fmt::Display for SequencerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sequencer died: {}", self.message())
    }
}

impl std::error::Error for SequencerPanic {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.service_error()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Join handle of a background sequencer ([`IngestService::spawn`]).
#[derive(Debug)]
pub struct SequencerHandle {
    handle: std::thread::JoinHandle<Result<(ShardedService, u64), ServiceError>>,
}

impl SequencerHandle {
    /// Waits for every producer to close and returns the driven service
    /// together with the number of epochs fired.
    ///
    /// A sequencer-thread death — an unwinding panic (say, from a
    /// panicking strategy) or a fatal reducer error — surfaces as a
    /// typed [`SequencerPanic`] with the payload preserved, never an
    /// abort or a hang ([`IngestService`]'s drop already woke blocked
    /// producers when the thread unwound).
    pub fn join(self) -> Result<(ShardedService, u64), SequencerPanic> {
        match self.handle.join() {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(e)) => Err(SequencerPanic {
                cause: SequencerCause::Failed(e),
            }),
            Err(payload) => Err(SequencerPanic {
                cause: SequencerCause::Panicked(payload),
            }),
        }
    }

    /// Whether the sequencer thread has finished (without blocking).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// The serial event list of one ground-truth period: worker arrivals in
/// admission order, then task requests in stream order — exactly the
/// per-period order [`crate::replay`] pushes. Splitting these lists
/// into contiguous producer chunks (see [`chunk_bounds`]) reproduces
/// the serial stream under the `(epoch, producer, seq)` merge.
pub fn period_events(period: &PeriodData) -> Vec<ServiceEvent> {
    let mut events = Vec::with_capacity(period.workers.len() + period.tasks.len());
    events.extend(
        period
            .workers
            .iter()
            .map(|&worker| ServiceEvent::WorkerArrive { worker }),
    );
    events.extend(
        period
            .tasks
            .iter()
            .map(|&task| ServiceEvent::TaskRequest { task }),
    );
    events
}

/// Balanced contiguous chunk boundaries: splits `n` items into `parts`
/// runs whose lengths differ by at most one (`bounds.len() == parts +
/// 1`; chunk `i` is `bounds[i]..bounds[i + 1]`). Assigning chunk `i` to
/// producer `i` makes the canonical `(producer, seq)` merge reproduce
/// the original item order.
pub fn chunk_bounds(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts >= 1, "need at least one chunk");
    (0..=parts).map(|i| i * n / parts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServiceConfig, ShardedService};
    use maps_core::StrategyKind;
    use maps_simulator::{GroundWorker, MatchPolicy};
    use maps_spatial::{GridSpec, Point, Rect};

    fn service(shards: usize) -> ShardedService {
        ShardedService::new(
            GridSpec::square(Rect::square(10.0), 2),
            MatchPolicy::Consume,
            StrategyKind::BaseP,
            ServiceConfig {
                shards,
                ..ServiceConfig::default()
            },
        )
    }

    fn worker(x: f64) -> GroundWorker {
        GroundWorker {
            location: Point::new(x, 1.0),
            radius: 4.0,
            duration: u32::MAX,
        }
    }

    #[test]
    fn chunk_bounds_are_balanced_and_cover() {
        assert_eq!(chunk_bounds(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(chunk_bounds(2, 4), vec![0, 0, 1, 1, 2]);
        assert_eq!(chunk_bounds(0, 2), vec![0, 0, 0]);
        for n in 0..40usize {
            for parts in 1..9usize {
                let bounds = chunk_bounds(n, parts);
                assert_eq!(bounds[0], 0);
                assert_eq!(*bounds.last().unwrap(), n);
                for w in bounds.windows(2) {
                    assert!(w[0] <= w[1]);
                    assert!(w[1] - w[0] <= n.div_ceil(parts));
                }
            }
        }
    }

    /// The tick barrier: no global tick fires until *every* producer
    /// has closed the epoch.
    #[test]
    fn tick_waits_for_every_producer() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 2,
            queue_capacity: 8,
        });
        let p1 = producers.pop().unwrap();
        let mut p0 = producers.pop().unwrap();
        p0.send(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        p0.send(ServiceEvent::PeriodTick);
        p0.close();
        let sequencer = std::thread::spawn(move || {
            let mut svc = service(2);
            let epochs = ingest.sequence(&mut svc).unwrap();
            (svc.periods_served(), epochs)
        });
        // p1 has not voted: the sequencer must still be blocked on its
        // lane (coarse check — the real ordering proof is the oracle
        // suite; this only exercises the happy unblocking path).
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!sequencer.is_finished(), "tick fired before the barrier");
        let mut p1 = p1;
        p1.send(ServiceEvent::PeriodTick);
        p1.close();
        let (periods, epochs) = sequencer.join().unwrap();
        assert_eq!(periods, 1);
        assert_eq!(epochs, 1);
    }

    /// Unmarked trailing events stay staged — serial `push` semantics
    /// for a stream that ends without a final tick.
    #[test]
    fn close_without_epoch_end_stages_but_does_not_tick() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 4,
        });
        let mut p0 = producers.pop().unwrap();
        p0.send(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        p0.close();
        let mut svc = service(1);
        let epochs = ingest.sequence(&mut svc).unwrap();
        assert_eq!(epochs, 0);
        assert_eq!(svc.periods_served(), 0);
        assert_eq!(svc.admitted_workers(), 1, "event delivered, churn staged");
        assert_eq!(svc.live_workers(), 0, "no tick: never applied");
    }

    /// A dead sequencer (dropped, or its thread panicked) must turn a
    /// producer's next send into a visible panic, not an eternal block
    /// on backpressure no one will drain — even when the ring still has
    /// room (the slot could never be consumed either way).
    #[test]
    fn producer_send_panics_when_sequencer_is_gone() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 8,
        });
        let mut p0 = producers.pop().unwrap();
        drop(ingest);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(1.0),
            });
        }));
        assert!(result.is_err(), "send should fail fast, not block");
        // The handle is still droppable afterwards (the ring was not
        // poisoned by the in-lock panic path).
        drop(p0);
    }

    /// Satellite regression: a panic in the background sequencer thread
    /// (here: a strategy that panics on its first `price_period`) must
    /// surface from `join` as a typed `Err` with the payload preserved
    /// — never a silent abort, a swallowed unwind, or a hang.
    #[test]
    fn sequencer_panic_surfaces_as_typed_error_with_payload() {
        struct Bomb;
        impl maps_core::PricingStrategy for Bomb {
            fn name(&self) -> &'static str {
                "Bomb"
            }
            fn calibrate(&mut self, _probe: &mut dyn maps_core::DemandProbe) {}
            fn price_period(
                &mut self,
                _input: &maps_core::PeriodInput<'_>,
            ) -> maps_core::PriceSchedule {
                panic!("strategy exploded on purpose");
            }
            fn observe(&mut self, _feedback: &[maps_core::Observation]) {}
        }
        let svc = ShardedService::with_strategy(
            GridSpec::square(Rect::square(10.0), 2),
            MatchPolicy::Consume,
            Box::new(Bomb),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
        );
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 8,
        });
        let mut p0 = producers.pop().unwrap();
        let sequencer = ingest.spawn(svc);
        p0.send(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        p0.send(ServiceEvent::PeriodTick);
        // The tick detonates the strategy; the lane may already be dead
        // by the time we close, so tolerate the fail-fast panic path.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || p0.close()));
        let err = sequencer
            .join()
            .expect_err("sequencer must report the panic");
        assert!(
            err.message().contains("strategy exploded on purpose"),
            "payload lost: {err:?}"
        );
        assert!(err.service_error().is_none(), "this was an unwind");
        let payload = err.into_panic_payload().expect("panic payload preserved");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"strategy exploded on purpose")
        );
    }

    /// `try_send` bounds its wait and reports backpressure/disconnects
    /// as typed errors; `seq` advances only on success so a timed-out
    /// send can simply be retried.
    #[test]
    fn try_send_times_out_and_survives_retry() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 2,
        });
        let mut p0 = producers.pop().unwrap();
        let e = ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        };
        let short = Duration::from_millis(5);
        assert_eq!(p0.try_send(e, short), Ok(()));
        assert_eq!(p0.try_send(e, short), Ok(()));
        // Ring full, no sequencer draining: bounded wait, then timeout.
        assert_eq!(p0.try_send(e, short), Err(SendError::Timeout));
        // The timed-out event was not enqueued and seq did not advance:
        // retrying after the sequencer drains keeps the stream gapless.
        let mut svc = service(1);
        let sequencer = std::thread::spawn(move || ingest.sequence(&mut svc).map(|e| (svc, e)));
        let retry_deadline = Duration::from_secs(30);
        assert_eq!(p0.try_send(e, retry_deadline), Ok(()));
        assert_eq!(
            p0.try_send(ServiceEvent::PeriodTick, retry_deadline),
            Ok(())
        );
        p0.close();
        let (svc, epochs) = sequencer.join().unwrap().unwrap();
        assert_eq!(epochs, 1);
        assert_eq!(svc.admitted_workers(), 3, "exactly the successful sends");
    }

    #[test]
    fn try_send_reports_dead_sequencer_as_disconnected() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 8,
        });
        let mut p0 = producers.pop().unwrap();
        drop(ingest);
        assert_eq!(
            p0.try_send(
                ServiceEvent::WorkerArrive {
                    worker: worker(1.0)
                },
                Duration::from_millis(5)
            ),
            Err(SendError::Disconnected)
        );
    }

    /// A producer "crash" (abandon: lane left open, no barrier vote)
    /// holds the epoch barrier until a supervisor reconnects; an
    /// at-least-once resend across the reconnect is suppressed by the
    /// service's watermark, leaving the outcome identical to the
    /// uninterrupted stream.
    #[test]
    fn abandoned_producer_reconnects_idempotently() {
        let run = |resend: bool| {
            let (ingest, mut producers) = IngestService::new(IngestConfig {
                producers: 2,
                queue_capacity: 16,
            });
            let mut p1 = producers.pop().unwrap();
            let mut p0 = producers.pop().unwrap();
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(1.0),
            });
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(2.0),
            });
            // p0 "crashes" mid-epoch after two sends (last acked seq 1).
            let lane = p0.abandon();
            p1.send(ServiceEvent::WorkerArrive {
                worker: worker(8.0),
            });
            p1.send(ServiceEvent::PeriodTick);
            p1.close();
            let sequencer = std::thread::spawn(move || {
                let mut svc = service(2);
                ingest.sequence(&mut svc).map(|e| (svc, e))
            });
            // The barrier must hold: p0's epoch is still open.
            std::thread::sleep(Duration::from_millis(20));
            assert!(!sequencer.is_finished(), "tick fired past a dead producer");
            // Supervisor reconnects; optionally re-sends the acked
            // event (at-least-once) before finishing the epoch.
            let mut p0 = lane.reconnect(0, if resend { 1 } else { 2 });
            if resend {
                p0.send(ServiceEvent::WorkerArrive {
                    worker: worker(2.0),
                });
            }
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(3.0),
            });
            p0.send(ServiceEvent::PeriodTick);
            p0.close();
            let (svc, epochs) = sequencer.join().unwrap().unwrap();
            assert_eq!(epochs, 1);
            (
                svc.suppressed_duplicates(),
                svc.into_outcome().deterministic_bits(),
            )
        };
        let (clean_suppressed, clean_bits) = run(false);
        let (resend_suppressed, resend_bits) = run(true);
        assert_eq!(clean_suppressed, 0);
        assert_eq!(resend_suppressed, 1, "the resend was suppressed");
        // The duplicate-suppression counter itself participates in the
        // bits, so compare the rest: zero it out in place.
        // suppressed_duplicates sits just before the latency telemetry
        // words at the tail of the encoding.
        let idx = clean_bits.len() - 1 - maps_telemetry::LatencyTelemetry::WORDS;
        let mut clean = clean_bits.clone();
        let mut resent = resend_bits.clone();
        assert_eq!(clean[idx], 0);
        assert_eq!(resent[idx], 1);
        clean[idx] = 0;
        resent[idx] = 0;
        assert_eq!(clean, resent, "resend perturbed the outcome");
    }

    // ---- ring unit tests (PR 7): the Queue in isolation ----------------

    /// The x-coordinate a test event was built with (events carry no
    /// `PartialEq`; the coordinate is the identity).
    fn x_of(event: &ServiceEvent) -> f64 {
        match event {
            ServiceEvent::WorkerArrive { worker } => worker.location.x,
            other => panic!("unexpected event {other:?}"),
        }
    }

    /// Drains everything currently poppable, returning each admitted
    /// run as `(epoch, first_seq, xs)`.
    fn drain_runs(queue: &Queue) -> Vec<(u64, u64, Vec<f64>)> {
        let mut runs = Vec::new();
        loop {
            let outcome = queue
                .pop_epoch_run(|epoch, first_seq, events| {
                    runs.push((epoch, first_seq, events.iter().map(x_of).collect()));
                    Ok(())
                })
                .expect("admit never fails here");
            match outcome {
                Chunk::Closed => break,
                Chunk::Marker(_) | Chunk::Progress => {
                    // Only keep draining while something is published;
                    // otherwise pop would block on the open lane.
                    if queue.tail.0.load(Ordering::Acquire) == queue.head.0.load(Ordering::Relaxed)
                    {
                        break;
                    }
                }
            }
        }
        runs
    }

    /// Wraparound: a ring smaller than the stream must reuse slots
    /// without reordering, losing, or corrupting events, and the
    /// implicit `(epoch, seq)` coordinates must advance in lock-step
    /// across the physical boundary.
    #[test]
    fn ring_wraparound_preserves_order_and_coordinates() {
        let queue = Queue::new(4);
        let mut sent = Vec::new();
        let mut got = Vec::new();
        let mut x = 0.0f64;
        for round in 0..5 {
            // Alternate run lengths so the wrap point drifts through
            // every slot over the rounds.
            for _ in 0..=(round % 4) {
                queue.push(ServiceEvent::WorkerArrive { worker: worker(x) });
                sent.push(x);
                x += 1.0;
            }
            for (_, _, xs) in drain_runs(&queue) {
                got.extend(xs);
            }
        }
        assert_eq!(got, sent, "wraparound reordered or lost events");
        assert!(
            queue.tail.0.load(Ordering::Relaxed) > queue.capacity,
            "the test never actually wrapped"
        );
    }

    /// A published window that crosses the physical wrap boundary is
    /// handed to `admit` as two contiguous runs with continuous
    /// sequence numbers (the zero-copy slices cannot straddle the
    /// buffer end).
    #[test]
    fn wrap_boundary_splits_runs_with_continuous_seqs() {
        let queue = Queue::new(4);
        for i in 0..3 {
            queue.push(ServiceEvent::WorkerArrive {
                worker: worker(i as f64),
            });
        }
        assert_eq!(drain_runs(&queue).len(), 1, "no wrap yet: one run");
        // Positions 3..7 span the wrap at 4: one batched publish, two
        // segments on the consumer side.
        queue.push_iter((3..7).map(|i| ServiceEvent::WorkerArrive {
            worker: worker(i as f64),
        }));
        let runs = drain_runs(&queue);
        assert_eq!(
            runs,
            vec![(0, 3, vec![3.0]), (0, 4, vec![4.0, 5.0, 6.0]),],
            "wrap split misplaced the seam or broke seq continuity"
        );
    }

    /// Full/empty boundary transitions: `wait_space` counts free slots
    /// against the *logical* capacity (which may be below the physical
    /// power-of-two buffer), a full ring times out a bounded push, and
    /// draining exactly one event reopens exactly one slot.
    #[test]
    fn full_and_empty_boundaries_respect_logical_capacity() {
        for capacity in [1usize, 2, 3] {
            let queue = Queue::new(capacity);
            assert_eq!(queue.wait_space(0, None), Ok(capacity as u64));
            let quick = || Instant::now() + Duration::from_millis(2);
            for i in 0..capacity {
                queue
                    .push_deadline(
                        ServiceEvent::WorkerArrive {
                            worker: worker(i as f64),
                        },
                        quick(),
                    )
                    .expect("ring not full yet");
            }
            assert_eq!(
                queue.push_deadline(
                    ServiceEvent::WorkerArrive {
                        worker: worker(99.0)
                    },
                    quick(),
                ),
                Err(SendError::Timeout),
                "capacity {capacity}: logical bound not enforced"
            );
            // Drain one: exactly one slot reopens.
            let mut seen = 0usize;
            queue
                .pop_epoch_run(|_, _, events| {
                    seen = events.len();
                    Ok(())
                })
                .expect("admit never fails");
            assert_eq!(seen, capacity, "drain claims everything published");
            assert_eq!(
                queue.wait_space(queue.tail.0.load(Ordering::Relaxed), None),
                Ok(capacity as u64),
                "freed slots not visible to the producer"
            );
        }
    }

    /// Batched publication: `push_iter` publishes each acquired window
    /// with a single release store, so the consumer sees the whole
    /// window at once — one `admit` run, not one per event.
    #[test]
    fn batched_publish_is_visible_as_one_run() {
        let queue = Queue::new(16);
        queue.push_iter((0..5).map(|i| ServiceEvent::WorkerArrive {
            worker: worker(i as f64),
        }));
        let runs = drain_runs(&queue);
        assert_eq!(runs.len(), 1, "one window, one run: {runs:?}");
        assert_eq!(runs[0], (0, 0, vec![0.0, 1.0, 2.0, 3.0, 4.0]));
    }

    /// The capacity-1 degenerate ring: every push rendezvouses with a
    /// pop, epoch markers still close epochs, and the coordinate
    /// arithmetic stays in lock-step.
    #[test]
    fn capacity_one_ring_rendezvous() {
        let queue = Queue::new(1);
        queue.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        assert_eq!(
            queue.push_deadline(
                ServiceEvent::WorkerArrive {
                    worker: worker(2.0)
                },
                Instant::now() + Duration::from_millis(2),
            ),
            Err(SendError::Timeout),
            "second slot must not exist"
        );
        assert_eq!(drain_runs(&queue), vec![(0, 0, vec![1.0])]);
        queue.push(ServiceEvent::PeriodTick);
        let outcome = queue.pop_epoch_run(|_, _, _| panic!("marker-only drain admits nothing"));
        assert!(matches!(outcome, Ok(Chunk::Marker(0))));
        queue.push(ServiceEvent::WorkerArrive {
            worker: worker(3.0),
        });
        assert_eq!(
            drain_runs(&queue),
            vec![(1, 0, vec![3.0])],
            "epoch advanced and seq reset after the marker"
        );
    }

    /// A [`Rebase`] record posted before its slot is written retargets
    /// the consumer's implicit coordinates at exactly that position.
    #[test]
    fn rebase_record_retargets_reader_coordinates() {
        let queue = Queue::new(8);
        queue.push(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        // Reconnect discontinuity: the next slot carries (epoch 4, seq 7).
        queue.post_rebase(4, 7);
        queue.push(ServiceEvent::WorkerArrive {
            worker: worker(2.0),
        });
        queue.push(ServiceEvent::WorkerArrive {
            worker: worker(3.0),
        });
        let runs = drain_runs(&queue);
        assert_eq!(
            runs,
            vec![(0, 0, vec![1.0]), (4, 7, vec![2.0, 3.0])],
            "rebase must split the run and retarget (epoch, seq)"
        );
        assert_eq!(queue.rebase_pending.load(Ordering::Relaxed), 0);
    }

    /// Closing an empty ring drains to `Closed`; closing with staged
    /// events hands them over first.
    #[test]
    fn close_drains_then_reports_closed() {
        let queue = Queue::new(4);
        queue.push(ServiceEvent::WorkerArrive {
            worker: worker(5.0),
        });
        queue.close();
        assert_eq!(drain_runs(&queue), vec![(0, 0, vec![5.0])]);
        let outcome = queue.pop_epoch_run(|_, _, _| panic!("nothing left to admit"));
        assert!(matches!(outcome, Ok(Chunk::Closed)));
    }

    /// A capacity-1 queue forces maximal backpressure; the stream must
    /// still complete and agree with serial push.
    #[test]
    fn capacity_one_round_trips_through_spawned_sequencer() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 1,
        });
        let mut p0 = producers.pop().unwrap();
        let sequencer = ingest.spawn(service(2));
        for i in 0..20 {
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + (i % 8) as f64),
            });
            p0.send(ServiceEvent::PeriodTick);
        }
        p0.close();
        let (svc, epochs) = sequencer.join().unwrap();
        assert_eq!(epochs, 20);
        assert_eq!(svc.periods_served(), 20);
        assert_eq!(svc.admitted_workers(), 20);
    }
}

/// Model-checked ring scenarios (`cargo test -p maps-service --features
/// maps_model`): the **shipping** `Queue` above, compiled against
/// `maps-model`'s tracked sync types through the `crate::sync` facade,
/// explored at every interleaving the C11 memory model allows. The
/// small configurations (capacity 1 and 2, one producer + the root
/// consumer) are explored exhaustively; the larger wrap-boundary batch
/// uses seeded bounded exploration with a pinned schedule count. The
/// `seeded_*` tests are the known-bad gallery: they re-introduce the
/// pre-PR-7 unfenced wake and a `Relaxed`-published tail in miniature
/// and MUST fail the exploration — if one ever stops being detected,
/// the checker has rotted and CI exits 1.
#[cfg(all(test, feature = "maps_model"))]
mod model_tests {
    use super::*;
    use maps_model::{explore, thread, Builder, FailureKind};

    fn ev(id: u32) -> ServiceEvent {
        ServiceEvent::WorkerDepart { id }
    }

    fn depart_id(e: &ServiceEvent) -> u32 {
        match e {
            ServiceEvent::WorkerDepart { id } => *id,
            other => panic!("unexpected event in ring: {other:?}"),
        }
    }

    /// Drains the queue until the producer closes it, returning every
    /// admitted `(epoch, first_seq, ids)` run.
    fn drain(q: &Queue) -> Vec<(u64, u64, Vec<u32>)> {
        let mut got = Vec::new();
        loop {
            let chunk = q
                .pop_epoch_run(|epoch, seq, evs| {
                    got.push((epoch, seq, evs.iter().map(depart_id).collect()));
                    Ok(())
                })
                .expect("admit never fails in model scenarios");
            if matches!(chunk, Chunk::Closed) {
                break;
            }
        }
        got
    }

    /// Flattens runs into per-event `(epoch, seq, id)` stamps.
    fn flatten(runs: &[(u64, u64, Vec<u32>)]) -> Vec<(u64, u64, u32)> {
        runs.iter()
            .flat_map(|(e, s, ids)| {
                ids.iter()
                    .enumerate()
                    .map(move |(i, id)| (*e, s + i as u64, *id))
            })
            .collect()
    }

    /// Capacity-1 push/pop, fully exhaustive: every interleaving of one
    /// push + close against the draining consumer, with no preemption
    /// bound and no schedule sampling (~27k distinct executions after
    /// sleep-set pruning). This covers the empty-ring consumer park and
    /// the close/wake handshake at the smallest ring size.
    #[test]
    fn model_push_pop_capacity_1() {
        maps_model::check(|| {
            let q = Arc::new(Queue::new(1));
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.push(ev(1));
                q2.close();
            });
            let runs = drain(&q);
            t.join().unwrap();
            assert_eq!(flatten(&runs), vec![(0, 0, 1)]);
        });
    }

    /// Capacity-2 push/pop, fully exhaustive (same budget as the
    /// capacity-1 scenario): the logical capacity rides a larger
    /// physical buffer, so the mask arithmetic and the publish window
    /// differ from capacity 1 even for a single event.
    #[test]
    fn model_push_pop_capacity_2() {
        maps_model::check(|| {
            let q = Arc::new(Queue::new(2));
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.push(ev(1));
                q2.close();
            });
            let runs = drain(&q);
            t.join().unwrap();
            assert_eq!(flatten(&runs), vec![(0, 0, 1)]);
        });
    }

    /// Capacity-2 ring with an in-band epoch-end marker: the consumer
    /// must advance its epoch counter at the marker and stamp the next
    /// event `(epoch 1, seq 0)`. Three pushes exceed the exhaustive
    /// budget, so this runs every schedule with up to 3 forced
    /// preemptions (~1.1k executions) — the CHESS-style bound that
    /// catches any bug needing three or fewer context switches.
    #[test]
    fn model_epoch_marker_stamps_next_event() {
        Builder::new().preemption_bound(3).check(|| {
            let q = Arc::new(Queue::new(2));
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.push(ev(1));
                q2.push(ServiceEvent::PeriodTick);
                q2.push(ev(2));
                q2.close();
            });
            let runs = drain(&q);
            t.join().unwrap();
            assert_eq!(flatten(&runs), vec![(0, 0, 1), (1, 0, 2)]);
        });
    }

    /// The full producer-park / consumer-wake rendezvous: two pushes
    /// through a capacity-1 ring force the producer to park on the full
    /// ring while the consumer parks on the empty one, so both SeqCst
    /// fence handshakes are crossed in every schedule with up to 4
    /// forced preemptions (~6.4k executions). A lost wakeup on either
    /// side surfaces as a model deadlock because frozen model time
    /// never fires the backpressure timeout.
    #[test]
    fn model_park_wake_rendezvous() {
        Builder::new().preemption_bound(4).check(|| {
            let q = Arc::new(Queue::new(1));
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.push(ev(7));
                q2.push(ev(8));
                q2.close();
            });
            let runs = drain(&q);
            t.join().unwrap();
            assert_eq!(flatten(&runs), vec![(0, 0, 7), (0, 1, 8)]);
        });
    }

    /// Close racing a parked (or about-to-park) consumer, fully
    /// exhaustive: the consumer must always observe the close, in every
    /// interleaving.
    #[test]
    fn model_close_vs_park() {
        maps_model::check(|| {
            let q = Arc::new(Queue::new(1));
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.close();
            });
            let runs = drain(&q);
            t.join().unwrap();
            assert!(runs.is_empty());
        });
    }

    /// An out-of-band rebase record between two pushes: the consumer
    /// must stamp the slot after the record with the record's explicit
    /// coordinates, not its implicit count. Three ring writes, so this
    /// uses the 3-preemption bound like the marker scenario.
    #[test]
    fn model_rebase_record() {
        Builder::new().preemption_bound(3).check(|| {
            let q = Arc::new(Queue::new(2));
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.push(ev(1));
                q2.post_rebase(7, 3);
                q2.push(ev(2));
                q2.close();
            });
            let runs = drain(&q);
            t.join().unwrap();
            assert_eq!(flatten(&runs), vec![(0, 0, 1), (7, 3, 2)]);
        });
    }

    /// `try_send` racing consumer death on a full ring, fully
    /// exhaustive: the producer must always fail fast with
    /// `Disconnected` — never hang parked (model time is frozen, so a
    /// hang cannot hide behind the timeout), and never report
    /// `Timeout`.
    #[test]
    fn model_try_send_vs_consumer_death() {
        maps_model::check(|| {
            let q = Arc::new(Queue::new(1));
            q.push(ev(1)); // fill the ring; nothing will ever drain it
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.close_consumer();
            });
            let r = q.push_deadline(ev(2), Instant::now() + Duration::from_millis(5));
            t.join().unwrap();
            assert_eq!(r, Err(SendError::Disconnected));
        });
    }

    /// Wrap-boundary batched publication: capacity 3 rides a physical
    /// 4-slot buffer, so a 6-event batch wraps; each acquired window is
    /// published with a single release store. Largest state space of
    /// the suite, so this uses seeded bounded exploration with a pinned
    /// schedule count instead of exhaustive DFS.
    #[test]
    fn model_wrap_boundary_batched_publish() {
        Builder::new().bounded(0x5EED, 400).check(|| {
            let q = Arc::new(Queue::new(3));
            let q2 = Arc::clone(&q);
            let t = thread::spawn(move || {
                q2.push_iter((1..=6).map(ev));
                q2.close();
            });
            let runs = drain(&q);
            t.join().unwrap();
            assert_eq!(
                flatten(&runs),
                (1..=6u32)
                    .map(|i| (0, u64::from(i) - 1, i))
                    .collect::<Vec<_>>()
            );
        });
    }

    // ------------------------------------------------------------------
    // The known-bad gallery: seeded bugs the checker MUST report.
    // ------------------------------------------------------------------

    /// The pre-PR-7 bug in miniature: the waker publishes state and
    /// checks the parked flag **without** the SeqCst fence in between.
    /// Both relaxed accesses can then miss each other and the waiter
    /// sleeps forever — the checker must report the deadlock.
    #[test]
    fn seeded_unfenced_wake_is_detected() {
        let report = explore(|| {
            let state = Arc::new((
                Mutex::new(()),
                Condvar::new(),
                AtomicU64::new(0),      // published
                AtomicBool::new(false), // parked
            ));
            let s2 = Arc::clone(&state);
            let t = thread::spawn(move || {
                let (park, cv, published, parked) = &*s2;
                published.store(1, Ordering::Relaxed);
                // BUG (pre-PR-7): no fence(Ordering::SeqCst) here, so
                // this load can miss the waiter's parked flag...
                if parked.load(Ordering::Relaxed) {
                    drop(park.lock().expect("park mutex"));
                    cv.notify_all();
                }
            });
            let (park, cv, published, parked) = &*state;
            let guard = park.lock().expect("park mutex");
            parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            // ...while this re-check missed the waker's publish.
            if published.load(Ordering::SeqCst) == 0 {
                let _g = cv.wait(guard).expect("park mutex");
            } else {
                drop(guard);
            }
            parked.store(false, Ordering::SeqCst);
            t.join().unwrap();
        });
        let failure = report
            .failure
            .expect("the unfenced wake must be detected — checker self-test");
        assert_eq!(failure.kind, FailureKind::Deadlock, "{failure:?}");
    }

    /// The same handshake with PR 7's fence restored: no interleaving
    /// loses the wakeup (the positive control for the seed above).
    #[test]
    fn pr7_fenced_wake_has_no_lost_wakeup() {
        maps_model::check(|| {
            let state = Arc::new((
                Mutex::new(()),
                Condvar::new(),
                AtomicU64::new(0),
                AtomicBool::new(false),
            ));
            let s2 = Arc::clone(&state);
            let t = thread::spawn(move || {
                let (park, cv, published, parked) = &*s2;
                published.store(1, Ordering::Relaxed);
                fence(Ordering::SeqCst); // the PR 7 fix
                if parked.load(Ordering::Relaxed) {
                    drop(park.lock().expect("park mutex"));
                    cv.notify_all();
                }
            });
            let (park, cv, published, parked) = &*state;
            let guard = park.lock().expect("park mutex");
            parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if published.load(Ordering::SeqCst) == 0 {
                let _g = cv.wait(guard).expect("park mutex");
            } else {
                drop(guard);
            }
            parked.store(false, Ordering::SeqCst);
            t.join().unwrap();
        });
    }

    /// A deliberately `Relaxed`-published tail: the consumer's acquire
    /// load then synchronizes with nothing, so its zero-copy claim of
    /// the slot races the producer's write — the checker must report
    /// the data race.
    #[test]
    fn seeded_relaxed_tail_publish_is_detected() {
        let report = explore(|| {
            let tail = Arc::new(AtomicU64::new(0));
            let slots = Arc::new(SlotTracker::new(1));
            let (t2, s2) = (Arc::clone(&tail), Arc::clone(&slots));
            let t = thread::spawn(move || {
                s2.write(0); // fill the slot
                t2.store(1, Ordering::Relaxed); // BUG: must be Release
            });
            if tail.load(Ordering::Acquire) == 1 {
                slots.read_range(0, 1); // zero-copy claim
            }
            t.join().unwrap();
        });
        let failure = report
            .failure
            .expect("the relaxed tail publish must be detected — checker self-test");
        assert_eq!(failure.kind, FailureKind::DataRace, "{failure:?}");
    }

    /// The shipping publication protocol (release tail store) passes
    /// the same scenario (the positive control for the seed above).
    #[test]
    fn release_tail_publish_has_no_race() {
        maps_model::check(|| {
            let tail = Arc::new(AtomicU64::new(0));
            let slots = Arc::new(SlotTracker::new(1));
            let (t2, s2) = (Arc::clone(&tail), Arc::clone(&slots));
            let t = thread::spawn(move || {
                s2.write(0);
                t2.store(1, Ordering::Release);
            });
            if tail.load(Ordering::Acquire) == 1 {
                slots.read_range(0, 1);
            }
            t.join().unwrap();
        });
    }
}
