//! Bounded, multi-producer event ingestion in front of the tick
//! reducer.
//!
//! The paper's setting is fully online: requesters and workers stream
//! in *concurrently*, yet the platform must keep posting one price per
//! grid per period (Sec. 4.2) — and the whole workspace's determinism
//! contract requires the market-clearing epoch to see a **canonical**
//! event order no matter how client threads interleave. This module is
//! that front door:
//!
//! ```text
//!   client threads (N producers)                 sequencer thread
//!   ┌────────────┐  bounded ring (Mutex/Condvar)
//!   │ producer 0 │──[e₀₀ e₀₁ … ‖ epoch-end]──┐
//!   ├────────────┤                           │   merge under the total
//!   │ producer 1 │──[e₁₀ … ‖ epoch-end]──────┼─► (epoch, producer, seq)
//!   ├────────────┤                           │   order, then feed the
//!   │ producer n │──[… ‖ epoch-end]──────────┘   ShardedService; tick
//!   └────────────┘                               fires only after ALL
//!                                                producers closed the
//!                                                epoch (barrier)
//! ```
//!
//! Each [`IngressProducer`] stamps its events with a `(producer, seq)`
//! label and appends them to its **own** bounded queue (a hand-rolled
//! `Mutex`/`Condvar` ring — single producer, single consumer — so
//! producers never contend with each other, only with backpressure
//! from their own lane). A producer's [`ServiceEvent::PeriodTick`] does
//! *not* tick the market: it closes the producer's current **epoch**.
//! The sequencer drains every producer's epoch-`e` segment — in
//! producer-id order, each segment already in seq order — into the
//! [`ShardedService`], and only then fires the real global tick. The
//! tick is therefore an **epoch barrier**: the reducer never runs until
//! every producer has flushed the epoch.
//!
//! ## The interleaving-invariance contract
//!
//! The order of events fed to the service is the total
//! `(epoch, producer, seq)` order — a pure function of *what each
//! producer sent*, never of *when* it ran. Hence replaying any
//! [`GroundTruth`](maps_simulator::GroundTruth) split across 1/2/4/8
//! producers — under arbitrary thread interleavings and any queue
//! capacities — yields an outcome **bit-identical** to serial
//! [`ShardedService::push`], and therefore (by the PR 4 contract) to
//! [`Simulation::run`](maps_simulator::Simulation::run). Enforced by
//! the `ingest_oracle` test sweep (producers × shards × strategies ×
//! forced interleavings × queue capacities), the root proptest
//! `ingested_stream_matches_serial_push` (random producer partitions,
//! schedule perturbation, per-epoch outcome checks) and the
//! `ingest_throughput` row `bench_gate` fails CI without.
//!
//! ## Liveness
//!
//! Queues are bounded: a producer ahead of the sequencer blocks in
//! [`IngressProducer::send`] until its lane drains (backpressure, the
//! deliberate memory bound). The sequencer drains producers in id
//! order within an epoch, so total progress requires every producer to
//! eventually close its epoch (or close its handle) — the usual
//! contract of a barrier. External coordination that *holds producers
//! back* (e.g. a test harness serializing sends) must size queues to
//! the held-back volume, or it can deadlock against the barrier.

use crate::engine::{ServiceError, ServiceEvent, ShardedService};
use crate::journal::TICK_PRODUCER;
use maps_simulator::PeriodData;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of the ingestion front-end.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Number of producer handles (≥ 1). Any value yields bit-identical
    /// outcomes; it only controls how admission is parallelized.
    pub producers: usize,
    /// Per-producer queue capacity in slots (≥ 1; epoch-end markers
    /// occupy a slot too). Any capacity yields bit-identical outcomes;
    /// it only bounds the memory between a producer and the sequencer.
    pub queue_capacity: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            producers: 4,
            queue_capacity: 1024,
        }
    }
}

/// An event stamped with its producer-local coordinates. The triple
/// `(epoch, producer, seq)` is the total order the sequencer feeds the
/// service in.
#[derive(Debug, Clone, Copy)]
struct Stamped {
    epoch: u64,
    seq: u64,
    event: ServiceEvent,
}

/// One slot of a producer's ring: a stamped event or the marker closing
/// the producer's current epoch.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Event(Stamped),
    EpochEnd(u64),
}

/// What one bounded drain of a lane yielded.
enum Chunk {
    /// Drained up to (and consumed) the epoch-`e` end marker.
    Marker(u64),
    /// Drained some events; the epoch is still open.
    Progress,
    /// The producer closed its handle; the lane is empty forever.
    Closed,
}

#[derive(Debug, Default)]
struct Ring {
    slots: VecDeque<Slot>,
    /// The producer closed its handle: no more slots will arrive.
    closed: bool,
    /// The sequencer is gone (dropped, or its thread panicked): slots
    /// will never drain again, so producers must fail fast instead of
    /// blocking forever on a full ring.
    consumer_gone: bool,
}

/// One producer's bounded SPSC lane.
#[derive(Debug)]
struct Queue {
    capacity: usize,
    ring: Mutex<Ring>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ring: Mutex::new(Ring::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Appends one slot, blocking while the ring is at capacity.
    ///
    /// # Panics
    /// Panics (without poisoning the ring) when the sequencer is gone:
    /// the slot could never be consumed, and blocking on `not_full`
    /// would hang the producer thread forever — turning a reducer
    /// panic into a silent process hang instead of a visible failure.
    fn push(&self, slot: Slot) {
        let mut ring = self.ring.lock().expect("ingest queue poisoned");
        loop {
            if ring.consumer_gone {
                drop(ring); // release before panicking: no poison
                panic!("ingestion sequencer is gone (dropped or panicked); cannot send");
            }
            if ring.slots.len() < self.capacity {
                break;
            }
            ring = self.not_full.wait(ring).expect("ingest queue poisoned");
        }
        ring.slots.push_back(slot);
        drop(ring);
        self.not_empty.notify_one();
    }

    /// Bounded-wait variant of [`Queue::push`]: waits for ring space at
    /// most until `deadline`, and reports a dead sequencer as a typed
    /// error instead of panicking — the building block supervision
    /// loops need for retry/backoff admission.
    fn push_deadline(&self, slot: Slot, deadline: Instant) -> Result<(), SendError> {
        let mut ring = self.ring.lock().expect("ingest queue poisoned");
        loop {
            if ring.consumer_gone {
                return Err(SendError::Disconnected);
            }
            if ring.slots.len() < self.capacity {
                break;
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return Err(SendError::Timeout);
            };
            let (guard, _timeout) = self
                .not_full
                .wait_timeout(ring, remaining)
                .expect("ingest queue poisoned");
            ring = guard;
        }
        ring.slots.push_back(slot);
        drop(ring);
        self.not_empty.notify_one();
        Ok(())
    }

    fn close(&self) {
        self.ring.lock().expect("ingest queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Marks the consumer side dead and wakes any producer blocked on
    /// backpressure so it can fail fast (see [`Queue::push`]).
    fn close_consumer(&self) {
        self.ring
            .lock()
            .expect("ingest queue poisoned")
            .consumer_gone = true;
        self.not_full.notify_all();
    }

    /// Drains available events into `out`, stopping after an epoch-end
    /// marker. Blocks only while the lane is empty and open; batches
    /// everything already buffered under one lock acquisition.
    fn pop_epoch_chunk(&self, out: &mut Vec<Stamped>) -> Chunk {
        let mut ring = self.ring.lock().expect("ingest queue poisoned");
        loop {
            let mut popped = false;
            while let Some(slot) = ring.slots.pop_front() {
                popped = true;
                match slot {
                    Slot::Event(stamped) => out.push(stamped),
                    Slot::EpochEnd(epoch) => {
                        drop(ring);
                        self.not_full.notify_one();
                        return Chunk::Marker(epoch);
                    }
                }
            }
            if popped {
                drop(ring);
                self.not_full.notify_one();
                return Chunk::Progress;
            }
            if ring.closed {
                return Chunk::Closed;
            }
            ring = self.not_empty.wait(ring).expect("ingest queue poisoned");
        }
    }
}

/// Why a bounded-wait send ([`IngressProducer::try_send`]) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The lane stayed full past the deadline (backpressure). The event
    /// was **not** enqueued and the producer's `seq` did not advance;
    /// retrying the same event later is safe and preserves the stream.
    Timeout,
    /// The sequencer is gone (dropped or its thread died); the lane
    /// will never drain again.
    Disconnected,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SendError::Timeout => "ingest lane full past the send deadline",
            SendError::Disconnected => "ingestion sequencer is gone (dropped or panicked)",
        })
    }
}

impl std::error::Error for SendError {}

/// A client-side admission handle: one of the N concurrent front doors.
///
/// Events sent through a producer are stamped `(producer, seq)` and
/// merged by the sequencer under the total `(epoch, producer, seq)`
/// order — so *what* the outcome is depends only on what each producer
/// sent, never on how the producer threads interleaved. Dropping the
/// handle closes the lane; the sequencer finishes once every lane is
/// closed and drained.
#[derive(Debug)]
pub struct IngressProducer {
    queue: Arc<Queue>,
    id: u32,
    epoch: u64,
    seq: u64,
}

impl IngressProducer {
    /// This producer's id — its rank in the canonical merge order.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Sends one event, blocking while this producer's queue is full.
    ///
    /// [`ServiceEvent::PeriodTick`] is the epoch barrier, not a direct
    /// market tick: it closes this producer's current epoch (equivalent
    /// to [`IngressProducer::end_epoch`]); the sequencer fires the one
    /// global tick only after **every** producer has closed the epoch.
    pub fn send(&mut self, event: ServiceEvent) {
        match event {
            ServiceEvent::PeriodTick => self.end_epoch(),
            event => {
                let stamped = Stamped {
                    epoch: self.epoch,
                    seq: self.seq,
                    event,
                };
                self.seq += 1;
                self.queue.push(Slot::Event(stamped));
            }
        }
    }

    /// Closes this producer's current epoch: its contribution to the
    /// next tick's barrier. Subsequent sends belong to the next epoch.
    pub fn end_epoch(&mut self) {
        self.queue.push(Slot::EpochEnd(self.epoch));
        self.epoch += 1;
        self.seq = 0;
    }

    /// Closes the lane (also happens on drop). Events sent before the
    /// close are still delivered; an epoch left open contributes its
    /// events to the epoch but not a barrier vote, so a tick fires only
    /// if some *other* producer closed that epoch explicitly.
    pub fn close(self) {}

    /// Bounded-wait send: like [`IngressProducer::send`] but waits for
    /// ring space at most `timeout` and reports a dead sequencer as
    /// [`SendError::Disconnected`] instead of panicking. On any error
    /// the producer's counters are untouched (`seq` only advances on a
    /// successful enqueue), so the caller can back off and retry the
    /// same event without corrupting the stream.
    pub fn try_send(&mut self, event: ServiceEvent, timeout: Duration) -> Result<(), SendError> {
        let deadline = Instant::now() + timeout;
        match event {
            ServiceEvent::PeriodTick => {
                self.queue
                    .push_deadline(Slot::EpochEnd(self.epoch), deadline)?;
                self.epoch += 1;
                self.seq = 0;
            }
            event => {
                let stamped = Stamped {
                    epoch: self.epoch,
                    seq: self.seq,
                    event,
                };
                self.queue.push_deadline(Slot::Event(stamped), deadline)?;
                self.seq += 1;
            }
        }
        Ok(())
    }

    /// Simulates a producer crash: consumes the handle **without**
    /// closing its lane (unlike drop). The epoch stays open, so the
    /// barrier waits — exactly a wedged client — until a supervisor
    /// [`AbandonedLane::reconnect`]s and finishes (or re-drives) the
    /// epoch. Testkit `FaultPlan` uses this for seeded producer kills.
    pub fn abandon(self) -> AbandonedLane {
        let this = std::mem::ManuallyDrop::new(self);
        AbandonedLane {
            // Safety: `this` is ManuallyDrop and never used again, so
            // the Arc is moved out exactly once and Drop (which would
            // close the lane) never runs.
            queue: unsafe { std::ptr::read(&this.queue) },
            id: this.id,
        }
    }
}

/// The lane of an abandoned ("crashed") producer, still open for a
/// reconnect ([`IngressProducer::abandon`]).
#[derive(Debug)]
pub struct AbandonedLane {
    queue: Arc<Queue>,
    id: u32,
}

impl AbandonedLane {
    /// The abandoned producer's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Resumes the lane at explicit coordinates: the supervisor's
    /// reconnect path. `epoch`/`seq` name the **next** event to send —
    /// resuming at the last acked `(epoch, seq + 1)` replays nothing;
    /// resuming earlier re-sends events the service's per-producer
    /// watermark suppresses idempotently (at-least-once delivery).
    pub fn reconnect(self, epoch: u64, seq: u64) -> IngressProducer {
        IngressProducer {
            queue: self.queue,
            id: self.id,
            epoch,
            seq,
        }
    }
}

impl Drop for IngressProducer {
    fn drop(&mut self) {
        self.queue.close();
    }
}

/// The sequencer half of the ingestion front-end: merges N producer
/// lanes into the canonical event order and drives a [`ShardedService`].
///
/// Dropping it without (or while) sequencing — including the unwind of
/// a panic inside the reducer — marks every lane's consumer as gone,
/// which wakes blocked producers and makes their next
/// [`IngressProducer::send`] panic with a clear message instead of
/// hanging forever on backpressure no one will ever drain.
#[derive(Debug)]
pub struct IngestService {
    queues: Vec<Arc<Queue>>,
}

impl Drop for IngestService {
    fn drop(&mut self) {
        for queue in &self.queues {
            queue.close_consumer();
        }
    }
}

impl IngestService {
    /// Builds the front-end: the sequencer half plus one
    /// [`IngressProducer`] handle per lane.
    ///
    /// # Panics
    /// Panics if `config.producers` or `config.queue_capacity` is zero.
    pub fn new(config: IngestConfig) -> (Self, Vec<IngressProducer>) {
        assert!(config.producers >= 1, "need at least one producer");
        assert!(config.queue_capacity >= 1, "queues need at least one slot");
        let queues: Vec<Arc<Queue>> = (0..config.producers)
            .map(|_| Arc::new(Queue::new(config.queue_capacity)))
            .collect();
        let producers = queues
            .iter()
            .enumerate()
            .map(|(id, queue)| IngressProducer {
                queue: Arc::clone(queue),
                id: id as u32,
                epoch: 0,
                seq: 0,
            })
            .collect();
        (Self { queues }, producers)
    }

    /// Number of producer lanes.
    pub fn producer_count(&self) -> usize {
        self.queues.len()
    }

    /// Runs the sequencer on the calling thread until every producer
    /// closes: merges the lanes under the total `(epoch, producer, seq)`
    /// order into `service`, firing one global `PeriodTick` per epoch
    /// barrier. Returns the number of epochs (ticks) fired.
    ///
    /// The epoch counter starts at the service's
    /// [`periods_served`](ShardedService::periods_served), so a
    /// *recovered* service resumes sequencing where the journal left
    /// off (producers reconnect at their acked coordinates).
    ///
    /// # Errors
    /// [`ServiceError::Poisoned`] / [`ServiceError::Journal`] from the
    /// reducer stop sequencing immediately (the service is left in its
    /// failed state for journal recovery). Per-event *rejections* are
    /// not errors: the reducer counts them and the stream keeps going.
    pub fn sequence(self, service: &mut ShardedService) -> Result<u64, ServiceError> {
        self.sequence_with(service, |_, _| {})
    }

    /// [`IngestService::sequence`] with a per-tick observer, called
    /// right after each epoch's global tick with the epoch index and
    /// the service (e.g. for O(1) [`ShardedService::outcome_snapshot`]
    /// monitoring, or the per-epoch oracle checks in the test suite).
    pub fn sequence_with(
        self,
        service: &mut ShardedService,
        mut on_tick: impl FnMut(u64, &ShardedService),
    ) -> Result<u64, ServiceError> {
        let first_epoch = u64::from(service.periods_served());
        let mut epoch = first_epoch;
        let mut chunk: Vec<Stamped> = Vec::new();
        loop {
            // Did any producer close this epoch with a marker (rather
            // than by closing its lane)? Only markers vote for a tick:
            // a fully closed producer set with trailing unmarked events
            // leaves that churn staged, exactly like serial `push`
            // without a final `PeriodTick`.
            let mut epoch_open = false;
            for (producer, queue) in self.queues.iter().enumerate() {
                // A recovered service already holds a watermark inside
                // this epoch; a reconnected producer resuming exactly
                // after its ack is gap-free relative to *it*, not to 0.
                let mut expected_seq = match service.watermark(producer as u32) {
                    Some((e, s)) if e == epoch => s + 1,
                    _ => 0,
                };
                loop {
                    chunk.clear();
                    let outcome = queue.pop_epoch_chunk(&mut chunk);
                    for stamped in &chunk {
                        debug_assert_eq!(
                            stamped.epoch, epoch,
                            "producer {producer} leaked an event across its epoch marker"
                        );
                        // `<` (not `==`): a reconnected producer may
                        // re-send acked events (at-least-once); the
                        // service's watermark suppresses them. Fresh
                        // events must still arrive gap-free in order.
                        debug_assert!(
                            stamped.seq <= expected_seq,
                            "producer {producer} events arrived with a seq gap"
                        );
                        expected_seq = expected_seq.max(stamped.seq + 1);
                        match service.push_stamped(
                            producer as u32,
                            stamped.epoch,
                            stamped.seq,
                            stamped.event,
                        ) {
                            Ok(()) | Err(ServiceError::Rejected(_)) => {}
                            Err(fatal) => return Err(fatal),
                        }
                    }
                    match outcome {
                        Chunk::Marker(e) => {
                            debug_assert_eq!(e, epoch, "epoch markers out of order");
                            epoch_open = true;
                            break;
                        }
                        Chunk::Progress => continue,
                        Chunk::Closed => break,
                    }
                }
            }
            if !epoch_open {
                return Ok(epoch - first_epoch);
            }
            service.push_stamped(TICK_PRODUCER, epoch, 0, ServiceEvent::PeriodTick)?;
            on_tick(epoch, service);
            epoch += 1;
        }
    }

    /// Moves `service` onto a dedicated sequencer thread (the online
    /// deployment shape: producers are client threads, the sequencer
    /// runs in the background). Join the returned handle to get the
    /// service back once every producer has closed.
    pub fn spawn(self, service: ShardedService) -> SequencerHandle {
        let handle = std::thread::spawn(move || {
            let mut service = service;
            let epochs = self.sequence(&mut service)?;
            Ok((service, epochs))
        });
        SequencerHandle { handle }
    }
}

/// Why a background sequencer died ([`SequencerHandle::join`]): either
/// its thread panicked (e.g. a panicking strategy unwound through the
/// reducer — the panic payload is preserved verbatim) or the reducer
/// returned a fatal [`ServiceError`].
pub struct SequencerPanic {
    cause: SequencerCause,
}

enum SequencerCause {
    Panicked(Box<dyn std::any::Any + Send + 'static>),
    Failed(ServiceError),
}

impl SequencerPanic {
    /// Human-readable description of the failure (`&str`/`String`
    /// panic payloads verbatim).
    pub fn message(&self) -> String {
        match &self.cause {
            SequencerCause::Panicked(payload) => {
                if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "sequencer thread panicked with a non-string payload".to_string()
                }
            }
            SequencerCause::Failed(e) => e.to_string(),
        }
    }

    /// The fatal [`ServiceError`], when the reducer failed typed-ly
    /// (as opposed to an unwinding panic).
    pub fn service_error(&self) -> Option<&ServiceError> {
        match &self.cause {
            SequencerCause::Failed(e) => Some(e),
            SequencerCause::Panicked(_) => None,
        }
    }

    /// The original panic payload, when the thread unwound.
    pub fn into_panic_payload(self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        match self.cause {
            SequencerCause::Panicked(payload) => Some(payload),
            SequencerCause::Failed(_) => None,
        }
    }
}

impl std::fmt::Debug for SequencerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequencerPanic")
            .field("message", &self.message())
            .finish()
    }
}

impl std::fmt::Display for SequencerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sequencer died: {}", self.message())
    }
}

impl std::error::Error for SequencerPanic {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.service_error()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Join handle of a background sequencer ([`IngestService::spawn`]).
#[derive(Debug)]
pub struct SequencerHandle {
    handle: std::thread::JoinHandle<Result<(ShardedService, u64), ServiceError>>,
}

impl SequencerHandle {
    /// Waits for every producer to close and returns the driven service
    /// together with the number of epochs fired.
    ///
    /// A sequencer-thread death — an unwinding panic (say, from a
    /// panicking strategy) or a fatal reducer error — surfaces as a
    /// typed [`SequencerPanic`] with the payload preserved, never an
    /// abort or a hang ([`IngestService`]'s drop already woke blocked
    /// producers when the thread unwound).
    pub fn join(self) -> Result<(ShardedService, u64), SequencerPanic> {
        match self.handle.join() {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(e)) => Err(SequencerPanic {
                cause: SequencerCause::Failed(e),
            }),
            Err(payload) => Err(SequencerPanic {
                cause: SequencerCause::Panicked(payload),
            }),
        }
    }

    /// Whether the sequencer thread has finished (without blocking).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// The serial event list of one ground-truth period: worker arrivals in
/// admission order, then task requests in stream order — exactly the
/// per-period order [`crate::replay`] pushes. Splitting these lists
/// into contiguous producer chunks (see [`chunk_bounds`]) reproduces
/// the serial stream under the `(epoch, producer, seq)` merge.
pub fn period_events(period: &PeriodData) -> Vec<ServiceEvent> {
    let mut events = Vec::with_capacity(period.workers.len() + period.tasks.len());
    events.extend(
        period
            .workers
            .iter()
            .map(|&worker| ServiceEvent::WorkerArrive { worker }),
    );
    events.extend(
        period
            .tasks
            .iter()
            .map(|&task| ServiceEvent::TaskRequest { task }),
    );
    events
}

/// Balanced contiguous chunk boundaries: splits `n` items into `parts`
/// runs whose lengths differ by at most one (`bounds.len() == parts +
/// 1`; chunk `i` is `bounds[i]..bounds[i + 1]`). Assigning chunk `i` to
/// producer `i` makes the canonical `(producer, seq)` merge reproduce
/// the original item order.
pub fn chunk_bounds(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts >= 1, "need at least one chunk");
    (0..=parts).map(|i| i * n / parts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServiceConfig, ShardedService};
    use maps_core::StrategyKind;
    use maps_simulator::{GroundWorker, MatchPolicy};
    use maps_spatial::{GridSpec, Point, Rect};

    fn service(shards: usize) -> ShardedService {
        ShardedService::new(
            GridSpec::square(Rect::square(10.0), 2),
            MatchPolicy::Consume,
            StrategyKind::BaseP,
            ServiceConfig {
                shards,
                ..ServiceConfig::default()
            },
        )
    }

    fn worker(x: f64) -> GroundWorker {
        GroundWorker {
            location: Point::new(x, 1.0),
            radius: 4.0,
            duration: u32::MAX,
        }
    }

    #[test]
    fn chunk_bounds_are_balanced_and_cover() {
        assert_eq!(chunk_bounds(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(chunk_bounds(2, 4), vec![0, 0, 1, 1, 2]);
        assert_eq!(chunk_bounds(0, 2), vec![0, 0, 0]);
        for n in 0..40usize {
            for parts in 1..9usize {
                let bounds = chunk_bounds(n, parts);
                assert_eq!(bounds[0], 0);
                assert_eq!(*bounds.last().unwrap(), n);
                for w in bounds.windows(2) {
                    assert!(w[0] <= w[1]);
                    assert!(w[1] - w[0] <= n.div_ceil(parts));
                }
            }
        }
    }

    /// The tick barrier: no global tick fires until *every* producer
    /// has closed the epoch.
    #[test]
    fn tick_waits_for_every_producer() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 2,
            queue_capacity: 8,
        });
        let p1 = producers.pop().unwrap();
        let mut p0 = producers.pop().unwrap();
        p0.send(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        p0.send(ServiceEvent::PeriodTick);
        p0.close();
        let sequencer = std::thread::spawn(move || {
            let mut svc = service(2);
            let epochs = ingest.sequence(&mut svc).unwrap();
            (svc.periods_served(), epochs)
        });
        // p1 has not voted: the sequencer must still be blocked on its
        // lane (coarse check — the real ordering proof is the oracle
        // suite; this only exercises the happy unblocking path).
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!sequencer.is_finished(), "tick fired before the barrier");
        let mut p1 = p1;
        p1.send(ServiceEvent::PeriodTick);
        p1.close();
        let (periods, epochs) = sequencer.join().unwrap();
        assert_eq!(periods, 1);
        assert_eq!(epochs, 1);
    }

    /// Unmarked trailing events stay staged — serial `push` semantics
    /// for a stream that ends without a final tick.
    #[test]
    fn close_without_epoch_end_stages_but_does_not_tick() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 4,
        });
        let mut p0 = producers.pop().unwrap();
        p0.send(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        p0.close();
        let mut svc = service(1);
        let epochs = ingest.sequence(&mut svc).unwrap();
        assert_eq!(epochs, 0);
        assert_eq!(svc.periods_served(), 0);
        assert_eq!(svc.admitted_workers(), 1, "event delivered, churn staged");
        assert_eq!(svc.live_workers(), 0, "no tick: never applied");
    }

    /// A dead sequencer (dropped, or its thread panicked) must turn a
    /// producer's next send into a visible panic, not an eternal block
    /// on backpressure no one will drain — even when the ring still has
    /// room (the slot could never be consumed either way).
    #[test]
    fn producer_send_panics_when_sequencer_is_gone() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 8,
        });
        let mut p0 = producers.pop().unwrap();
        drop(ingest);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(1.0),
            });
        }));
        assert!(result.is_err(), "send should fail fast, not block");
        // The handle is still droppable afterwards (the ring was not
        // poisoned by the in-lock panic path).
        drop(p0);
    }

    /// Satellite regression: a panic in the background sequencer thread
    /// (here: a strategy that panics on its first `price_period`) must
    /// surface from `join` as a typed `Err` with the payload preserved
    /// — never a silent abort, a swallowed unwind, or a hang.
    #[test]
    fn sequencer_panic_surfaces_as_typed_error_with_payload() {
        struct Bomb;
        impl maps_core::PricingStrategy for Bomb {
            fn name(&self) -> &'static str {
                "Bomb"
            }
            fn calibrate(&mut self, _probe: &mut dyn maps_core::DemandProbe) {}
            fn price_period(
                &mut self,
                _input: &maps_core::PeriodInput<'_>,
            ) -> maps_core::PriceSchedule {
                panic!("strategy exploded on purpose");
            }
            fn observe(&mut self, _feedback: &[maps_core::Observation]) {}
        }
        let svc = ShardedService::with_strategy(
            GridSpec::square(Rect::square(10.0), 2),
            MatchPolicy::Consume,
            Box::new(Bomb),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
        );
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 8,
        });
        let mut p0 = producers.pop().unwrap();
        let sequencer = ingest.spawn(svc);
        p0.send(ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        });
        p0.send(ServiceEvent::PeriodTick);
        // The tick detonates the strategy; the lane may already be dead
        // by the time we close, so tolerate the fail-fast panic path.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || p0.close()));
        let err = sequencer
            .join()
            .expect_err("sequencer must report the panic");
        assert!(
            err.message().contains("strategy exploded on purpose"),
            "payload lost: {err:?}"
        );
        assert!(err.service_error().is_none(), "this was an unwind");
        let payload = err.into_panic_payload().expect("panic payload preserved");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"strategy exploded on purpose")
        );
    }

    /// `try_send` bounds its wait and reports backpressure/disconnects
    /// as typed errors; `seq` advances only on success so a timed-out
    /// send can simply be retried.
    #[test]
    fn try_send_times_out_and_survives_retry() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 2,
        });
        let mut p0 = producers.pop().unwrap();
        let e = ServiceEvent::WorkerArrive {
            worker: worker(1.0),
        };
        let short = Duration::from_millis(5);
        assert_eq!(p0.try_send(e, short), Ok(()));
        assert_eq!(p0.try_send(e, short), Ok(()));
        // Ring full, no sequencer draining: bounded wait, then timeout.
        assert_eq!(p0.try_send(e, short), Err(SendError::Timeout));
        // The timed-out event was not enqueued and seq did not advance:
        // retrying after the sequencer drains keeps the stream gapless.
        let mut svc = service(1);
        let sequencer = std::thread::spawn(move || ingest.sequence(&mut svc).map(|e| (svc, e)));
        let retry_deadline = Duration::from_secs(30);
        assert_eq!(p0.try_send(e, retry_deadline), Ok(()));
        assert_eq!(
            p0.try_send(ServiceEvent::PeriodTick, retry_deadline),
            Ok(())
        );
        p0.close();
        let (svc, epochs) = sequencer.join().unwrap().unwrap();
        assert_eq!(epochs, 1);
        assert_eq!(svc.admitted_workers(), 3, "exactly the successful sends");
    }

    #[test]
    fn try_send_reports_dead_sequencer_as_disconnected() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 8,
        });
        let mut p0 = producers.pop().unwrap();
        drop(ingest);
        assert_eq!(
            p0.try_send(
                ServiceEvent::WorkerArrive {
                    worker: worker(1.0)
                },
                Duration::from_millis(5)
            ),
            Err(SendError::Disconnected)
        );
    }

    /// A producer "crash" (abandon: lane left open, no barrier vote)
    /// holds the epoch barrier until a supervisor reconnects; an
    /// at-least-once resend across the reconnect is suppressed by the
    /// service's watermark, leaving the outcome identical to the
    /// uninterrupted stream.
    #[test]
    fn abandoned_producer_reconnects_idempotently() {
        let run = |resend: bool| {
            let (ingest, mut producers) = IngestService::new(IngestConfig {
                producers: 2,
                queue_capacity: 16,
            });
            let mut p1 = producers.pop().unwrap();
            let mut p0 = producers.pop().unwrap();
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(1.0),
            });
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(2.0),
            });
            // p0 "crashes" mid-epoch after two sends (last acked seq 1).
            let lane = p0.abandon();
            p1.send(ServiceEvent::WorkerArrive {
                worker: worker(8.0),
            });
            p1.send(ServiceEvent::PeriodTick);
            p1.close();
            let sequencer = std::thread::spawn(move || {
                let mut svc = service(2);
                ingest.sequence(&mut svc).map(|e| (svc, e))
            });
            // The barrier must hold: p0's epoch is still open.
            std::thread::sleep(Duration::from_millis(20));
            assert!(!sequencer.is_finished(), "tick fired past a dead producer");
            // Supervisor reconnects; optionally re-sends the acked
            // event (at-least-once) before finishing the epoch.
            let mut p0 = lane.reconnect(0, if resend { 1 } else { 2 });
            if resend {
                p0.send(ServiceEvent::WorkerArrive {
                    worker: worker(2.0),
                });
            }
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(3.0),
            });
            p0.send(ServiceEvent::PeriodTick);
            p0.close();
            let (svc, epochs) = sequencer.join().unwrap().unwrap();
            assert_eq!(epochs, 1);
            (
                svc.suppressed_duplicates(),
                svc.into_outcome().deterministic_bits(),
            )
        };
        let (clean_suppressed, clean_bits) = run(false);
        let (resend_suppressed, resend_bits) = run(true);
        assert_eq!(clean_suppressed, 0);
        assert_eq!(resend_suppressed, 1, "the resend was suppressed");
        // The duplicate-suppression counter itself participates in the
        // bits, so compare the rest: zero it out via reconstruction.
        let mut clean = clean_bits.clone();
        let mut resent = resend_bits.clone();
        // suppressed_duplicates is the final word of the encoding.
        assert_eq!(clean.pop(), Some(0));
        assert_eq!(resent.pop(), Some(1));
        assert_eq!(clean, resent, "resend perturbed the outcome");
    }

    /// A capacity-1 queue forces maximal backpressure; the stream must
    /// still complete and agree with serial push.
    #[test]
    fn capacity_one_round_trips_through_spawned_sequencer() {
        let (ingest, mut producers) = IngestService::new(IngestConfig {
            producers: 1,
            queue_capacity: 1,
        });
        let mut p0 = producers.pop().unwrap();
        let sequencer = ingest.spawn(service(2));
        for i in 0..20 {
            p0.send(ServiceEvent::WorkerArrive {
                worker: worker(1.0 + (i % 8) as f64),
            });
            p0.send(ServiceEvent::PeriodTick);
        }
        p0.close();
        let (svc, epochs) = sequencer.join().unwrap();
        assert_eq!(epochs, 20);
        assert_eq!(svc.periods_served(), 20);
        assert_eq!(svc.admitted_workers(), 20);
    }
}
