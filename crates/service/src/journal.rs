//! Write-ahead event journal: the durability half of the service's
//! crash-recovery contract (the other half is [`crate::recovery`]).
//!
//! ## Why a hand-rolled binary frame format
//!
//! Every [`Outcome`](maps_simulator::Outcome) is a pure function of the
//! admitted event stream in the total `(epoch, producer, seq)` order
//! (the PR 4/5 standing invariants), so *bit-exact* durability needs a
//! *bit-exact* event encoding: every `f64` is written as its IEEE-754
//! bit pattern ([`f64::to_bits`]) — a text codec that round-trips
//! through decimal would silently perturb the replay. The format
//! doubles as the wire format for out-of-process producers (ROADMAP):
//! a length-prefixed frame stream is exactly what a socket needs.
//!
//! ## Format
//!
//! ```text
//! file   := MAGIC frame*
//! MAGIC  := b"MAPSWAL1"                      (8 bytes)
//! frame  := len:u32 crc:u64 payload          (all little-endian)
//!           len = payload byte length; crc = FNV-1a 64 of payload
//! payload:= producer:u32 epoch:u64 seq:u64 tag:u8 fields
//!   tag 0 WorkerArrive  fields = x:u64 y:u64 radius:u64 duration:u32
//!   tag 1 WorkerDepart  fields = id:u32
//!   tag 2 TaskRequest   fields = ox oy dx dy dist val (6×u64) cell:u32
//!   tag 3 PeriodTick    fields = ∅
//! ```
//!
//! Floats are stored as `to_bits` words, so even NaN-carrying events
//! (journaled *before* admission validation, so recovery re-counts the
//! rejection deterministically) round-trip exactly.
//!
//! ## Torn tails
//!
//! A crash can leave a partial frame at the end of the file. Decoding
//! treats the first invalid frame (short header, short payload,
//! CRC mismatch, or undecodable payload) as the torn tail: everything
//! before it is the durable prefix, everything after is dropped and the
//! file is truncated at the prefix on recovery ([`Tail::Torn`]). The
//! root proptest round-trips arbitrary event streams through
//! encode → truncate-at-every-byte → decode to pin this down.
//!
//! Epoch checkpoints ride along in the same directory as
//! `checkpoint_<epoch>.bin` files: a CRC-guarded `u64` word stream
//! produced by the engine's state snapshot (see [`crate::recovery`]).
//! The checkpoint CRC is a *word-stream* FNV-1a (one round per `u64`
//! over `count` then the words) — checkpoints are megabytes, and the
//! byte-wise hash's serial dependency chain would cost more than the
//! write itself.

use crate::engine::ServiceEvent;
use maps_simulator::{GroundTask, GroundWorker};
use maps_spatial::{CellId, Point};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File header of an event journal.
pub const JOURNAL_MAGIC: &[u8; 8] = b"MAPSWAL1";
/// File header of a checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"MAPSCKP1";
/// Journal file name inside a journal directory.
pub const JOURNAL_FILE: &str = "journal.bin";
/// The pseudo-producer id stamped on `PeriodTick` barrier records (a
/// real producer id would collide with lane 2³² − 1 only after far more
/// lanes than any deployment opens).
pub const TICK_PRODUCER: u32 = u32::MAX;
/// Upper bound on a sane frame payload (a record is < 100 bytes; this
/// bound just keeps a corrupt length prefix from looking like a
/// 4-GiB allocation).
const MAX_PAYLOAD: u32 = 4096;

/// Where and how often the service journals.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding `journal.bin` and the `checkpoint_*.bin`
    /// files (created if missing).
    pub dir: PathBuf,
    /// Write a checkpoint every `n` epochs (clamped to ≥ 1). Recovery
    /// cost is bounded by `checkpoint_every` epochs of journal replay.
    pub checkpoint_every: u32,
}

impl JournalConfig {
    /// A journal in `dir` checkpointing every `checkpoint_every` epochs.
    pub fn new(dir: impl Into<PathBuf>, checkpoint_every: u32) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every: checkpoint_every.max(1),
        }
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }
}

/// One journaled event with its total-order coordinates.
#[derive(Debug, Clone, Copy)]
pub struct JournalRecord {
    /// Producer lane ([`TICK_PRODUCER`] for epoch-barrier ticks).
    pub producer: u32,
    /// Epoch the event belongs to.
    pub epoch: u64,
    /// Producer-local sequence number within the epoch.
    pub seq: u64,
    /// The event itself (journaled *before* admission validation).
    pub event: ServiceEvent,
}

/// What the end of a decoded journal looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The file ended exactly on a frame boundary.
    Clean,
    /// A torn write: the first invalid frame starts at `valid_len`
    /// (absolute file offset); `dropped` trailing bytes are discarded.
    Torn {
        /// Absolute offset of the durable prefix (truncation point).
        valid_len: u64,
        /// Bytes past the durable prefix.
        dropped: u64,
    },
}

/// Errors of the journal layer.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// A structurally invalid file (outside the recoverable torn-tail
    /// shape), e.g. a checkpoint whose CRC does not match.
    Corrupt(&'static str),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => f.write_str("journal file has wrong magic header"),
            JournalError::Corrupt(what) => write!(f, "corrupt journal data: {what}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to detect torn
/// writes (this is corruption *detection* on a trusted local disk, not
/// an adversarial integrity check).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Word-stream FNV-1a variant: one XOR + multiply per `u64` instead of
/// per byte. Journal frames keep the byte-wise hash (payloads are tens
/// of bytes), but checkpoints hash megabytes of state words at every
/// epoch boundary — the byte-wise loop is a serial dependency chain
/// eight times longer than it needs to be there.
fn fnv1a64_words(words: impl Iterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        hash ^= w;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let v = u32::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
}

/// Serializes one record as a self-delimiting frame, appending to `out`.
///
/// The payload is written straight into `out` (no temporary buffer —
/// this runs once per admitted event); the 12-byte `len`/`crc` header
/// is reserved up front and patched once the payload length is known.
pub fn encode_record(record: &JournalRecord, out: &mut Vec<u8>) {
    let header = out.len();
    out.extend_from_slice(&[0u8; 12]);
    let start = out.len();
    put_u32(out, record.producer);
    put_u64(out, record.epoch);
    put_u64(out, record.seq);
    match record.event {
        ServiceEvent::WorkerArrive { worker } => {
            out.push(0);
            put_f64(out, worker.location.x);
            put_f64(out, worker.location.y);
            put_f64(out, worker.radius);
            put_u32(out, worker.duration);
        }
        ServiceEvent::WorkerDepart { id } => {
            out.push(1);
            put_u32(out, id);
        }
        ServiceEvent::TaskRequest { task } => {
            out.push(2);
            put_f64(out, task.origin.x);
            put_f64(out, task.origin.y);
            put_f64(out, task.destination.x);
            put_f64(out, task.destination.y);
            put_f64(out, task.distance);
            put_f64(out, task.valuation);
            put_u32(out, task.cell.0);
        }
        ServiceEvent::PeriodTick => out.push(3),
    }
    let len = (out.len() - start) as u32;
    let crc = fnv1a64(&out[start..]);
    out[header..header + 4].copy_from_slice(&len.to_le_bytes());
    out[header + 4..header + 12].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes one frame payload (must consume it exactly).
fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let producer = c.u32()?;
    let epoch = c.u64()?;
    let seq = c.u64()?;
    let event = match c.u8()? {
        0 => ServiceEvent::WorkerArrive {
            worker: GroundWorker {
                location: Point::new(c.f64()?, c.f64()?),
                radius: c.f64()?,
                duration: c.u32()?,
            },
        },
        1 => ServiceEvent::WorkerDepart { id: c.u32()? },
        2 => ServiceEvent::TaskRequest {
            task: GroundTask {
                origin: Point::new(c.f64()?, c.f64()?),
                destination: Point::new(c.f64()?, c.f64()?),
                distance: c.f64()?,
                valuation: c.f64()?,
                cell: CellId(c.u32()?),
            },
        },
        3 => ServiceEvent::PeriodTick,
        _ => return None,
    };
    (c.pos == payload.len()).then_some(JournalRecord {
        producer,
        epoch,
        seq,
        event,
    })
}

/// Decodes a frame stream (no file magic). Returns every record of the
/// durable prefix plus the tail shape; offsets in [`Tail::Torn`] are
/// relative to `bytes`.
pub fn decode_records(bytes: &[u8]) -> (Vec<JournalRecord>, Tail) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let torn = |at: usize| Tail::Torn {
            valid_len: at as u64,
            dropped: (bytes.len() - at) as u64,
        };
        let Some(header) = bytes.get(pos..pos + 12) else {
            return (records, torn(pos));
        };
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u64::from_le_bytes(header[4..12].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return (records, torn(pos));
        }
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len as usize) else {
            return (records, torn(pos));
        };
        if fnv1a64(payload) != crc {
            return (records, torn(pos));
        }
        let Some(record) = decode_payload(payload) else {
            return (records, torn(pos));
        };
        records.push(record);
        pos += 12 + len as usize;
    }
    (records, Tail::Clean)
}

/// An open, appendable journal file. Appends are buffered;
/// [`JournalWriter::sync`] flushes *and fsyncs* — the engine calls it
/// at every epoch barrier, making whole epochs the unit of durability.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    scratch: Vec<u8>,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal file with the magic header.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let mut file = File::create(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        Ok(Self {
            // 256 KiB buffer: an epoch's worth of frames usually fits,
            // so the barrier flush is one or two write syscalls instead
            // of hundreds through the default 8 KiB buffer.
            file: BufWriter::with_capacity(256 * 1024, file),
            scratch: Vec::new(),
        })
    }

    /// Reopens an existing journal for appending, first truncating it
    /// to `valid_len` (the durable prefix reported by
    /// [`read_journal`]) — this is how recovery drops a torn tail.
    pub fn open_append(path: &Path, valid_len: u64) -> Result<Self, JournalError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            // 256 KiB buffer: an epoch's worth of frames usually fits,
            // so the barrier flush is one or two write syscalls instead
            // of hundreds through the default 8 KiB buffer.
            file: BufWriter::with_capacity(256 * 1024, file),
            scratch: Vec::new(),
        })
    }

    /// Buffers one record (durable only after [`JournalWriter::sync`]).
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        self.scratch.clear();
        encode_record(record, &mut self.scratch);
        self.file.write_all(&self.scratch)?;
        Ok(())
    }

    /// Flushes buffered frames and fsyncs the file.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }
}

/// A fully decoded journal file.
#[derive(Debug)]
pub struct JournalContents {
    /// Every record of the durable prefix, in journal (= total) order.
    pub records: Vec<JournalRecord>,
    /// Whether the file ended clean or torn.
    pub tail: Tail,
    /// Absolute length of the durable prefix (magic included): the
    /// `valid_len` to hand [`JournalWriter::open_append`].
    pub valid_len: u64,
}

/// Reads and decodes a journal file, classifying its tail.
pub fn read_journal(path: &Path) -> Result<JournalContents, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let body = &bytes[JOURNAL_MAGIC.len()..];
    let (records, tail) = decode_records(body);
    let magic = JOURNAL_MAGIC.len() as u64;
    let (tail, valid_len) = match tail {
        Tail::Clean => (Tail::Clean, bytes.len() as u64),
        Tail::Torn { valid_len, dropped } => (
            Tail::Torn {
                valid_len: magic + valid_len,
                dropped,
            },
            magic + valid_len,
        ),
    };
    Ok(JournalContents {
        records,
        tail,
        valid_len,
    })
}

/// Serializes a checkpoint word stream with magic + CRC framing.
pub fn encode_checkpoint(words: &[u64]) -> Vec<u8> {
    // CRC over the logical word stream (count, then words) with the
    // word-wise FNV variant: checkpoints are megabytes, and hashing
    // them byte-at-a-time costs more than writing them.
    let crc = fnv1a64_words(std::iter::once(words.len() as u64).chain(words.iter().copied()));
    let mut out = Vec::with_capacity(24 + words.len() * 8);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    put_u64(&mut out, crc);
    put_u64(&mut out, words.len() as u64);
    for &w in words {
        put_u64(&mut out, w);
    }
    out
}

/// Decodes (and CRC-checks) a checkpoint byte stream.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Vec<u64>, JournalError> {
    if bytes.len() < 16 || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let crc = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let body = &bytes[16..];
    if !body.len().is_multiple_of(8) {
        return Err(JournalError::Corrupt("checkpoint length mismatch"));
    }
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let count = c
        .u64()
        .ok_or(JournalError::Corrupt("checkpoint truncated"))? as usize;
    if body.len() != 8 + count * 8 {
        return Err(JournalError::Corrupt("checkpoint length mismatch"));
    }
    let mut words = Vec::with_capacity(count);
    for _ in 0..count {
        words.push(c.u64().expect("length checked above"));
    }
    if fnv1a64_words(std::iter::once(count as u64).chain(words.iter().copied())) != crc {
        return Err(JournalError::Corrupt("checkpoint CRC mismatch"));
    }
    Ok(words)
}

/// Path of the checkpoint taken at the start of `epoch`.
pub fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("checkpoint_{epoch}.bin"))
}

/// Writes a checkpoint durably: temp file, fsync, atomic rename.
pub fn write_checkpoint_file(dir: &Path, epoch: u64, words: &[u64]) -> Result<(), JournalError> {
    let bytes = encode_checkpoint(words);
    let tmp = dir.join(format!("checkpoint_{epoch}.tmp"));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, checkpoint_path(dir, epoch))?;
    Ok(())
}

/// Lists checkpoint epochs present in `dir`, ascending.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<u64>, JournalError> {
    let mut epochs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(epoch) = name
            .strip_prefix("checkpoint_")
            .and_then(|rest| rest.strip_suffix(".bin"))
            .and_then(|num| num.parse::<u64>().ok())
        {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable();
    Ok(epochs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord {
                producer: 0,
                epoch: 0,
                seq: 0,
                event: ServiceEvent::WorkerArrive {
                    worker: GroundWorker {
                        location: Point::new(1.5, -2.25),
                        radius: 4.0,
                        duration: u32::MAX,
                    },
                },
            },
            JournalRecord {
                producer: 1,
                epoch: 0,
                seq: 0,
                event: ServiceEvent::TaskRequest {
                    task: GroundTask {
                        origin: Point::new(0.1, 0.2),
                        destination: Point::new(3.0, 4.0),
                        distance: 5.0,
                        valuation: f64::NAN, // invalid events journal too
                        cell: CellId(7),
                    },
                },
            },
            JournalRecord {
                producer: 0,
                epoch: 0,
                seq: 1,
                event: ServiceEvent::WorkerDepart { id: 3 },
            },
            JournalRecord {
                producer: TICK_PRODUCER,
                epoch: 0,
                seq: 0,
                event: ServiceEvent::PeriodTick,
            },
        ]
    }

    fn encode_all(records: &[JournalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            encode_record(r, &mut out);
        }
        out
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let (decoded, tail) = decode_records(&bytes);
        assert_eq!(tail, Tail::Clean);
        assert_eq!(decoded.len(), records.len());
        // Canonical equality: the codec is deterministic, so re-encoding
        // the decoded stream must reproduce the bytes (catches NaN and
        // -0.0 mangling that a value-level comparison could miss).
        assert_eq!(encode_all(&decoded), bytes);
    }

    #[test]
    fn every_truncation_point_recovers_a_frame_prefix() {
        let records = sample_records();
        let bytes = encode_all(&records);
        // Frame boundaries (offsets where a prefix is exactly whole).
        let mut boundaries = vec![0usize];
        {
            let mut out = Vec::new();
            for r in &records {
                encode_record(r, &mut out);
                boundaries.push(out.len());
            }
        }
        for cut in 0..bytes.len() {
            let (decoded, tail) = decode_records(&bytes[..cut]);
            let whole = boundaries.iter().take_while(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.len(), whole, "cut at {cut}");
            if boundaries.contains(&cut) {
                assert_eq!(tail, Tail::Clean, "cut at {cut} is a frame boundary");
            } else {
                let valid = boundaries[whole] as u64;
                assert_eq!(
                    tail,
                    Tail::Torn {
                        valid_len: valid,
                        dropped: cut as u64 - valid,
                    },
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn corrupt_crc_is_a_torn_tail() {
        let records = sample_records();
        let mut bytes = encode_all(&records);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let (decoded, tail) = decode_records(&bytes);
        assert_eq!(decoded.len(), records.len() - 1);
        assert!(matches!(tail, Tail::Torn { .. }));
    }

    #[test]
    fn writer_reader_round_trip_with_torn_tail_truncation() {
        let dir = crate::test_dir("journal_rw");
        let path = dir.join(JOURNAL_FILE);
        let records = sample_records();
        {
            let mut w = JournalWriter::create(&path).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        // Simulate a torn write: append half a frame worth of garbage.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 7]).unwrap();
        }
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), records.len());
        assert!(matches!(contents.tail, Tail::Torn { dropped: 7, .. }));
        // Recovery truncates and appends cleanly after the tear.
        {
            let mut w = JournalWriter::open_append(&path, contents.valid_len).unwrap();
            w.append(&records[0]).unwrap();
            w.sync().unwrap();
        }
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), records.len() + 1);
        assert_eq!(contents.tail, Tail::Clean);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_round_trip_and_crc_guard() {
        let words = vec![0u64, 1, u64::MAX, 0x8000_0000_0000_0000];
        let bytes = encode_checkpoint(&words);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), words);
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(JournalError::Corrupt(_))
        ));
        assert!(matches!(
            decode_checkpoint(&bytes[..8]),
            Err(JournalError::BadMagic)
        ));
    }

    #[test]
    fn checkpoint_files_list_and_read_back() {
        let dir = crate::test_dir("journal_ckpt");
        write_checkpoint_file(&dir, 3, &[1, 2, 3]).unwrap();
        write_checkpoint_file(&dir, 10, &[4]).unwrap();
        assert_eq!(list_checkpoints(&dir).unwrap(), vec![3, 10]);
        let bytes = std::fs::read(checkpoint_path(&dir, 10)).unwrap();
        assert_eq!(decode_checkpoint(&bytes).unwrap(), vec![4]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
